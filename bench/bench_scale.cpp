// Scale sweep for the snapshot subsystem (docs/snapshot.md): for each
// corpus size in the sweep, build the full serving substrate from
// scratch (corpus generation + indexing + PageRank — the cold-boot path
// a snapshotless server pays), serialize it with WriteSnapshot, then
// boot a second, independent substrate from the file with
// ServingState::Load. Records build time, serialize time, snapshot
// size, load time, the headline build/load speedup, process RSS before
// and after the mmap-backed load, and reading-path query latency on the
// loaded substrate — after proving, query by query, that the loaded
// substrate answers bit-identically to the freshly built one (the same
// invariant tests/snapshot/ enforces at test scale; here it gates the
// bench's own numbers, so BENCH_scale.json can never report a fast
// loader that serves different paths).
//
// Writes one row per sweep point to BENCH_scale.json; the headline is
// the load speedup at the largest point (acceptance: >= 10x at 1e5
// papers — measured ~100x, since loading is dominated by the CSR
// transpose + checksum walk while rebuilding pays corpus generation,
// tokenization, indexing, embedding, and PageRank again).
//
// Scale knobs (env):
//   RPG_SCALE_SWEEP    comma-separated paper counts (default "20000,100000")
//   RPG_SCALE_QUERIES  reading-path queries per point   (default 25)
//   RPG_SCALE_SEED     corpus seed                      (default 42)
//   RPG_SCALE_RELABEL  1 = also write/load a BFS-relabeled snapshot

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "eval/workbench.h"
#include "snapshot/serving_state.h"
#include "snapshot/snapshot_writer.h"
#include "synth/corpus_generator.h"

namespace {

using namespace rpg;

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

std::vector<size_t> ScaleSweep() {
  const char* sweep = std::getenv("RPG_SCALE_SWEEP");
  std::vector<size_t> sizes;
  for (const std::string& part : Split(sweep ? sweep : "20000,100000", ',')) {
    size_t n = static_cast<size_t>(std::strtoull(part.c_str(), nullptr, 10));
    if (n > 0) sizes.push_back(n);
  }
  if (sizes.empty()) sizes = {20000};
  return sizes;
}

/// Current process RSS in MiB from /proc/self/status (0 if unreadable).
double RssMib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  size_t count = 0;
};

Percentiles ComputePercentiles(std::vector<double> samples_ms) {
  Percentiles p;
  p.count = samples_ms.size();
  if (samples_ms.empty()) return p;
  std::sort(samples_ms.begin(), samples_ms.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples_ms.size()));
    return samples_ms[std::min(i, samples_ms.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = samples_ms.back();
  return p;
}

void WritePercentiles(JsonWriter& w, const Percentiles& p) {
  w.BeginObject();
  w.Key("count").UInt(p.count);
  w.Key("p50_ms").Double(p.p50);
  w.Key("p90_ms").Double(p.p90);
  w.Key("p99_ms").Double(p.p99);
  w.Key("max_ms").Double(p.max);
  w.EndObject();
}

/// Field-by-field equality of two reading-path results.
bool SameResult(const core::RePagerResult& a, const core::RePagerResult& b) {
  return a.path.nodes() == b.path.nodes() && a.path.edges() == b.path.edges() &&
         a.ranked == b.ranked && a.initial_seeds == b.initial_seeds &&
         a.terminals == b.terminals;
}

struct ScalePoint {
  size_t target = 0;
  size_t num_papers = 0;
  size_t num_edges = 0;
  double build_seconds = 0.0;
  double write_seconds = 0.0;
  size_t snapshot_bytes = 0;
  double load_seconds = 0.0;
  double relabel_load_seconds = 0.0;  ///< 0 when RPG_SCALE_RELABEL is off
  double load_speedup = 0.0;
  double rss_before_load_mib = 0.0;
  double rss_after_queries_mib = 0.0;
  size_t queries = 0;
  size_t identical = 0;
  Percentiles latency;
};

}  // namespace

int main() {
  const std::vector<size_t> sweep = ScaleSweep();
  const size_t num_queries = EnvSize("RPG_SCALE_QUERIES", 25);
  const uint64_t seed = EnvSize("RPG_SCALE_SEED", 42);
  const bool relabel_too = EnvSize("RPG_SCALE_RELABEL", 0) != 0;

  std::vector<ScalePoint> points;
  size_t mismatches = 0;
  for (size_t target : sweep) {
    ScalePoint point;
    point.target = target;

    // The cold-boot path: everything a server without a snapshot pays.
    eval::WorkbenchOptions options;
    options.corpus = synth::ScaledCorpusOptions(target, seed);
    Timer build_timer;
    auto wb_or = eval::Workbench::Create(options);
    if (!wb_or.ok()) {
      std::fprintf(stderr, "workbench (%zu papers): %s\n", target,
                   wb_or.status().ToString().c_str());
      return 1;
    }
    point.build_seconds = build_timer.ElapsedSeconds();
    auto& wb = *wb_or.value();
    point.num_papers = wb.corpus().num_papers();
    point.num_edges = wb.corpus().citations.num_edges();

    snapshot::SnapshotInput input;
    input.graph = &wb.corpus().citations;
    input.titles = &wb.titles();
    input.years = &wb.years();
    input.pagerank = &wb.pagerank();
    input.venue_scores = &wb.venue_scores();
    input.engine = &wb.google();
    input.matcher = &wb.matcher();
    input.corpus_seed = options.corpus.seed;

    const std::string path =
        "bench_scale_" + std::to_string(target) + ".snap";
    Timer write_timer;
    Status write_status = snapshot::WriteSnapshot(input, path);
    if (!write_status.ok()) {
      std::fprintf(stderr, "write: %s\n", write_status.ToString().c_str());
      return 1;
    }
    point.write_seconds = write_timer.ElapsedSeconds();
    {
      std::ifstream is(path, std::ios::binary | std::ios::ate);
      point.snapshot_bytes = static_cast<size_t>(is.tellg());
    }

    // The warm-boot path under measurement.
    point.rss_before_load_mib = RssMib();
    Timer load_timer;
    auto state_or = snapshot::ServingState::Load(path);
    if (!state_or.ok()) {
      std::fprintf(stderr, "load: %s\n", state_or.status().ToString().c_str());
      return 1;
    }
    point.load_seconds = load_timer.ElapsedSeconds();
    point.load_speedup =
        point.load_seconds > 0 ? point.build_seconds / point.load_seconds : 0;
    auto& state = *state_or.value();

    // Differential gate + latency sample: every query must come back
    // bit-identical from the loaded substrate before its timing counts.
    std::vector<size_t> sample =
        eval::Evaluator::SampleEntries(wb.bank(), num_queries, 1234);
    std::vector<double> latencies_ms;
    for (size_t idx : sample) {
      const std::string& query = wb.bank().Get(idx).query;
      auto rebuilt = wb.repager().Generate(query);
      Timer query_timer;
      auto loaded = state.repager().Generate(query);
      double ms = query_timer.ElapsedMillis();
      if (rebuilt.ok() != loaded.ok()) continue;
      ++point.queries;
      if (!rebuilt.ok() ||
          SameResult(rebuilt.value(), loaded.value())) {
        ++point.identical;
      }
      if (loaded.ok()) latencies_ms.push_back(ms);
    }
    mismatches += point.queries - point.identical;
    point.latency = ComputePercentiles(latencies_ms);
    point.rss_after_queries_mib = RssMib();

    if (relabel_too) {
      snapshot::SnapshotWriterOptions wopts;
      wopts.relabel = true;
      const std::string relabel_path = path + ".relabel";
      Status st = snapshot::WriteSnapshot(input, relabel_path, wopts);
      if (st.ok()) {
        Timer relabel_timer;
        auto relabeled = snapshot::ServingState::Load(relabel_path);
        if (relabeled.ok()) {
          point.relabel_load_seconds = relabel_timer.ElapsedSeconds();
        }
        std::remove(relabel_path.c_str());
      }
    }
    std::remove(path.c_str());
    points.push_back(point);

    std::printf("%8zu papers: build %.2fs, write %.2fs (%.1f MiB), "
                "load %.3fs -> %.0fx, %zu/%zu queries identical, "
                "query p50 %.2f ms\n",
                point.num_papers, point.build_seconds, point.write_seconds,
                static_cast<double>(point.snapshot_bytes) / (1024.0 * 1024.0),
                point.load_seconds, point.load_speedup, point.identical,
                point.queries, point.latency.p50);
  }

  TablePrinter table({"papers", "edges", "build s", "write s", "snap MiB",
                      "load s", "speedup", "q p50 ms", "RSS MiB"});
  for (const ScalePoint& p : points) {
    table.AddRow({std::to_string(p.num_papers), std::to_string(p.num_edges),
                  FormatDouble(p.build_seconds, 2),
                  FormatDouble(p.write_seconds, 2),
                  FormatDouble(static_cast<double>(p.snapshot_bytes) /
                                   (1024.0 * 1024.0), 1),
                  FormatDouble(p.load_seconds, 3),
                  FormatDouble(p.load_speedup, 0),
                  FormatDouble(p.latency.p50, 2),
                  FormatDouble(p.rss_after_queries_mib, 0)});
  }
  table.Print(std::cout);
  const ScalePoint& head = points.back();
  std::printf("snapshot load at %zu papers: %.0fx faster than rebuild "
              "(%.2fs -> %.3fs)\n",
              head.num_papers, head.load_speedup, head.build_seconds,
              head.load_seconds);

  JsonWriter json;
  json.BeginObject();
  json.Key("config").BeginObject();
  json.Key("sweep").BeginArray();
  for (size_t n : sweep) json.UInt(n);
  json.EndArray();
  json.Key("queries_per_point").UInt(num_queries);
  json.Key("corpus_seed").UInt(seed);
  json.Key("relabel_measured").Bool(relabel_too);
  json.EndObject();
  json.Key("sweep").BeginArray();
  for (const ScalePoint& p : points) {
    json.BeginObject();
    json.Key("target_papers").UInt(p.target);
    json.Key("num_papers").UInt(p.num_papers);
    json.Key("num_edges").UInt(p.num_edges);
    json.Key("build_seconds").Double(p.build_seconds);
    json.Key("snapshot_write_seconds").Double(p.write_seconds);
    json.Key("snapshot_bytes").UInt(p.snapshot_bytes);
    json.Key("snapshot_load_seconds").Double(p.load_seconds);
    if (relabel_too) {
      json.Key("relabel_load_seconds").Double(p.relabel_load_seconds);
    }
    json.Key("load_speedup").Double(p.load_speedup);
    json.Key("rss_before_load_mib").Double(p.rss_before_load_mib);
    json.Key("rss_after_queries_mib").Double(p.rss_after_queries_mib);
    json.Key("queries").UInt(p.queries);
    json.Key("identical").UInt(p.identical);
    json.Key("query_latency");
    WritePercentiles(json, p.latency);
    json.EndObject();
  }
  json.EndArray();
  json.Key("headline").BeginObject();
  json.Key("papers").UInt(head.num_papers);
  json.Key("load_speedup").Double(head.load_speedup);
  json.Key("all_queries_identical").Bool(mismatches == 0);
  json.EndObject();
  json.EndObject();

  std::ofstream out("BENCH_scale.json");
  out << json.str() << "\n";
  out.close();
  std::printf("wrote BENCH_scale.json\n");

  // A fast loader that serves different paths is a broken loader: the
  // differential gate is part of the bench's exit status.
  if (mismatches > 0) {
    std::fprintf(stderr, "FAILED: %zu loaded-vs-rebuilt mismatches\n",
                 mismatches);
    return 1;
  }
  return 0;
}
