// Reproduces Table V: the preference study between Google Scholar (A)
// and NEWST/RePaGer (B) on the Prerequisite / Relevance / Completeness
// questionnaire axes, over the AI and DM domains (20 queries x 8 raters
// each; raters are simulated — see DESIGN.md §2).
//
// Expected shape (paper): B strongly preferred on Prerequisite (76-93%),
// roughly tied on Relevance, B ahead on Completeness.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/preference_judge.h"

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  std::printf("=== Table V: preference study, A = Google Scholar, "
              "B = NEWST ===\n");
  struct DomainSpec {
    const char* label;
    uint32_t domain_index;
  };
  // AI = domain 0; "DM" = the Database / Data Mining / IR domain (4).
  const DomainSpec domains[] = {{"AI", 0}, {"DM", 4}};

  TablePrinter table(
      {"Domain", "Criterion", "Prefer A (%)", "Same (%)", "Prefer B (%)"});
  for (const auto& d : domains) {
    eval::PreferenceOptions options;
    auto result_or = RunPreferenceStudy(*wb, d.domain_index, options);
    if (!result_or.ok()) {
      std::fprintf(stderr, "%s study failed: %s\n", d.label,
                   result_or.status().ToString().c_str());
      return 1;
    }
    const eval::PreferenceResult& r = result_or.value();
    struct Row {
      const char* criterion;
      const eval::CriterionOutcome* outcome;
    };
    const Row rows[] = {{"Prerequisite", &r.prerequisite},
                        {"Relevance", &r.relevance},
                        {"Completeness", &r.completeness}};
    for (const auto& row : rows) {
      table.AddRow({d.label, row.criterion,
                    FormatDouble(100.0 * row.outcome->prefer_a, 2),
                    FormatDouble(100.0 * row.outcome->same, 2),
                    FormatDouble(100.0 * row.outcome->prefer_b, 2)});
    }
  }
  table.Print(std::cout);
  return 0;
}
