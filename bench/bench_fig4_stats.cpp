// Reproduces the SurveyBank statistics section (§III-C):
//   Fig. 4a  — distribution of survey citation counts
//   Fig. 4b  — distribution of survey publication years
//   Fig. 4c  — distribution of reference-list lengths
//   Table I  — topic distribution over the 10 CCF domains + Uncertain
//   Fig. 5   — a connected citation-graph sample exported as DOT
// plus the Fig. 3 construction-funnel counters.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "graph/graph_io.h"
#include "graph/traversal.h"
#include "surveybank/stats.h"

namespace {

void PrintHistogram(const char* caption, const rpg::Histogram& h) {
  std::printf("%s\n", caption);
  rpg::TablePrinter table({"bucket", "#surveys", "fraction"});
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    table.AddRow({h.BucketLabel(i), std::to_string(h.bucket_count(i)),
                  rpg::FormatDouble(h.BucketFraction(i), 3)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  const auto& bank = wb->bank();
  const auto& funnel = bank.build_stats();
  std::printf("=== Fig. 3 construction funnel ===\n");
  std::printf("initial collection:   %zu\n", funnel.initial_collection);
  std::printf("after deduplication:  %zu\n", funnel.after_deduplication);
  std::printf("dropped (unparseable): %zu\n", funnel.dropped_unparseable);
  std::printf("dropped (page range):  %zu\n", funnel.dropped_page_range);
  std::printf("final dataset:        %zu\n\n", funnel.final_dataset);

  surveybank::SurveyBankStats stats = ComputeStats(bank, wb->corpus());
  std::printf("=== SurveyBank summary (§III-C) ===\n");
  std::printf("surveys: %zu, avg references: %.1f\n", bank.size(),
              stats.avg_references);
  std::printf("never cited: %.1f%%, cited > 500 times: %.1f%%\n",
              100.0 * stats.fraction_never_cited,
              100.0 * stats.fraction_cited_over_500);
  std::printf("published within recent 20 years: %.1f%%\n\n",
              100.0 * stats.fraction_recent_20y);

  PrintHistogram("=== Fig. 4a: survey citation counts ===",
                 stats.citation_counts);
  PrintHistogram("=== Fig. 4b: survey publication years ===",
                 stats.publication_years);
  PrintHistogram("=== Fig. 4c: reference-list lengths ===",
                 stats.reference_counts);

  std::printf("=== Table I: topic distribution ===\n%s\n",
              FormatTableOne(stats).c_str());

  // Fig. 5: a random connected sample of the citation graph, exported as
  // Graphviz DOT next to the binary.
  const auto& graph = wb->corpus().citations;
  std::vector<graph::PaperId> sample_nodes;
  {
    // BFS from a well-connected paper until ~300 nodes.
    graph::PaperId start = 0;
    size_t best_degree = 0;
    for (graph::PaperId p = 0; p < graph.num_nodes(); ++p) {
      if (graph.InDegree(p) > best_degree) {
        best_degree = graph.InDegree(p);
        start = p;
      }
    }
    graph::KHopResult khop = KHopNeighborhood(
        graph, {start}, 2, graph::Direction::kUndirected);
    sample_nodes = khop.AllNodes();
    if (sample_nodes.size() > 300) sample_nodes.resize(300);
  }
  std::string dot = graph::GraphIo::ToDot(graph, sample_nodes);
  const char* dot_path = "fig5_citation_sample.dot";
  std::ofstream out(dot_path);
  out << dot;
  out.close();
  std::printf("=== Fig. 5 ===\nconnected sample of %zu nodes written to %s\n",
              sample_nodes.size(), dot_path);
  size_t components = 0;
  ConnectedComponents(graph, &components);
  std::printf("full graph: %zu nodes, %zu edges, %zu undirected components, "
              "largest component %zu\n",
              graph.num_nodes(), graph.num_edges(), components,
              LargestComponentSize(graph));
  return 0;
}
