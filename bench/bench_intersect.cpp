// Microbenchmark for the sorted-set intersection kernels behind the
// Eq. (2) edge-cost stage (src/common/intersect.h): ns/op for every
// kernel — two-pointer merge, galloping, blocked branch-light merge,
// the adaptive dispatcher, and the dense-bitmap probe — across a
// |small| x ratio grid from 1:1 to 1:10^4, with the Eq. (2) cap of 7.
// The bitmap rows time the PROBE only (stamping is amortized across a
// whole adjacency row in the real workload, exactly as ConScratch uses
// it).
//
// Writes BENCH_intersect.json. Headline metrics the perf gate consumes
// (scripts/check_bench_regression.py):
//  - headline.adaptive_skewed_ns / adaptive_balanced_ns: the adaptive
//    kernel's cost at the most skewed and the balanced corner —
//    baseline-relative gates (2x noise band).
//  - headline.adaptive_worst_ratio_vs_merge: max over the grid of
//    adaptive_ns / merge_ns. Dimensionless, so it gates ABSOLUTELY on
//    any machine: if dispatch ever picks a kernel that loses badly to
//    the plain merge somewhere, this is the number that moves.
//
// Scale knobs (env):
//   RPG_INTERSECT_TRIALS  timing repetitions per cell (default 7, keeps
//                         the min — classic min-of-N denoising)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/intersect.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/timer.h"

namespace {

using namespace rpg;

using List = std::vector<uint32_t>;

/// Eq. (2) cap (rank::WeightModel::kConCap).
constexpr size_t kCap = 7;

List RandomSortedList(Rng* rng, size_t len, uint32_t universe) {
  List v;
  v.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    v.push_back(static_cast<uint32_t>(rng->NextBounded(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Times fn() over enough iterations to be clock-resolvable, returns
/// ns/op for the best of `trials` repetitions.
template <typename Fn>
double BestNsPerOp(int trials, size_t iters, Fn&& fn) {
  double best = 1e30;
  for (int t = 0; t < trials; ++t) {
    Timer timer;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, timer.ElapsedSeconds() * 1e9 /
                              static_cast<double>(iters));
  }
  return best;
}

struct Cell {
  size_t small_len = 0;
  size_t ratio = 0;
  size_t actual_small = 0;
  size_t actual_large = 0;
  double merge_ns = 0.0;
  double gallop_ns = 0.0;
  double blocked_ns = 0.0;
  double adaptive_ns = 0.0;
  double bitmap_probe_ns = 0.0;
};

}  // namespace

int main() {
  int trials = 7;
  if (const char* v = std::getenv("RPG_INTERSECT_TRIALS")) {
    trials = std::max(1, std::atoi(v));
  }

  // Grid: small side 8 / 64, ratio up to 10^4 (a low-degree paper
  // probed against a survey-sized reference list). Universe scales with
  // the large side so overlap stays sparse and the cap rarely
  // short-circuits the measurement.
  const size_t small_lens[] = {8, 64};
  const size_t ratios[] = {1, 4, 16, 256, 10000};

  Rng rng(20260808);
  std::vector<Cell> grid;
  // Defeat dead-code elimination across all timed loops.
  volatile uint64_t sink = 0;

  for (size_t small_len : small_lens) {
    for (size_t ratio : ratios) {
      const size_t large_len = small_len * ratio;
      if (large_len > 2'000'000) continue;
      const uint32_t universe =
          static_cast<uint32_t>(std::max<size_t>(4 * large_len, 256));
      List a = RandomSortedList(&rng, small_len, universe);
      List b = RandomSortedList(&rng, large_len, universe);
      const size_t iters = std::max<size_t>(
          8, 4'000'000 / (a.size() + b.size() + 16));

      Cell cell;
      cell.small_len = small_len;
      cell.ratio = ratio;
      cell.actual_small = a.size();
      cell.actual_large = b.size();
      cell.merge_ns = BestNsPerOp(trials, iters, [&] {
        sink = sink + intersect::CountCommonMerge(a, b, kCap);
      });
      cell.gallop_ns = BestNsPerOp(trials, iters, [&] {
        sink = sink + intersect::CountCommonGallop(a, b, kCap);
      });
      cell.blocked_ns = BestNsPerOp(trials, iters, [&] {
        sink = sink + intersect::CountCommonBlocked(a, b, kCap);
      });
      cell.adaptive_ns = BestNsPerOp(trials, iters, [&] {
        sink = sink + intersect::CountCommon(a, b, kCap);
      });
      // Bitmap: the large (high-degree) side is stamped once, probes
      // walk the small side — the ConScratch row pattern.
      intersect::NeighborBitmap bm;
      bm.EnsureUniverse(universe);
      bm.Stamp(b);
      cell.bitmap_probe_ns = BestNsPerOp(trials, iters, [&] {
        sink = sink + bm.CountCommon(a, kCap);
      });
      bm.Unstamp(b);
      grid.push_back(cell);

      std::printf(
          "small=%5zu ratio=%6zu  merge=%8.1fns gallop=%8.1fns "
          "blocked=%8.1fns adaptive=%8.1fns bitmap=%8.1fns\n",
          cell.actual_small, ratio, cell.merge_ns, cell.gallop_ns,
          cell.blocked_ns, cell.adaptive_ns, cell.bitmap_probe_ns);
    }
  }
  (void)sink;

  // Headline: balanced corner (first cell), most-skewed corner (largest
  // ratio present), and the worst adaptive-vs-merge ratio anywhere.
  const Cell* balanced = &grid.front();
  const Cell* skewed = &grid.front();
  double worst_ratio = 0.0;
  for (const Cell& c : grid) {
    if (c.ratio > skewed->ratio) skewed = &c;
    worst_ratio = std::max(worst_ratio, c.adaptive_ns / c.merge_ns);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("cap").UInt(kCap);
  json.Key("trials").Int(trials);
  json.Key("grid").BeginArray();
  for (const Cell& c : grid) {
    json.BeginObject();
    json.Key("small").UInt(c.actual_small);
    json.Key("large").UInt(c.actual_large);
    json.Key("ratio").UInt(c.ratio);
    json.Key("merge_ns").Double(c.merge_ns);
    json.Key("gallop_ns").Double(c.gallop_ns);
    json.Key("blocked_ns").Double(c.blocked_ns);
    json.Key("adaptive_ns").Double(c.adaptive_ns);
    json.Key("bitmap_probe_ns").Double(c.bitmap_probe_ns);
    json.EndObject();
  }
  json.EndArray();
  json.Key("headline").BeginObject();
  json.Key("adaptive_balanced_ns").Double(balanced->adaptive_ns);
  json.Key("adaptive_skewed_ns").Double(skewed->adaptive_ns);
  json.Key("skewed_merge_over_adaptive")
      .Double(skewed->merge_ns / skewed->adaptive_ns);
  json.Key("adaptive_worst_ratio_vs_merge").Double(worst_ratio);
  json.EndObject();
  json.EndObject();

  std::ofstream out("BENCH_intersect.json");
  out << json.str() << "\n";
  std::printf(
      "\nheadline: balanced=%.1fns skewed=%.1fns "
      "(merge/adaptive at skew: %.1fx, worst adaptive/merge: %.2fx)\n"
      "wrote BENCH_intersect.json\n",
      balanced->adaptive_ns, skewed->adaptive_ns,
      skewed->merge_ns / skewed->adaptive_ns, worst_ratio);
  return 0;
}
