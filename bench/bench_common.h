#ifndef RPG_BENCH_BENCH_COMMON_H_
#define RPG_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "eval/workbench.h"

namespace rpg::bench {

/// Evaluation scale knobs shared by all bench binaries. Override with
/// environment variables for bigger (slower, smoother) runs:
///   RPG_EVAL_QUERIES  — evaluation queries sampled from SurveyBank
///   RPG_CORPUS_SEED   — corpus seed
struct BenchConfig {
  size_t eval_queries = 60;
  uint64_t corpus_seed = 42;
  uint64_t sample_seed = 1234;
};

inline BenchConfig LoadBenchConfig() {
  BenchConfig config;
  if (const char* v = std::getenv("RPG_EVAL_QUERIES")) {
    config.eval_queries = static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("RPG_CORPUS_SEED")) {
    config.corpus_seed = std::strtoull(v, nullptr, 10);
  }
  return config;
}

/// Builds the standard workbench, aborting the bench on failure.
inline std::unique_ptr<eval::Workbench> BuildWorkbenchOrDie(
    const BenchConfig& config) {
  eval::WorkbenchOptions options;
  options.corpus.seed = config.corpus_seed;
  auto wb_or = eval::Workbench::Create(options);
  if (!wb_or.ok()) {
    std::fprintf(stderr, "workbench build failed: %s\n",
                 wb_or.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(wb_or).value();
}

}  // namespace rpg::bench

#endif  // RPG_BENCH_BENCH_COMMON_H_
