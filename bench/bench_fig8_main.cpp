// Reproduces Fig. 8: F1@K and P@K for K in {20, 25, 30, 35, 40, 45, 50}
// for the six systems (NEWST, Google Scholar, Microsoft Academic, AMiner,
// PageRank, SciBERT-substitute) under the three ground-truth levels
// (#occurrences >= 1/2/3).
//
// Expected shape (paper): NEWST best almost everywhere (especially at
// large K), engines degrade as K grows, PageRank worst, the semantic
// matcher in between.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "eval/evaluator.h"

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  std::vector<size_t> sample = eval::Evaluator::SampleEntries(
      wb->bank(), config.eval_queries, config.sample_seed);
  eval::Evaluator evaluator(wb.get(), sample);
  std::printf("=== Fig. 8: F1@K / P@K, %zu queries ===\n", sample.size());

  const std::vector<size_t> ks = {20, 25, 30, 35, 40, 45, 50};
  const std::vector<eval::LabelLevel> levels = {
      eval::LabelLevel::kAtLeast1, eval::LabelLevel::kAtLeast2,
      eval::LabelLevel::kAtLeast3};

  // grid[method][level][k]
  std::vector<std::vector<std::vector<eval::CellResult>>> grids;
  for (eval::Method method : eval::AllMethods()) {
    auto grid_or = evaluator.RunSweep(method, ks, levels);
    if (!grid_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", MethodName(method),
                   grid_or.status().ToString().c_str());
      return 1;
    }
    grids.push_back(std::move(grid_or).value());
  }

  std::vector<std::string> header = {"method"};
  for (size_t k : ks) header.push_back("K=" + std::to_string(k));
  for (size_t li = 0; li < levels.size(); ++li) {
    std::printf("\n--- ground truth: #occurrences >= %d ---\n",
                static_cast<int>(levels[li]));
    TablePrinter f1_table(header);
    TablePrinter p_table(header);
    auto methods = eval::AllMethods();
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      std::vector<double> f1s, ps;
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        f1s.push_back(grids[mi][li][ki].f1);
        ps.push_back(grids[mi][li][ki].precision);
      }
      f1_table.AddRow(MethodName(methods[mi]), f1s, 4);
      p_table.AddRow(MethodName(methods[mi]), ps, 4);
    }
    std::printf("F1 score:\n");
    f1_table.Print(std::cout);
    std::printf("Precision:\n");
    p_table.Print(std::cout);
  }
  return 0;
}
