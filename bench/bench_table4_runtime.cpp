// Reproduces Table IV: running time of the RePaGer pipeline on retrieval
// cases of growing sub-citation-graph size, plus the average over an
// evaluation sample. Implemented with google-benchmark for the per-case
// timing, followed by a plain Table IV printout.
//
// Expected shape (paper): time grows superlinearly with #nodes/#edges
// (the metric closure is O(|S||V|^2) worst case), seconds-scale totals.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/evaluator.h"

namespace {

using namespace rpg;

std::unique_ptr<eval::Workbench> g_wb;
std::vector<size_t> g_sample;

/// Runs RePaGer for the sample query at `index` with the given seed
/// count; more seeds -> larger sub-graphs (the Table IV case axis).
core::RePagerResult RunCase(size_t index, int num_seeds) {
  const auto& entry = g_wb->bank().Get(g_sample[index]);
  core::RePagerOptions options;
  options.num_initial_seeds = num_seeds;
  options.year_cutoff = entry.year;
  options.exclude = {entry.paper};
  auto result_or = g_wb->repager().Generate(entry.query, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "case failed: %s\n",
                 result_or.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result_or).value();
}

void BM_RePaGerPipeline(benchmark::State& state) {
  int num_seeds = static_cast<int>(state.range(0));
  size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    core::RePagerResult result = RunCase(0, num_seeds);
    nodes = result.subgraph_nodes;
    edges = result.subgraph_edges;
    benchmark::DoNotOptimize(result.ranked.data());
  }
  state.counters["subgraph_nodes"] = static_cast<double>(nodes);
  state.counters["subgraph_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_RePaGerPipeline)->Arg(10)->Arg(30)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::LoadBenchConfig();
  g_wb = bench::BuildWorkbenchOrDie(config);
  g_sample = eval::Evaluator::SampleEntries(g_wb->bank(),
                                            config.eval_queries,
                                            config.sample_seed);
  if (g_sample.empty()) {
    std::fprintf(stderr, "no sample queries\n");
    return 1;
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  // Table IV printout: three representative cases + test-set average.
  std::printf("\n=== Table IV: running time under different retrieval cases ===\n");
  TablePrinter table({"case", "#nodes", "#edges", "Time (seconds)"});
  const int case_seeds[] = {10, 30, 50};
  for (int i = 0; i < 3; ++i) {
    core::RePagerResult result = RunCase(0, case_seeds[i]);
    table.AddRow({StrFormat("Case %d", i + 1),
                  std::to_string(result.subgraph_nodes),
                  std::to_string(result.subgraph_edges),
                  FormatDouble(result.total_seconds, 2)});
  }
  // Average over the evaluation sample at the default 30 seeds.
  double total_nodes = 0, total_edges = 0, total_time = 0;
  size_t runs = std::min<size_t>(g_sample.size(), 20);
  for (size_t i = 0; i < runs; ++i) {
    core::RePagerResult result = RunCase(i, 30);
    total_nodes += static_cast<double>(result.subgraph_nodes);
    total_edges += static_cast<double>(result.subgraph_edges);
    total_time += result.total_seconds;
  }
  table.AddRow({"Avg. (test set)",
                std::to_string(static_cast<size_t>(total_nodes / runs)),
                std::to_string(static_cast<size_t>(total_edges / runs)),
                FormatDouble(total_time / static_cast<double>(runs), 2)});
  table.Print(std::cout);
  g_wb.reset();
  return 0;
}
