// Reproduces Table IV: running time of the RePaGer pipeline on retrieval
// cases of growing sub-citation-graph size, plus the average over an
// evaluation sample. Implemented with google-benchmark for the per-case
// timing, followed by a plain Table IV printout.
//
// Also benchmarks the Steiner hot path head-to-head: the classic
// per-terminal metric closure (O(|S| E log V)) vs the Mehlhorn
// single-pass closure (O(E log V)) on |S| >= 16 workloads, and writes
// machine-readable results (timings + SteinerStats work counters) to
// BENCH_table4.json so future PRs have a perf trajectory to compare
// against.
//
// Expected shape (paper): time grows superlinearly with #nodes/#edges
// under the classic closure; the Mehlhorn mode removes the |S| factor.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/batch_engine.h"
#include "core/repager.h"
#include "eval/evaluator.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "obs/trace.h"
#include "steiner/newst.h"

namespace {

using namespace rpg;

std::unique_ptr<eval::Workbench> g_wb;
std::vector<size_t> g_sample;

/// Runs RePaGer for the sample query at `index` with the given seed
/// count; more seeds -> larger sub-graphs (the Table IV case axis).
core::RePagerResult RunCase(size_t index, int num_seeds) {
  const auto& entry = g_wb->bank().Get(g_sample[index]);
  core::RePagerOptions options;
  options.num_initial_seeds = num_seeds;
  options.year_cutoff = entry.year;
  options.exclude = {entry.paper};
  auto result_or = g_wb->repager().Generate(entry.query, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "case failed: %s\n",
                 result_or.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result_or).value();
}

void BM_RePaGerPipeline(benchmark::State& state) {
  int num_seeds = static_cast<int>(state.range(0));
  size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    core::RePagerResult result = RunCase(0, num_seeds);
    nodes = result.subgraph_nodes;
    edges = result.subgraph_edges;
    benchmark::DoNotOptimize(result.ranked.data());
  }
  state.counters["subgraph_nodes"] = static_cast<double>(nodes);
  state.counters["subgraph_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_RePaGerPipeline)->Arg(10)->Arg(30)->Arg(50)
    ->Unit(benchmark::kMillisecond);

/// One measured solver run for the closure-mode comparison. The closure
/// phase timing lives in stats.closure_seconds.
struct SolverMeasurement {
  double seconds = 0.0;  // best-of-reps full solve
  double tree_cost = 0.0;
  steiner::SteinerStats stats;
};

SolverMeasurement MeasureMode(const steiner::WeightedGraph& g,
                              const std::vector<uint32_t>& terminals,
                              steiner::ClosureMode mode, int reps) {
  SolverMeasurement m;
  m.seconds = 1e30;
  steiner::NewstOptions options;
  options.closure_mode = mode;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    auto result = SolveNewst(g, terminals, options);
    double s = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "solver failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (s < m.seconds) {
      m.seconds = s;
      m.tree_cost = result->total_cost;
      m.stats = result->stats;
    }
  }
  return m;
}

/// A Steiner workload: the weighted sub-graph + local terminals RePaGer
/// would solve for one retrieval case, padded with extra engine hits
/// until |S| >= min_terminals.
struct SteinerCase {
  steiner::WeightedGraph graph;
  std::vector<uint32_t> terminals;
};

std::optional<SteinerCase> BuildSteinerCase(size_t index, int num_seeds,
                                            size_t min_terminals) {
  const auto& entry = g_wb->bank().Get(g_sample[index]);
  auto hits = g_wb->google().Search(entry.query, num_seeds, entry.year,
                                    {entry.paper});
  if (hits.empty()) return std::nullopt;
  std::vector<graph::PaperId> seeds;
  for (const auto& h : hits) seeds.push_back(h.doc);
  auto khop = KHopNeighborhood(g_wb->corpus().citations, seeds, 2,
                               graph::Direction::kOut);
  graph::Subgraph sg(g_wb->corpus().citations, khop.AllNodes());
  SteinerCase c;
  c.graph = core::BuildWeightedSubgraph(sg, g_wb->weights());
  std::vector<uint8_t> used(sg.num_nodes(), 0);
  auto add_terminal = [&](graph::PaperId p) {
    uint32_t local = sg.ToLocal(p);
    if (local == UINT32_MAX || used[local]) return;
    used[local] = 1;
    c.terminals.push_back(local);
  };
  for (graph::PaperId p :
       core::CoOccurrencePapers(g_wb->corpus().citations, seeds, 2)) {
    add_terminal(p);
  }
  // Pad with the raw engine seeds so every case reaches min_terminals.
  for (graph::PaperId s : seeds) {
    if (c.terminals.size() >= min_terminals) break;
    add_terminal(s);
  }
  if (c.terminals.size() < min_terminals) return std::nullopt;
  return c;
}

void WriteJson(JsonWriter& w, const SolverMeasurement& m) {
  w.BeginObject();
  w.Key("seconds").Double(m.seconds);
  w.Key("closure_seconds").Double(m.stats.closure_seconds);
  w.Key("tree_cost").Double(m.tree_cost);
  w.Key("nodes_settled").UInt(m.stats.nodes_settled);
  w.Key("heap_pushes").UInt(m.stats.heap_pushes);
  w.Key("closure_edges").UInt(m.stats.closure_edges);
  w.Key("dijkstra_runs").UInt(m.stats.dijkstra_runs);
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::LoadBenchConfig();
  g_wb = bench::BuildWorkbenchOrDie(config);
  g_sample = eval::Evaluator::SampleEntries(g_wb->bank(),
                                            config.eval_queries,
                                            config.sample_seed);
  if (g_sample.empty()) {
    std::fprintf(stderr, "no sample queries\n");
    return 1;
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  JsonWriter json;
  json.BeginObject();

  // Table IV printout: three representative cases + test-set average.
  std::printf("\n=== Table IV: running time under different retrieval cases ===\n");
  TablePrinter table({"case", "#nodes", "#edges", "Time (seconds)"});
  json.Key("pipeline_cases").BeginArray();
  const int case_seeds[] = {10, 30, 50};
  for (int i = 0; i < 3; ++i) {
    core::RePagerResult result = RunCase(0, case_seeds[i]);
    table.AddRow({StrFormat("Case %d", i + 1),
                  std::to_string(result.subgraph_nodes),
                  std::to_string(result.subgraph_edges),
                  FormatDouble(result.total_seconds, 2)});
    json.BeginObject();
    json.Key("num_seeds").Int(case_seeds[i]);
    json.Key("subgraph_nodes").UInt(result.subgraph_nodes);
    json.Key("subgraph_edges").UInt(result.subgraph_edges);
    json.Key("total_seconds").Double(result.total_seconds);
    json.Key("steiner_seconds").Double(result.steiner_seconds);
    json.Key("steiner_nodes_settled").UInt(result.steiner_stats.nodes_settled);
    json.EndObject();
  }
  json.EndArray();
  // Average over the evaluation sample at the default 30 seeds. The same
  // pass accumulates per-stage span times for the attribution section
  // below, so make sure spans are actually recorded.
  obs::SetTracingEnabled(true);
  double total_nodes = 0, total_edges = 0, total_time = 0;
  double stage_ms_sum[obs::kNumPipelineStages] = {};
  size_t runs = std::min<size_t>(g_sample.size(), 20);
  for (size_t i = 0; i < runs; ++i) {
    core::RePagerResult result = RunCase(i, 30);
    total_nodes += static_cast<double>(result.subgraph_nodes);
    total_edges += static_cast<double>(result.subgraph_edges);
    total_time += result.total_seconds;
    for (size_t s = 0; s < obs::kNumPipelineStages; ++s) {
      stage_ms_sum[s] += result.stages.StageMs(obs::kPipelineStages[s]);
    }
  }
  table.AddRow({"Avg. (test set)",
                std::to_string(static_cast<size_t>(total_nodes / runs)),
                std::to_string(static_cast<size_t>(total_edges / runs)),
                FormatDouble(total_time / static_cast<double>(runs), 2)});
  table.Print(std::cout);
  json.Key("avg_total_seconds")
      .Double(total_time / static_cast<double>(runs));

  // --- Per-stage latency attribution over the same sample --------------
  // Where the pipeline time goes, stage by stage, from the tracing spans
  // (docs/observability.md). attributed_fraction is the share of the
  // wall-clock total the spans explain; the perf gate asserts it stays
  // >= 0.9 so a stage can never silently fall out of the instrumentation.
  // With RPG_TRACING=OFF the section still prints, but all zeros.
  std::printf("\n=== Per-stage latency attribution (avg over sample) ===\n");
  TablePrinter stage_table({"stage", "avg ms", "share of total"});
  const double runs_d = static_cast<double>(runs);
  const double total_ms = total_time * 1e3;
  double attributed_ms = 0;
  for (size_t s = 0; s < obs::kNumPipelineStages; ++s) {
    attributed_ms += stage_ms_sum[s];
  }
  json.Key("stages").BeginObject();
  for (size_t s = 0; s < obs::kNumPipelineStages; ++s) {
    const std::string name = obs::StageName(obs::kPipelineStages[s]);
    stage_table.AddRow(
        {name, FormatDouble(stage_ms_sum[s] / runs_d, 3),
         FormatDouble(total_ms > 0 ? stage_ms_sum[s] / total_ms : 0.0, 3)});
    json.Key(name + "_ms").Double(stage_ms_sum[s] / runs_d);
  }
  double attributed_fraction = total_ms > 0 ? attributed_ms / total_ms : 0.0;
  stage_table.AddRow({"(attributed)", FormatDouble(attributed_ms / runs_d, 3),
                      FormatDouble(attributed_fraction, 3)});
  json.Key("total_ms").Double(total_ms / runs_d);
  json.Key("attributed_fraction").Double(attributed_fraction);
  json.EndObject();
  stage_table.Print(std::cout);

  // --- Tracing overhead: same sample, spans on vs off ------------------
  // Interleaved best-of-reps so both modes see the same cache/thermal
  // state; the perf gate holds overhead_ratio under 1.02 (< 2%).
  const int kTraceReps = 3;
  double traced_best = 1e30, untraced_best = 1e30;
  for (int r = 0; r < kTraceReps; ++r) {
    obs::SetTracingEnabled(true);
    Timer traced_timer;
    for (size_t i = 0; i < runs; ++i) RunCase(i, 30);
    traced_best = std::min(traced_best, traced_timer.ElapsedSeconds());
    obs::SetTracingEnabled(false);
    Timer untraced_timer;
    for (size_t i = 0; i < runs; ++i) RunCase(i, 30);
    untraced_best = std::min(untraced_best, untraced_timer.ElapsedSeconds());
  }
  obs::SetTracingEnabled(true);
  double overhead_ratio =
      untraced_best > 0 ? traced_best / untraced_best : 0.0;
  std::printf("\ntracing overhead: traced %.3fs vs untraced %.3fs "
              "(ratio %.4f)\n",
              traced_best, untraced_best, overhead_ratio);
  json.Key("tracing").BeginObject();
  json.Key("compiled_in").Bool(obs::kTracingCompiledIn);
  json.Key("traced_seconds").Double(traced_best);
  json.Key("untraced_seconds").Double(untraced_best);
  json.Key("overhead_ratio").Double(overhead_ratio);
  json.EndObject();

  // --- Steiner hot path: classic per-terminal closure vs Mehlhorn ------
  std::printf("\n=== Metric closure: classic (per-terminal Dijkstra) vs "
              "Mehlhorn (single pass), |S| >= 16 ===\n");
  TablePrinter closure_table({"|V|", "|E|", "|S|", "classic ms", "fast ms",
                              "closure speedup", "total speedup",
                              "cost ratio"});
  json.Key("closure_comparison").BeginArray();
  const int kReps = 5;
  const size_t kMinTerminals = 16;
  size_t cases_done = 0;
  double worst_closure_speedup = 1e30;
  for (size_t i = 0; i < g_sample.size() && cases_done < 6; ++i) {
    auto c = BuildSteinerCase(i, 50, kMinTerminals);
    if (!c) continue;
    SolverMeasurement classic =
        MeasureMode(c->graph, c->terminals, steiner::ClosureMode::kClassic,
                    kReps);
    SolverMeasurement fast =
        MeasureMode(c->graph, c->terminals, steiner::ClosureMode::kMehlhorn,
                    kReps);
    // A fast closure too quick for the clock to resolve has no
    // measurable ratio — report it as such rather than a fake 0 that
    // would poison the worst-case aggregate.
    bool closure_measurable = fast.stats.closure_seconds > 0.0;
    double closure_speedup =
        closure_measurable
            ? classic.stats.closure_seconds / fast.stats.closure_seconds
            : 0.0;
    bool total_measurable = fast.seconds > 0.0;
    double total_speedup = total_measurable ? classic.seconds / fast.seconds
                                            : 0.0;
    if (closure_measurable) {
      worst_closure_speedup = std::min(worst_closure_speedup, closure_speedup);
    }
    closure_table.AddRow(
        {std::to_string(c->graph.num_nodes()),
         std::to_string(c->graph.num_edges()),
         std::to_string(c->terminals.size()),
         FormatDouble(classic.seconds * 1e3, 2),
         FormatDouble(fast.seconds * 1e3, 2),
         closure_measurable ? FormatDouble(closure_speedup, 1) : "n/a",
         total_measurable ? FormatDouble(total_speedup, 1) : "n/a",
         FormatDouble(fast.tree_cost / classic.tree_cost, 4)});
    json.BeginObject();
    json.Key("subgraph_nodes").UInt(c->graph.num_nodes());
    json.Key("subgraph_edges").UInt(c->graph.num_edges());
    json.Key("num_terminals").UInt(c->terminals.size());
    json.Key("classic");
    WriteJson(json, classic);
    json.Key("fast");
    WriteJson(json, fast);
    json.Key("closure_speedup");
    if (closure_measurable) {
      json.Double(closure_speedup);
    } else {
      json.Null();
    }
    json.Key("total_speedup");
    if (total_measurable) {
      json.Double(total_speedup);
    } else {
      json.Null();
    }
    json.EndObject();
    ++cases_done;
  }
  json.EndArray();
  closure_table.Print(std::cout);
  if (cases_done > 0 && worst_closure_speedup < 1e30) {
    std::printf("\nworst-case closure speedup (Mehlhorn vs classic): %.1fx\n",
                worst_closure_speedup);
  }

  // --- Batched end-to-end: serial Generate vs BatchEngine --------------
  // The whole evaluation sample (twice, so the pool has enough work per
  // worker) at the default 30 seeds, swept over 1/2/4/8 threads with
  // per-worker scratch reuse on and off. Per-query results must be
  // bit-identical to serial.
  std::printf("\n=== Batched query engine: serial vs BatchEngine "
              "(1/2/4/8 threads, scratch on/off) ===\n");
  std::vector<core::BatchQuery> batch_queries;
  const size_t batch_sample = std::min<size_t>(g_sample.size(), 20);
  for (int rep = 0; rep < 2; ++rep) {
    for (size_t i = 0; i < batch_sample; ++i) {
      const auto& entry = g_wb->bank().Get(g_sample[i]);
      core::BatchQuery q;
      q.query = entry.query;
      q.options.num_initial_seeds = 30;
      q.options.year_cutoff = entry.year;
      q.options.exclude = {entry.paper};
      batch_queries.push_back(std::move(q));
    }
  }

  // Serial baseline: plain Generate per query (fresh scratch every call,
  // the pre-batching behaviour).
  std::vector<core::RePagerResult> serial_results;
  serial_results.reserve(batch_queries.size());
  Timer serial_timer;
  for (const auto& q : batch_queries) {
    auto r = g_wb->repager().Generate(q.query, q.options);
    if (!r.ok()) {
      std::fprintf(stderr, "serial batch query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    serial_results.push_back(std::move(r).value());
  }
  double serial_seconds = serial_timer.ElapsedSeconds();

  // Serial + one reused scratch: isolates the allocation-reuse win from
  // the threading win.
  {
    core::QueryScratch scratch;
    // Mirror the serial baseline's timed work exactly (Generate + store);
    // the identity check runs after the clock stops.
    std::vector<core::RePagerResult> scratch_results;
    scratch_results.reserve(batch_queries.size());
    Timer t;
    for (const auto& q : batch_queries) {
      auto r = g_wb->repager().Generate(q.query, q.options, &scratch);
      if (!r.ok()) {
        std::fprintf(stderr, "serial+scratch query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      scratch_results.push_back(std::move(r).value());
    }
    double scratch_seconds = t.ElapsedSeconds();
    for (size_t i = 0; i < scratch_results.size(); ++i) {
      if (scratch_results[i].ranked != serial_results[i].ranked) {
        std::fprintf(stderr,
                     "serial+scratch results diverged at query %zu\n", i);
        std::exit(1);
      }
    }
    std::printf("serial: %.3fs   serial+scratch: %.3fs (%.2fx)\n",
                serial_seconds, scratch_seconds,
                scratch_seconds > 0 ? serial_seconds / scratch_seconds : 0.0);
    json.Key("batched").BeginObject();
    json.Key("num_queries").UInt(batch_queries.size());
    json.Key("serial_seconds").Double(serial_seconds);
    json.Key("serial_scratch_seconds").Double(scratch_seconds);
  }

  TablePrinter batch_table({"threads", "scratch", "seconds", "speedup",
                            "identical"});
  json.Key("runs").BeginArray();
  for (int threads : {1, 2, 4, 8}) {
    for (bool reuse_scratch : {true, false}) {
      core::BatchEngineOptions be_options;
      be_options.num_threads = threads;
      be_options.reuse_scratch = reuse_scratch;
      core::BatchEngine engine(&g_wb->repager(), be_options);
      core::BatchResult batch = engine.Run(batch_queries);
      bool identical = batch.num_ok == batch_queries.size();
      for (size_t i = 0; identical && i < batch.results.size(); ++i) {
        const auto& r = batch.results[i];
        identical = r.ok() && r->ranked == serial_results[i].ranked &&
                    r->path.nodes() == serial_results[i].path.nodes() &&
                    r->path.edges() == serial_results[i].path.edges();
      }
      double speedup =
          batch.wall_seconds > 0 ? serial_seconds / batch.wall_seconds : 0.0;
      batch_table.AddRow({std::to_string(threads),
                          reuse_scratch ? "on" : "off",
                          FormatDouble(batch.wall_seconds, 3),
                          FormatDouble(speedup, 2),
                          identical ? "yes" : "NO"});
      json.BeginObject();
      json.Key("threads").Int(threads);
      json.Key("reuse_scratch").Bool(reuse_scratch);
      json.Key("seconds").Double(batch.wall_seconds);
      json.Key("speedup").Double(speedup);
      json.Key("identical").Bool(identical);
      json.Key("sum_query_seconds").Double(batch.sum_query_seconds);
      json.Key("steiner_nodes_settled")
          .UInt(batch.steiner_stats.nodes_settled);
      json.EndObject();
      if (!identical) {
        std::fprintf(stderr,
                     "batched results diverged from serial (threads=%d, "
                     "scratch=%d)\n",
                     threads, reuse_scratch ? 1 : 0);
        std::exit(1);
      }
    }
  }
  json.EndArray();
  json.EndObject();  // batched
  batch_table.Print(std::cout);

  json.EndObject();

  std::ofstream out("BENCH_table4.json");
  out << json.str() << "\n";
  out.close();
  std::printf("wrote BENCH_table4.json\n");
  g_wb.reset();
  return 0;
}
