// Epoch-churn bench (docs/serving.md, "Epoch lifecycle"): closed-loop
// serving load while the engine's epoch is flipped back and forth
// between two snapshots of the same corpus (original vs BFS-relabeled
// ids — every query resolves in both). Two phases on identical traffic:
//
//   baseline  no flips — steady-state latency + cache hit rate
//   churn     a flipper thread SwapEpochs every RPG_CHURN_FLIP_MS —
//             latency + hit rate under continuous invalidation churn
//
// Headline numbers in BENCH_churn.json:
//   flip_p99_ms          request p99 during churn (how much tail a flip
//                        storm costs vs baseline_p99_ms)
//   stale_eviction_rate  stale cache stamps lazily evicted per request
//                        during churn — proof the flip needs no global
//                        clear (rate > 0) and that eviction stays
//                        bounded by the request stream (rate <= ~1)
//
// Invariant (nonzero exit on violation): every request in both phases
// must succeed — an epoch flip is invisible to in-flight traffic.
//
// Scale knobs (env):
//   RPG_CHURN_CLIENTS   closed-loop client threads   (default 4)
//   RPG_CHURN_REQUESTS  requests per client          (default 60)
//   RPG_CHURN_QUERIES   distinct queries in the mix  (default 12)
//   RPG_CHURN_FLIP_MS   ms between epoch flips       (default 20)
//   RPG_CHURN_ZIPF_S    Zipf exponent                (default 1.1)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/evaluator.h"
#include "serve/epoch.h"
#include "serve/serve_engine.h"
#include "snapshot/snapshot_writer.h"

namespace {

using namespace rpg;

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) return std::strtod(v, nullptr);
  return fallback;
}

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  size_t count = 0;
};

Percentiles ComputePercentiles(std::vector<double> samples_ms) {
  Percentiles p;
  p.count = samples_ms.size();
  if (samples_ms.empty()) return p;
  std::sort(samples_ms.begin(), samples_ms.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples_ms.size()));
    return samples_ms[std::min(i, samples_ms.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = samples_ms.back();
  return p;
}

void WritePercentiles(JsonWriter& w, const Percentiles& p) {
  w.BeginObject();
  w.Key("count").UInt(p.count);
  w.Key("p50_ms").Double(p.p50);
  w.Key("p90_ms").Double(p.p90);
  w.Key("p99_ms").Double(p.p99);
  w.Key("max_ms").Double(p.max);
  w.EndObject();
}

/// One phase's aggregated outcome.
struct PhaseResult {
  double wall_seconds = 0.0;
  double throughput = 0.0;
  size_t requests = 0;
  size_t errors = 0;
  size_t cache_hits = 0;
  Percentiles latency;
  uint64_t flips = 0;
  uint64_t stale_evictions = 0;
  double hit_rate = 0.0;
  double stale_eviction_rate = 0.0;
};

}  // namespace

int main() {
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  const size_t num_clients = EnvSize("RPG_CHURN_CLIENTS", 4);
  const size_t requests_per_client = EnvSize("RPG_CHURN_REQUESTS", 60);
  const size_t num_queries = EnvSize("RPG_CHURN_QUERIES", 12);
  const size_t flip_ms = EnvSize("RPG_CHURN_FLIP_MS", 20);
  const double zipf_s = EnvDouble("RPG_CHURN_ZIPF_S", 1.1);

  // Two snapshots of the same corpus: epoch A as written, epoch B with
  // BFS-relabeled paper ids. Every query hits in both; the flip between
  // them is the churn under test.
  snapshot::SnapshotInput input;
  input.graph = &wb->corpus().citations;
  input.titles = &wb->titles();
  input.years = &wb->years();
  input.pagerank = &wb->pagerank();
  input.venue_scores = &wb->venue_scores();
  input.engine = &wb->google();
  input.matcher = &wb->matcher();
  input.corpus_seed = config.corpus_seed;
  const auto temp = std::filesystem::temp_directory_path();
  const std::string path_a = (temp / "rpg_bench_churn_a.snap").string();
  const std::string path_b = (temp / "rpg_bench_churn_b.snap").string();
  {
    snapshot::SnapshotWriterOptions writer_options;
    writer_options.relabel = false;
    Status status = snapshot::WriteSnapshot(input, path_a, writer_options);
    if (status.ok()) {
      writer_options.relabel = true;
      status = snapshot::WriteSnapshot(input, path_b, writer_options);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot write: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto epoch_a_or = serve::LoadEpochFromSnapshot(path_a, 1);
  auto epoch_b_or = serve::LoadEpochFromSnapshot(path_b, 2);
  if (!epoch_a_or.ok() || !epoch_b_or.ok()) {
    std::fprintf(stderr, "epoch load failed\n");
    return 1;
  }
  serve::EpochHandle epoch_a = epoch_a_or.value();
  serve::EpochHandle epoch_b = epoch_b_or.value();

  // Zipf-ranked query mix, same shape as bench_serve_load.
  std::vector<size_t> sample = eval::Evaluator::SampleEntries(
      wb->bank(), std::max(num_queries, size_t{1}), config.sample_seed);
  std::vector<std::string> queries;
  for (size_t idx : sample) queries.push_back(wb->bank().Get(idx).query);
  if (queries.size() < 2) {
    std::fprintf(stderr, "not enough SurveyBank queries\n");
    return 1;
  }

  std::printf("epoch churn: %zu clients x %zu requests, %zu queries, "
              "Zipf(s=%.2f), flip every %zums (%llu papers / %llu edges "
              "per epoch)\n",
              num_clients, requests_per_client, queries.size(), zipf_s,
              flip_ms,
              static_cast<unsigned long long>(epoch_a->info().num_papers),
              static_cast<unsigned long long>(epoch_a->info().num_edges));

  // Closed loop straight against the engine (no HTTP): each client fires
  // its next request as soon as the previous completes. `flip_every_ms`
  // == 0 is the no-flip baseline.
  auto run_phase = [&](size_t flip_every_ms) -> PhaseResult {
    serve::ServeEngineOptions serve_options;
    serve::ServeEngine engine(epoch_a, serve_options);
    std::atomic<bool> stop_flipping{false};
    std::thread flipper;
    if (flip_every_ms > 0) {
      flipper = std::thread([&] {
        bool to_b = true;
        while (!stop_flipping.load(std::memory_order_relaxed)) {
          engine.SwapEpoch(to_b ? epoch_b : epoch_a);
          to_b = !to_b;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(flip_every_ms));
        }
      });
    }

    std::vector<std::vector<double>> latencies(num_clients);
    std::vector<size_t> errors(num_clients, 0);
    std::vector<size_t> hits(num_clients, 0);
    Timer wall;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(0xc42fULL + c);
        for (size_t i = 0; i < requests_per_client; ++i) {
          size_t rank = rng.Zipf(queries.size(), zipf_s);  // 1-based
          Timer t;
          auto r = engine.Generate(queries[rank - 1], 0, 0);
          latencies[c].push_back(t.ElapsedMillis());
          if (!r.ok()) {
            ++errors[c];
            continue;
          }
          if (r->cache_hit) ++hits[c];
        }
      });
    }
    for (auto& t : clients) t.join();
    PhaseResult phase;
    phase.wall_seconds = wall.ElapsedSeconds();
    if (flipper.joinable()) {
      stop_flipping.store(true, std::memory_order_relaxed);
      flipper.join();
    }

    std::vector<double> all_ms;
    for (size_t c = 0; c < num_clients; ++c) {
      all_ms.insert(all_ms.end(), latencies[c].begin(), latencies[c].end());
      phase.errors += errors[c];
      phase.cache_hits += hits[c];
    }
    phase.requests = all_ms.size();
    phase.latency = ComputePercentiles(std::move(all_ms));
    phase.throughput =
        phase.wall_seconds > 0
            ? static_cast<double>(phase.requests) / phase.wall_seconds
            : 0.0;
    phase.flips = engine.epoch_flips();
    phase.stale_evictions = engine.cache().Stats().stale_evictions;
    phase.hit_rate = phase.requests > 0
                         ? static_cast<double>(phase.cache_hits) /
                               static_cast<double>(phase.requests)
                         : 0.0;
    phase.stale_eviction_rate =
        phase.requests > 0 ? static_cast<double>(phase.stale_evictions) /
                                 static_cast<double>(phase.requests)
                           : 0.0;
    return phase;
  };

  PhaseResult baseline = run_phase(0);
  PhaseResult churn = run_phase(flip_ms);

  TablePrinter table({"phase", "req/s", "p50 ms", "p99 ms", "hit rate",
                      "flips", "stale evict", "errors"});
  auto add_row = [&](const char* name, const PhaseResult& p) {
    table.AddRow({name, FormatDouble(p.throughput, 1),
                  FormatDouble(p.latency.p50, 3),
                  FormatDouble(p.latency.p99, 3),
                  FormatDouble(p.hit_rate, 3), std::to_string(p.flips),
                  std::to_string(p.stale_evictions),
                  std::to_string(p.errors)});
  };
  add_row("baseline", baseline);
  add_row("churn", churn);
  table.Print(std::cout);
  std::printf("flip p99 %.3fms (baseline %.3fms), stale eviction rate "
              "%.3f/req across %llu flips, 0 global clears\n",
              churn.latency.p99, baseline.latency.p99,
              churn.stale_eviction_rate,
              static_cast<unsigned long long>(churn.flips));

  JsonWriter json;
  json.BeginObject();
  json.Key("config").BeginObject();
  json.Key("clients").UInt(num_clients);
  json.Key("requests_per_client").UInt(requests_per_client);
  json.Key("distinct_queries").UInt(queries.size());
  json.Key("flip_ms").UInt(flip_ms);
  json.Key("zipf_s").Double(zipf_s);
  json.Key("num_papers").UInt(epoch_a->info().num_papers);
  json.Key("num_edges").UInt(epoch_a->info().num_edges);
  json.EndObject();
  json.Key("flip_p99_ms").Double(churn.latency.p99);
  json.Key("stale_eviction_rate").Double(churn.stale_eviction_rate);
  json.Key("errors").UInt(baseline.errors + churn.errors);
  auto write_phase = [&](const char* name, const PhaseResult& p) {
    json.Key(name).BeginObject();
    json.Key("wall_seconds").Double(p.wall_seconds);
    json.Key("throughput_rps").Double(p.throughput);
    json.Key("requests").UInt(p.requests);
    json.Key("errors").UInt(p.errors);
    json.Key("cache_hit_rate").Double(p.hit_rate);
    json.Key("epoch_flips").UInt(p.flips);
    json.Key("stale_evictions").UInt(p.stale_evictions);
    json.Key("stale_eviction_rate").Double(p.stale_eviction_rate);
    json.Key("latency");
    WritePercentiles(json, p.latency);
    json.EndObject();
  };
  write_phase("baseline", baseline);
  write_phase("churn", churn);
  json.EndObject();

  std::ofstream out("BENCH_churn.json");
  out << json.str() << "\n";
  out.close();
  std::printf("wrote BENCH_churn.json\n");

  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);

  // The zero-error invariant: a flip must be invisible to live traffic.
  // The churn phase must also actually have flipped and lazily evicted.
  if (baseline.errors > 0 || churn.errors > 0) {
    std::fprintf(stderr, "FAIL: request errors under churn\n");
    return 1;
  }
  if (churn.flips == 0 || churn.stale_evictions == 0) {
    std::fprintf(stderr, "FAIL: churn phase did not exercise flips\n");
    return 1;
  }
  wb.reset();
  return 0;
}
