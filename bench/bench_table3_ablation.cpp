// Reproduces Table III: the two NEWST ablations (K=50, labels >= 1).
//
//  Left  (seed reallocation): NEWST / NEWST-W (initial seeds) /
//         NEWST-I (intersection) / NEWST-U (union).
//  Right (weights):           NEWST / NEWST-C (no Steiner step) /
//         NEWST-N (no node weights) / NEWST-E (no edge weights).
//
// Expected shape (paper): NEWST ≈ NEWST-I > NEWST-W on F1; NEWST-U best
// F1 but worst precision; NEWST-C best precision but no path and lower
// F1; NEWST-N / NEWST-E between NEWST-C and NEWST.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "eval/evaluator.h"

namespace {

using namespace rpg;

/// Evaluates one RePagerOptions variant.
eval::CellResult RunVariant(const eval::Workbench& wb,
                            const eval::Evaluator& evaluator,
                            core::RePagerOptions base) {
  auto grid_or = evaluator.RunCustomSweep(
      [&](const eval::QuerySpec& spec, size_t k)
          -> Result<std::vector<graph::PaperId>> {
        core::RePagerOptions options = base;
        options.year_cutoff = spec.year_cutoff;
        if (spec.exclude != graph::kInvalidPaper) {
          options.exclude = {spec.exclude};
        }
        RPG_ASSIGN_OR_RETURN(core::RePagerResult result,
                             wb.repager().Generate(spec.query, options));
        if (result.ranked.size() > k) result.ranked.resize(k);
        return result.ranked;
      },
      {50}, {eval::LabelLevel::kAtLeast1});
  if (!grid_or.ok()) {
    std::fprintf(stderr, "variant failed: %s\n",
                 grid_or.status().ToString().c_str());
    std::exit(1);
  }
  return grid_or.value()[0][0];
}

}  // namespace

int main() {
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  std::vector<size_t> sample = eval::Evaluator::SampleEntries(
      wb->bank(), config.eval_queries, config.sample_seed);
  eval::Evaluator evaluator(wb.get(), sample);
  std::printf("=== Table III: NEWST ablations (%zu queries, K=50) ===\n\n",
              sample.size());

  core::RePagerOptions newst;  // defaults = full model

  // Left half: seed reallocation.
  {
    TablePrinter table({"Methods", "F1 score", "Precision"});
    struct Variant {
      const char* name;
      core::SeedMode mode;
    };
    const Variant variants[] = {
        {"NEWST", core::SeedMode::kReallocated},
        {"NEWST-W", core::SeedMode::kInitial},
        {"NEWST-I", core::SeedMode::kIntersection},
        {"NEWST-U", core::SeedMode::kUnion},
    };
    for (const auto& v : variants) {
      core::RePagerOptions options = newst;
      options.seed_mode = v.mode;
      eval::CellResult cell = RunVariant(*wb, evaluator, options);
      table.AddRow(v.name, {cell.f1, cell.precision}, 4);
    }
    std::printf("Seed-reallocation ablation:\n");
    table.Print(std::cout);
  }

  // Right half: node/edge weights.
  {
    TablePrinter table({"Methods", "F1 score", "Precision"});
    struct Variant {
      const char* name;
      bool run_steiner;
      bool node_weights;
      bool edge_weights;
    };
    const Variant variants[] = {
        {"NEWST", true, true, true},
        {"NEWST-C", false, true, true},
        {"NEWST-N", true, false, true},
        {"NEWST-E", true, true, false},
    };
    for (const auto& v : variants) {
      core::RePagerOptions options = newst;
      options.run_steiner = v.run_steiner;
      options.newst.use_node_weights = v.node_weights;
      options.newst.use_edge_weights = v.edge_weights;
      eval::CellResult cell = RunVariant(*wb, evaluator, options);
      table.AddRow(v.name, {cell.f1, cell.precision}, 4);
    }
    std::printf("\nNode/edge-weight ablation:\n");
    table.Print(std::cout);
  }

  // Closure-mode ablation (ROADMAP follow-up to PR 1): the Mehlhorn
  // single-pass closure is the production default; this row pair shows
  // its end-task quality matches the classic per-terminal closure
  // (trees can differ node-by-node, so F1/precision may differ in the
  // last decimals — the shape to check is parity, not identity).
  {
    TablePrinter table({"Methods", "F1 score", "Precision"});
    struct Variant {
      const char* name;
      steiner::ClosureMode mode;
    };
    const Variant variants[] = {
        {"NEWST (Mehlhorn closure)", steiner::ClosureMode::kMehlhorn},
        {"NEWST (classic closure)", steiner::ClosureMode::kClassic},
    };
    for (const auto& v : variants) {
      core::RePagerOptions options = newst;
      options.newst.closure_mode = v.mode;
      eval::CellResult cell = RunVariant(*wb, evaluator, options);
      table.AddRow(v.name, {cell.f1, cell.precision}, 4);
    }
    std::printf("\nClosure-mode ablation:\n");
    table.Print(std::cout);
  }
  return 0;
}
