// Reproduces Fig. 2: the overlap ratio between the engine's top-30/top-50
// results and a survey's reference lists (#occurrences >= 1/2/3), at the
// 0th / 1st / 2nd citation order. The paper's shape: 0th-order overlap is
// low (~0.06-0.14) and rises steeply with expansion (to ~0.6-0.7).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "eval/overlap.h"

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  std::printf("=== Fig. 2: engine-results vs survey-reference overlap ===\n");
  for (int top_k : {30, 50}) {
    eval::OverlapOptions options;
    options.top_k = top_k;
    options.subset_size = config.eval_queries;
    auto result_or = RunOverlapExperiment(*wb, options);
    if (!result_or.ok()) {
      std::fprintf(stderr, "overlap experiment failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    const eval::OverlapResult& r = result_or.value();
    std::printf("\n(TOP %d, averaged over %zu high-score surveys)\n", top_k,
                r.surveys);
    TablePrinter table({"order", "#occurrences>=1", "#occurrences>=2",
                        "#occurrences>=3"});
    const char* order_names[] = {"0 order", "1st order", "2nd order"};
    for (int order = 0; order < 3; ++order) {
      table.AddRow(order_names[order],
                   {r.ratio[order][0], r.ratio[order][1], r.ratio[order][2]},
                   2);
    }
    table.Print(std::cout);
  }
  return 0;
}
