// Closed-loop load generator for the serving layer (docs/serving.md):
// N client threads hammer a live HttpServer + serve::ServeEngine over
// persistent (keep-alive) connections with a Zipfian query mix — the
// repeat-heavy shape of real survey traffic, where popular topics
// dominate — and record per-request latencies split by cache hit/miss
// (the response carries "cache_hit"). Writes throughput and latency
// percentiles to BENCH_serve.json; the headline number is the median-
// latency win of the cache path (hit p50 vs miss p50).
//
// Scale knobs (env):
//   RPG_SERVE_CLIENTS      client threads              (default 4)
//   RPG_SERVE_REQUESTS     requests per client         (default 80)
//   RPG_SERVE_QUERIES      distinct queries in the mix (default 12)
//   RPG_SERVE_ZIPF_S       Zipf exponent               (default 1.1)
//   RPG_SERVE_THREADS      BatchEngine worker threads  (default hardware)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/evaluator.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "serve/serve_engine.h"
#include "ui/http_client.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace {

using namespace rpg;

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) return std::strtod(v, nullptr);
  return fallback;
}

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  size_t count = 0;
};

Percentiles ComputePercentiles(std::vector<double> samples_ms) {
  Percentiles p;
  p.count = samples_ms.size();
  if (samples_ms.empty()) return p;
  std::sort(samples_ms.begin(), samples_ms.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples_ms.size()));
    return samples_ms[std::min(i, samples_ms.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = samples_ms.back();
  return p;
}

void WritePercentiles(JsonWriter& w, const Percentiles& p) {
  w.BeginObject();
  w.Key("count").UInt(p.count);
  w.Key("p50_ms").Double(p.p50);
  w.Key("p90_ms").Double(p.p90);
  w.Key("p99_ms").Double(p.p99);
  w.Key("max_ms").Double(p.max);
  w.EndObject();
}

struct ClientResult {
  std::vector<double> hit_ms;
  std::vector<double> miss_ms;
  size_t errors = 0;
};

}  // namespace

int main() {
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  const size_t num_clients = EnvSize("RPG_SERVE_CLIENTS", 4);
  const size_t requests_per_client = EnvSize("RPG_SERVE_REQUESTS", 80);
  const size_t num_queries = EnvSize("RPG_SERVE_QUERIES", 12);
  const double zipf_s = EnvDouble("RPG_SERVE_ZIPF_S", 1.1);
  const long engine_threads =
      static_cast<long>(EnvSize("RPG_SERVE_THREADS", 0));

  // The serving stack under test.
  serve::ServeEngineOptions serve_options;
  serve_options.num_threads = static_cast<int>(engine_threads);
  serve::ServeEngine engine(&wb->repager(), serve_options);
  ui::RePagerService service(&engine, &wb->repager(), &wb->titles(),
                             &wb->years());
  ui::HttpServer server([&](const ui::HttpRequest& request) {
    return service.Handle(request);
  });
  auto port_or = server.Start(0);
  if (!port_or.ok()) {
    std::fprintf(stderr, "server: %s\n", port_or.status().ToString().c_str());
    return 1;
  }
  const int port = port_or.value();

  // Zipf-ranked query targets: rank 1 = hottest topic.
  std::vector<size_t> sample = eval::Evaluator::SampleEntries(
      wb->bank(), std::max(num_queries, size_t{1}), config.sample_seed);
  if (sample.size() < 2) {
    std::fprintf(stderr, "not enough SurveyBank queries\n");
    return 1;
  }
  std::vector<std::string> targets;
  for (size_t idx : sample) {
    const auto& entry = wb->bank().Get(idx);
    std::string q;
    for (char c : entry.query) q += (c == ' ') ? '+' : c;
    targets.push_back("/api/path?q=" + q +
                      "&year=" + std::to_string(entry.year));
  }

  std::printf("serve load: %zu clients x %zu requests, %zu queries, "
              "Zipf(s=%.2f), %zu engine threads, keep-alive HTTP\n",
              num_clients, requests_per_client, targets.size(), zipf_s,
              engine.num_threads());

  // Closed loop: every client thread owns one keep-alive connection and
  // fires its next request as soon as the previous one completes.
  std::vector<ClientResult> results(num_clients);
  Timer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      ClientResult& out = results[c];
      Rng rng(0x5eedULL + c);
      ui::HttpClient client;
      if (!client.Connect(port).ok()) {
        out.errors = requests_per_client;
        return;
      }
      for (size_t i = 0; i < requests_per_client; ++i) {
        size_t rank = rng.Zipf(targets.size(), zipf_s);  // 1-based
        const std::string& target = targets[rank - 1];
        Timer t;
        auto r = client.Fetch("GET", target);
        double ms = t.ElapsedMillis();
        if (!r.ok() || r->status != 200) {
          ++out.errors;
          continue;
        }
        bool hit =
            r->body.find("\"cache_hit\":true") != std::string::npos;
        (hit ? out.hit_ms : out.miss_ms).push_back(ms);
      }
    });
  }
  for (auto& t : clients) t.join();
  double wall_seconds = wall.ElapsedSeconds();
  server.Stop();

  // ---------------------------------------------------------- aggregate
  std::vector<double> all_ms, hit_ms, miss_ms;
  size_t errors = 0;
  for (const ClientResult& r : results) {
    hit_ms.insert(hit_ms.end(), r.hit_ms.begin(), r.hit_ms.end());
    miss_ms.insert(miss_ms.end(), r.miss_ms.begin(), r.miss_ms.end());
    errors += r.errors;
  }
  all_ms = hit_ms;
  all_ms.insert(all_ms.end(), miss_ms.begin(), miss_ms.end());

  Percentiles overall = ComputePercentiles(all_ms);
  Percentiles hits = ComputePercentiles(hit_ms);
  Percentiles misses = ComputePercentiles(miss_ms);
  double throughput =
      wall_seconds > 0 ? static_cast<double>(all_ms.size()) / wall_seconds
                       : 0.0;
  double cache_speedup =
      (hits.count > 0 && hits.p50 > 0) ? misses.p50 / hits.p50 : 0.0;

  TablePrinter table({"slice", "count", "p50 ms", "p90 ms", "p99 ms"});
  auto add_row = [&](const char* name, const Percentiles& p) {
    table.AddRow({name, std::to_string(p.count), FormatDouble(p.p50, 3),
                  FormatDouble(p.p90, 3), FormatDouble(p.p99, 3)});
  };
  add_row("all", overall);
  add_row("cache hit", hits);
  add_row("cache miss", misses);
  table.Print(std::cout);
  std::printf("throughput: %.1f req/s over %.2fs, %zu errors\n", throughput,
              wall_seconds, errors);
  if (cache_speedup > 0) {
    std::printf("cache path median speedup: %.1fx (miss p50 %.2fms / "
                "hit p50 %.3fms)\n",
                cache_speedup, misses.p50, hits.p50);
  }

  // Server-side view for cross-checking the client-side split.
  serve::QueryCacheStats cache_stats = engine.cache().Stats();

  JsonWriter json;
  json.BeginObject();
  json.Key("config").BeginObject();
  json.Key("clients").UInt(num_clients);
  json.Key("requests_per_client").UInt(requests_per_client);
  json.Key("distinct_queries").UInt(targets.size());
  json.Key("zipf_s").Double(zipf_s);
  json.Key("engine_threads").UInt(engine.num_threads());
  json.EndObject();
  json.Key("wall_seconds").Double(wall_seconds);
  json.Key("throughput_rps").Double(throughput);
  json.Key("errors").UInt(errors);
  json.Key("overall");
  WritePercentiles(json, overall);
  json.Key("cache_hit");
  WritePercentiles(json, hits);
  json.Key("cache_miss");
  WritePercentiles(json, misses);
  json.Key("cache_median_speedup").Double(cache_speedup);
  json.Key("server").BeginObject();
  json.Key("cache_hits").UInt(cache_stats.hits);
  json.Key("cache_misses").UInt(cache_stats.misses);
  json.Key("cache_entries").UInt(cache_stats.entries);
  json.Key("cache_bytes").UInt(cache_stats.bytes);
  json.Key("stats_json").Raw(engine.StatsJson());
  json.EndObject();
  json.EndObject();

  std::ofstream out("BENCH_serve.json");
  out << json.str() << "\n";
  out.close();
  std::printf("wrote BENCH_serve.json\n");

  if (errors > 0) return 1;
  wb.reset();
  return 0;
}
