// Closed-loop load generator for the serving layer (docs/serving.md):
// N client threads hammer a live epoll HttpServer + serve::ServeEngine
// over persistent (keep-alive) connections with a Zipfian query mix —
// the repeat-heavy shape of real survey traffic, where popular topics
// dominate — and record per-request latencies split by cache hit/miss
// (the response carries "cache_hit"). The client count is swept
// (default 4/16/64 keep-alive connections) to show the reactor holding
// throughput as connections grow past the old thread-per-connection
// sweet spot; the query cache is cleared between sweep points so every
// point sees the same cold-miss + warm-hit mix. Writes one row per
// sweep point to BENCH_serve.json; the headline number is the median-
// latency win of the cache path (hit p50 vs miss p50).
//
// After the sweep, an abuse scenario (RPG_SERVE_LORIS > 0) proves the
// connection lifecycle: slow-loris connections are held against a
// capped server (extra connects shed with 503), the loris are reaped by
// the idle deadline, and a fresh loris pack is held WHILE the
// closed-loop clients run — well-behaved traffic must finish with 0
// errors and a hit-path p50 comparable to the unmolested baseline.
// A final overload burst against a deliberately tiny batcher queue
// counts the 429 (Retry-After) sheds. All of it lands in the "abuse"
// section of BENCH_serve.json.
//
// Scale knobs (env):
//   RPG_SERVE_CLIENT_SWEEP comma-separated client counts ("4,16,64")
//   RPG_SERVE_CLIENTS      single client count (overrides the sweep)
//   RPG_SERVE_REQUESTS     requests per client         (default 40)
//   RPG_SERVE_QUERIES      distinct queries in the mix (default 12)
//   RPG_SERVE_ZIPF_S       Zipf exponent               (default 1.1)
//   RPG_SERVE_THREADS      BatchEngine worker threads  (default hardware)
//   RPG_SERVE_POLLERS      epoll reactor threads       (default 2)
//   RPG_SERVE_LORIS        slow-loris connections held (default 32; 0 skips)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/evaluator.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "serve/serve_engine.h"
#include "ui/http_client.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace {

using namespace rpg;

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) return std::strtod(v, nullptr);
  return fallback;
}

/// The connection-count sweep: RPG_SERVE_CLIENTS pins a single point,
/// otherwise RPG_SERVE_CLIENT_SWEEP (default "4,16,64") is parsed as a
/// comma-separated list.
std::vector<size_t> ClientSweep() {
  if (const char* v = std::getenv("RPG_SERVE_CLIENTS")) {
    return {static_cast<size_t>(std::strtoull(v, nullptr, 10))};
  }
  const char* sweep = std::getenv("RPG_SERVE_CLIENT_SWEEP");
  std::vector<size_t> counts;
  for (const std::string& part : Split(sweep ? sweep : "4,16,64", ',')) {
    size_t n = static_cast<size_t>(std::strtoull(part.c_str(), nullptr, 10));
    if (n > 0) counts.push_back(n);
  }
  if (counts.empty()) counts = {4};
  return counts;
}

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  size_t count = 0;
};

Percentiles ComputePercentiles(std::vector<double> samples_ms) {
  Percentiles p;
  p.count = samples_ms.size();
  if (samples_ms.empty()) return p;
  std::sort(samples_ms.begin(), samples_ms.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples_ms.size()));
    return samples_ms[std::min(i, samples_ms.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = samples_ms.back();
  return p;
}

void WritePercentiles(JsonWriter& w, const Percentiles& p) {
  w.BeginObject();
  w.Key("count").UInt(p.count);
  w.Key("p50_ms").Double(p.p50);
  w.Key("p90_ms").Double(p.p90);
  w.Key("p99_ms").Double(p.p99);
  w.Key("max_ms").Double(p.max);
  w.EndObject();
}

struct ClientResult {
  std::vector<double> hit_ms;
  std::vector<double> miss_ms;
  size_t errors = 0;
};

/// One sweep point's aggregated outcome.
struct SweepPoint {
  size_t clients = 0;
  double wall_seconds = 0.0;
  double throughput = 0.0;
  size_t errors = 0;
  Percentiles overall, hits, misses;
  double cache_speedup = 0.0;
  size_t peak_open_connections = 0;
};

/// The abuse scenario's outcome (see file header).
struct AbuseResult {
  bool ran = false;
  size_t loris = 0;              ///< slow-loris connections held
  size_t shed_probes = 0;        ///< extra connects fired at the full cap
  size_t shed_503 = 0;           ///< ...that got the inline 503
  uint64_t idle_closes = 0;      ///< loris reaped by the idle deadline
  uint64_t connections_shed = 0; ///< server-side shed counter
  SweepPoint well_behaved;       ///< closed-loop clients run under abuse
  double hit_p50_ratio = 0.0;    ///< abuse hit p50 / baseline hit p50
  size_t overload_requests = 0;
  size_t overload_200 = 0;
  size_t overload_429 = 0;
  bool retry_after_seen = false;
  size_t deadline_requests = 0;  ///< requests sent into a wedged handler
  size_t deadline_503 = 0;       ///< ...answered 503 by the handler reap
  uint64_t deadline_closes = 0;  ///< server-side reap counter
  size_t fast_during_wedge = 0;  ///< healthy 200s served while wedged
  size_t failures = 0;  ///< scenario invariants that did not hold
};

/// Blocking loopback connect; -1 on failure.
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Polls `predicate` every 10 ms for up to `seconds`.
bool PollFor(double seconds, const std::function<bool()>& predicate) {
  const int rounds = static_cast<int>(seconds * 100.0);
  for (int i = 0; i < rounds; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

/// Opens `count` slow-loris connections against `port`, each parking a
/// partial request line forever. Returns the held fds.
std::vector<int> HoldLoris(int port, size_t count) {
  std::vector<int> fds;
  for (size_t i = 0; i < count; ++i) {
    int fd = RawConnect(port);
    if (fd < 0) continue;
    const char drip[] = "GET /loris HTTP/1.1\r\nX-Drip: a";
    [[maybe_unused]] ssize_t n = ::write(fd, drip, sizeof(drip) - 1);
    fds.push_back(fd);
  }
  return fds;
}

}  // namespace

int main() {
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  const std::vector<size_t> sweep = ClientSweep();
  const size_t requests_per_client = EnvSize("RPG_SERVE_REQUESTS", 40);
  const size_t num_queries = EnvSize("RPG_SERVE_QUERIES", 12);
  const double zipf_s = EnvDouble("RPG_SERVE_ZIPF_S", 1.1);
  const long engine_threads =
      static_cast<long>(EnvSize("RPG_SERVE_THREADS", 0));
  const int pollers = static_cast<int>(EnvSize("RPG_SERVE_POLLERS", 2));
  const size_t loris = EnvSize("RPG_SERVE_LORIS", 32);

  // The serving stack under test: one engine + epoll reactor server
  // persists across the sweep; the cache is cleared between points.
  serve::ServeEngineOptions serve_options;
  serve_options.num_threads = static_cast<int>(engine_threads);
  serve::ServeEngine engine(&wb->repager(), serve_options);
  ui::RePagerService service(&engine, &wb->repager(), &wb->titles(),
                             &wb->years());
  ui::HttpServerOptions http_options;
  http_options.num_pollers = pollers;
  ui::HttpServer server(
      [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        service.HandleAsync(request, std::move(done));
      },
      http_options);
  service.AttachServer(&server);
  auto port_or = server.Start(0);
  if (!port_or.ok()) {
    std::fprintf(stderr, "server: %s\n", port_or.status().ToString().c_str());
    return 1;
  }
  const int port = port_or.value();

  // Zipf-ranked query targets: rank 1 = hottest topic.
  std::vector<size_t> sample = eval::Evaluator::SampleEntries(
      wb->bank(), std::max(num_queries, size_t{1}), config.sample_seed);
  if (sample.size() < 2) {
    std::fprintf(stderr, "not enough SurveyBank queries\n");
    return 1;
  }
  std::vector<std::string> targets;
  for (size_t idx : sample) {
    const auto& entry = wb->bank().Get(idx);
    std::string q;
    for (char c : entry.query) q += (c == ' ') ? '+' : c;
    targets.push_back("/api/path?q=" + q +
                      "&year=" + std::to_string(entry.year));
  }

  std::printf("serve load: client sweep {");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", sweep[i]);
  }
  std::printf("} x %zu requests, %zu queries, Zipf(s=%.2f), "
              "%zu engine threads, %d pollers, keep-alive HTTP\n",
              requests_per_client, targets.size(), zipf_s,
              engine.num_threads(), pollers);

  // Closed loop: every client thread owns one keep-alive connection and
  // fires its next request as soon as the previous one completes. Reused
  // verbatim by the abuse scenario against its own capped server.
  auto run_closed_loop = [&](ui::HttpServer& srv, int srv_port,
                             size_t num_clients) -> SweepPoint {
    std::vector<ClientResult> results(num_clients);
    std::atomic<size_t> peak_open{0};
    Timer wall;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        ClientResult& out = results[c];
        Rng rng(0x5eedULL + c);
        ui::HttpClient client;
        if (!client.Connect(srv_port).ok()) {
          out.errors = requests_per_client;
          return;
        }
        for (size_t i = 0; i < requests_per_client; ++i) {
          size_t rank = rng.Zipf(targets.size(), zipf_s);  // 1-based
          const std::string& target = targets[rank - 1];
          Timer t;
          auto r = client.Fetch("GET", target);
          double ms = t.ElapsedMillis();
          if (!r.ok() || r->status != 200) {
            ++out.errors;
            continue;
          }
          bool hit =
              r->body.find("\"cache_hit\":true") != std::string::npos;
          (hit ? out.hit_ms : out.miss_ms).push_back(ms);
        }
        size_t open = srv.Stats().open_connections;
        size_t prev = peak_open.load();
        while (open > prev && !peak_open.compare_exchange_weak(prev, open)) {
        }
      });
    }
    for (auto& t : clients) t.join();

    SweepPoint point;
    point.clients = num_clients;
    point.wall_seconds = wall.ElapsedSeconds();
    point.peak_open_connections = peak_open.load();
    std::vector<double> all_ms, hit_ms, miss_ms;
    for (const ClientResult& r : results) {
      hit_ms.insert(hit_ms.end(), r.hit_ms.begin(), r.hit_ms.end());
      miss_ms.insert(miss_ms.end(), r.miss_ms.begin(), r.miss_ms.end());
      point.errors += r.errors;
    }
    all_ms = hit_ms;
    all_ms.insert(all_ms.end(), miss_ms.begin(), miss_ms.end());
    point.overall = ComputePercentiles(all_ms);
    point.hits = ComputePercentiles(hit_ms);
    point.misses = ComputePercentiles(miss_ms);
    point.throughput = point.wall_seconds > 0
                           ? static_cast<double>(all_ms.size()) /
                                 point.wall_seconds
                           : 0.0;
    point.cache_speedup = (point.hits.count > 0 && point.hits.p50 > 0)
                              ? point.misses.p50 / point.hits.p50
                              : 0.0;
    return point;
  };

  std::vector<SweepPoint> points;
  size_t total_errors = 0;
  for (size_t num_clients : sweep) {
    // Same cold-miss + warm-hit mix at every point.
    engine.ClearCache();
    SweepPoint point = run_closed_loop(server, port, num_clients);
    total_errors += point.errors;
    points.push_back(point);
  }

  // ------------------------------------------------- abuse scenario
  AbuseResult abuse;
  if (loris > 0) {
    abuse.ran = true;
    abuse.loris = loris;
    std::printf("abuse scenario: %zu slow-loris connections, cap %zu, "
                "idle timeout 1200 ms\n", loris, loris);
    // A dedicated server with abuse-tuned limits, same engine/service:
    // the cap equals the loris pack so the extra probes shed
    // deterministically, and the idle deadline is short enough to watch
    // the reaping happen.
    ui::HttpServerOptions abuse_http;
    abuse_http.num_pollers = pollers;
    abuse_http.max_connections = loris;
    abuse_http.idle_timeout = std::chrono::milliseconds(1200);
    ui::HttpServer abuse_server(
        [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
          service.HandleAsync(request, std::move(done));
        },
        abuse_http);
    service.AttachServer(&abuse_server);
    auto abuse_port_or = abuse_server.Start(0);
    if (!abuse_port_or.ok()) {
      std::fprintf(stderr, "abuse server: %s\n",
                   abuse_port_or.status().ToString().c_str());
      return 1;
    }
    const int abuse_port = abuse_port_or.value();

    // Phase A — cap shed: fill the cap with held loris, then probe past
    // it; every probe must get the inline 503 instead of an fd.
    std::vector<int> pack = HoldLoris(abuse_port, loris);
    if (!PollFor(5.0, [&] {
          return abuse_server.Stats().open_connections >= loris;
        })) {
      ++abuse.failures;
    }
    abuse.shed_probes = 8;
    for (size_t i = 0; i < abuse.shed_probes; ++i) {
      int fd = RawConnect(abuse_port);
      if (fd < 0) continue;
      std::string response;
      char buf[512];
      ssize_t n;
      while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
        response.append(buf, static_cast<size_t>(n));
      }
      ::close(fd);
      if (response.find("503") != std::string::npos) ++abuse.shed_503;
    }
    if (abuse.shed_503 != abuse.shed_probes) ++abuse.failures;

    // Phase B — idle reaping: the pack must be swept by the deadline,
    // freeing every fd without a single byte more from the clients.
    if (!PollFor(5.0, [&] {
          return abuse_server.Stats().open_connections == 0 &&
                 abuse_server.Stats().idle_closes >= loris;
        })) {
      ++abuse.failures;
    }
    for (int fd : pack) ::close(fd);

    // Phase C — well-behaved traffic under abuse: re-hold half a pack
    // (leaving cap headroom for the clients) and run the closed loop
    // against the same Zipf mix. It must finish with 0 errors while the
    // loris sit on their fds.
    std::vector<int> second_pack = HoldLoris(abuse_port, loris / 2);
    PollFor(5.0, [&] {
      return abuse_server.Stats().open_connections >= loris / 2;
    });
    engine.ClearCache();
    // The cap still equals `loris` (phase A needed that), so only
    // loris - loris/2 slots are free: clamp the client count to the
    // headroom or large RPG_SERVE_CLIENTS / tiny RPG_SERVE_LORIS
    // combinations would shed their own well-behaved traffic.
    const size_t headroom = loris - loris / 2;
    const size_t abuse_clients =
        std::max<size_t>(1, std::min(sweep.front(), headroom));
    abuse.well_behaved =
        run_closed_loop(abuse_server, abuse_port, abuse_clients);
    if (abuse.well_behaved.errors > 0) ++abuse.failures;
    if (!points.empty() && points.front().hits.p50 > 0 &&
        abuse.well_behaved.hits.p50 > 0) {
      abuse.hit_p50_ratio =
          abuse.well_behaved.hits.p50 / points.front().hits.p50;
    }
    PollFor(5.0, [&] { return abuse_server.Stats().open_connections == 0; });
    for (int fd : second_pack) ::close(fd);
    abuse.idle_closes = abuse_server.Stats().idle_closes;
    abuse.connections_shed = abuse_server.Stats().connections_shed;
    abuse_server.Stop();
    service.AttachServer(&server);

    // Phase D — batcher overload: a burst of distinct cold queries
    // against a deliberately tiny queue (depth 2, batch size 1) must
    // split into 200s and 429-with-Retry-After sheds, nothing else.
    serve::ServeEngineOptions tiny;
    tiny.num_threads = 1;
    tiny.batcher.max_batch_size = 1;
    tiny.batcher.max_queue_depth = 2;
    serve::ServeEngine tiny_engine(&wb->repager(), tiny);
    ui::RePagerService tiny_service(&tiny_engine, &wb->repager(),
                                    &wb->titles(), &wb->years());
    ui::HttpServer tiny_server(
        [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
          tiny_service.HandleAsync(request, std::move(done));
        });
    auto tiny_port_or = tiny_server.Start(0);
    if (tiny_port_or.ok()) {
      abuse.overload_requests = 12;
      const auto& entry = wb->bank().Get(sample.front());
      std::string q;
      for (char c : entry.query) q += (c == ' ') ? '+' : c;
      std::atomic<size_t> ok200{0}, shed429{0}, retry_after{0};
      std::vector<std::thread> burst;
      for (size_t i = 0; i < abuse.overload_requests; ++i) {
        burst.emplace_back([&, i] {
          ui::HttpClient client;
          if (!client.Connect(tiny_port_or.value()).ok()) return;
          // Distinct seeds => distinct canonical keys => real computes.
          auto r = client.Fetch(
              "GET", "/api/path?q=" + q + "&seeds=" + std::to_string(10 + i) +
                         "&year=" + std::to_string(entry.year));
          if (!r.ok()) return;
          if (r->status == 200) ++ok200;
          if (r->status == 429) {
            ++shed429;
            if (r->headers.count("retry-after")) ++retry_after;
          }
        });
      }
      for (auto& t : burst) t.join();
      abuse.overload_200 = ok200.load();
      abuse.overload_429 = shed429.load();
      abuse.retry_after_seen = retry_after.load() == shed429.load();
      if (abuse.overload_200 + abuse.overload_429 != abuse.overload_requests ||
          abuse.overload_429 == 0 || !abuse.retry_after_seen) {
        ++abuse.failures;
      }
      tiny_server.Stop();
    } else {
      ++abuse.failures;
    }

    // Phase E — handler deadline: a route whose "solve" is deliberately
    // slower than handler_timeout. Every wedged request must be reaped
    // with 503 + close at the deadline while fast traffic on other
    // connections keeps flowing; the handler's late completions (long
    // after the reap) must be safe no-ops.
    ui::HttpServerOptions deadline_http;
    deadline_http.num_pollers = pollers;
    deadline_http.handler_timeout = std::chrono::milliseconds(150);
    ui::HttpServer deadline_server(
        [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
          if (request.path == "/slow") {
            std::thread([done = std::move(done)]() mutable {
              std::this_thread::sleep_for(std::chrono::milliseconds(600));
              done(ui::HttpResponse{200, "text/plain", "finally"});
            }).detach();
            return;
          }
          done(ui::HttpResponse{200, "text/plain", "fast"});
        },
        deadline_http);
    auto deadline_port_or = deadline_server.Start(0);
    if (deadline_port_or.ok()) {
      const int deadline_port = deadline_port_or.value();
      abuse.deadline_requests = 6;
      std::atomic<size_t> got_503{0};
      std::vector<std::thread> wedged;
      for (size_t i = 0; i < abuse.deadline_requests; ++i) {
        wedged.emplace_back([&] {
          int fd = RawConnect(deadline_port);
          if (fd < 0) return;
          const char request[] = "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n";
          if (::write(fd, request, sizeof(request) - 1) > 0) {
            std::string response;
            char buf[512];
            ssize_t n;
            while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
              response.append(buf, static_cast<size_t>(n));
            }
            if (response.find("503") != std::string::npos &&
                response.find("Connection: close") != std::string::npos) {
              ++got_503;
            }
          }
          ::close(fd);
        });
      }
      // While the wedged pack waits out its deadline, healthy requests
      // on fresh connections must be served immediately.
      for (int i = 0; i < 8; ++i) {
        ui::HttpClient fast;
        if (!fast.Connect(deadline_port).ok()) continue;
        auto r = fast.Fetch("GET", "/fast");
        if (r.ok() && r->status == 200) ++abuse.fast_during_wedge;
      }
      for (auto& t : wedged) t.join();
      abuse.deadline_503 = got_503.load();
      abuse.deadline_closes = deadline_server.Stats().deadline_closes;
      if (abuse.deadline_503 != abuse.deadline_requests ||
          abuse.deadline_closes < abuse.deadline_requests ||
          abuse.fast_during_wedge == 0) {
        ++abuse.failures;
      }
      // Let the parked handlers fire their late completions against
      // reaped connections before the server dies: must be a no-op.
      std::this_thread::sleep_for(std::chrono::milliseconds(700));
      deadline_server.Stop();
    } else {
      ++abuse.failures;
    }
  }

  // ---------------------------------------------------------- report
  TablePrinter table({"clients", "req/s", "all p50 ms", "hit p50 ms",
                      "miss p50 ms", "p99 ms", "errors"});
  for (const SweepPoint& p : points) {
    table.AddRow({std::to_string(p.clients), FormatDouble(p.throughput, 1),
                  FormatDouble(p.overall.p50, 3),
                  FormatDouble(p.hits.p50, 3), FormatDouble(p.misses.p50, 3),
                  FormatDouble(p.overall.p99, 3), std::to_string(p.errors)});
  }
  table.Print(std::cout);
  const SweepPoint& head = points.front();
  if (head.cache_speedup > 0) {
    std::printf("cache path median speedup at %zu clients: %.1fx "
                "(miss p50 %.2fms / hit p50 %.3fms)\n",
                head.clients, head.cache_speedup, head.misses.p50,
                head.hits.p50);
  }
  if (abuse.ran) {
    std::printf(
        "abuse: %zu loris held, %zu/%zu probes shed 503, %llu reaped "
        "(idle), well-behaved %zu reqs %zu errors (hit p50 %.3fms, "
        "%.2fx baseline), overload burst %zu -> %zu ok / %zu shed 429%s"
        ", wedged %zu/%zu reaped 503 at deadline (%zu fast 200s during)"
        " [%zu invariant failures]\n",
        abuse.loris, abuse.shed_503, abuse.shed_probes,
        static_cast<unsigned long long>(abuse.idle_closes),
        abuse.well_behaved.overall.count, abuse.well_behaved.errors,
        abuse.well_behaved.hits.p50, abuse.hit_p50_ratio,
        abuse.overload_requests, abuse.overload_200, abuse.overload_429,
        abuse.retry_after_seen ? " (Retry-After on every 429)" : "",
        abuse.deadline_503, abuse.deadline_requests, abuse.fast_during_wedge,
        abuse.failures);
  }

  // Server-side view for cross-checking the client-side split.
  serve::QueryCacheStats cache_stats = engine.cache().Stats();
  ui::HttpServerStats http_stats = server.Stats();

  JsonWriter json;
  json.BeginObject();
  json.Key("config").BeginObject();
  json.Key("client_sweep").BeginArray();
  for (size_t n : sweep) json.UInt(n);
  json.EndArray();
  json.Key("requests_per_client").UInt(requests_per_client);
  json.Key("distinct_queries").UInt(targets.size());
  json.Key("zipf_s").Double(zipf_s);
  json.Key("engine_threads").UInt(engine.num_threads());
  json.Key("pollers").UInt(static_cast<size_t>(pollers));
  json.EndObject();
  json.Key("errors").UInt(total_errors);
  json.Key("sweep").BeginArray();
  for (const SweepPoint& p : points) {
    json.BeginObject();
    json.Key("clients").UInt(p.clients);
    json.Key("wall_seconds").Double(p.wall_seconds);
    json.Key("throughput_rps").Double(p.throughput);
    json.Key("errors").UInt(p.errors);
    json.Key("peak_open_connections").UInt(p.peak_open_connections);
    json.Key("overall");
    WritePercentiles(json, p.overall);
    json.Key("cache_hit");
    WritePercentiles(json, p.hits);
    json.Key("cache_miss");
    WritePercentiles(json, p.misses);
    json.Key("cache_median_speedup").Double(p.cache_speedup);
    json.EndObject();
  }
  json.EndArray();
  if (abuse.ran) {
    json.Key("abuse").BeginObject();
    json.Key("loris_connections").UInt(abuse.loris);
    json.Key("shed_probes").UInt(abuse.shed_probes);
    json.Key("shed_503_responses").UInt(abuse.shed_503);
    json.Key("idle_closes").UInt(abuse.idle_closes);
    json.Key("connections_shed").UInt(abuse.connections_shed);
    json.Key("well_behaved").BeginObject();
    json.Key("clients").UInt(abuse.well_behaved.clients);
    json.Key("errors").UInt(abuse.well_behaved.errors);
    json.Key("throughput_rps").Double(abuse.well_behaved.throughput);
    json.Key("overall");
    WritePercentiles(json, abuse.well_behaved.overall);
    json.Key("cache_hit");
    WritePercentiles(json, abuse.well_behaved.hits);
    json.Key("cache_miss");
    WritePercentiles(json, abuse.well_behaved.misses);
    json.EndObject();
    json.Key("hit_p50_ratio_vs_baseline").Double(abuse.hit_p50_ratio);
    json.Key("overload_requests").UInt(abuse.overload_requests);
    json.Key("overload_200").UInt(abuse.overload_200);
    json.Key("overload_429").UInt(abuse.overload_429);
    json.Key("retry_after_on_429").Bool(abuse.retry_after_seen);
    json.Key("deadline_requests").UInt(abuse.deadline_requests);
    json.Key("deadline_503").UInt(abuse.deadline_503);
    json.Key("deadline_closes").UInt(abuse.deadline_closes);
    json.Key("fast_200_during_wedge").UInt(abuse.fast_during_wedge);
    json.Key("invariant_failures").UInt(abuse.failures);
    json.EndObject();
  }
  json.Key("server").BeginObject();
  json.Key("cache_hits").UInt(cache_stats.hits);
  json.Key("cache_misses").UInt(cache_stats.misses);
  json.Key("cache_entries").UInt(cache_stats.entries);
  json.Key("cache_bytes").UInt(cache_stats.bytes);
  json.Key("connections_accepted").UInt(http_stats.connections_accepted);
  json.Key("requests_handled").UInt(http_stats.requests_handled);
  json.Key("open_connections").UInt(http_stats.open_connections);
  json.Key("stats_json").Raw(engine.StatsJson());
  json.EndObject();
  json.EndObject();

  server.Stop();

  std::ofstream out("BENCH_serve.json");
  out << json.str() << "\n";
  out.close();
  std::printf("wrote BENCH_serve.json\n");

  if (total_errors > 0 || abuse.failures > 0) return 1;
  wb.reset();
  return 0;
}
