// Reproduces Table II: impact of the number of initial seed nodes on the
// NEWST model (F1 and precision at K=50, labels >= 1).
//
// Expected shape (paper): F1 rises with seed count and saturates;
// precision peaks near 30-40 seeds and dips when too many seeds inject
// noise papers.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "eval/evaluator.h"

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  std::vector<size_t> sample = eval::Evaluator::SampleEntries(
      wb->bank(), config.eval_queries, config.sample_seed);
  eval::Evaluator evaluator(wb.get(), sample);

  const std::vector<int> seed_counts = {10, 15, 20, 25, 30, 40, 50};
  const std::vector<size_t> ks = {50};
  const std::vector<eval::LabelLevel> levels = {eval::LabelLevel::kAtLeast1};

  std::printf("=== Table II: impact of #seed nodes on NEWST (%zu queries) ===\n",
              sample.size());
  std::vector<std::string> header = {"#seed nodes"};
  for (int s : seed_counts) header.push_back(std::to_string(s));
  TablePrinter table(header);
  std::vector<double> f1s, ps;
  for (int seeds : seed_counts) {
    auto grid_or =
        evaluator.RunSweep(eval::Method::kNewst, ks, levels, seeds);
    if (!grid_or.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   grid_or.status().ToString().c_str());
      return 1;
    }
    f1s.push_back(grid_or.value()[0][0].f1);
    ps.push_back(grid_or.value()[0][0].precision);
  }
  table.AddRow("F1 score", f1s, 4);
  table.AddRow("Precision", ps, 4);
  table.Print(std::cout);
  return 0;
}
