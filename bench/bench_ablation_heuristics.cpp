// Design-choice ablation (DESIGN.md §6): compares the KMB construction
// the paper adopts (Algorithm 1) against the Takahashi-Matsuyama
// shortest-path heuristic and, on small instances, the exact
// Dreyfus-Wagner optimum — on real RePaGer sub-graphs. Reports tree cost
// ratios and wall-clock time. Not a table in the paper; it substantiates
// §IV-B's claim that the heuristic's quality/latency trade-off is sound.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/repager.h"
#include "eval/evaluator.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "steiner/exact.h"
#include "steiner/takahashi.h"

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);
  auto sample = eval::Evaluator::SampleEntries(wb->bank(), 12,
                                               config.sample_seed);

  std::printf("=== Heuristic ablation: KMB classic vs KMB-Mehlhorn (fast) "
              "vs Takahashi-Matsuyama vs exact ===\n\n");
  TablePrinter table({"query", "|V|", "|S|", "KMB cost", "fast cost",
                      "TM cost", "TM/KMB", "KMB ms", "fast ms", "TM ms"});
  double kmb_total = 0.0, tm_total = 0.0, fast_total = 0.0;
  for (size_t index : sample) {
    const auto& entry = wb->bank().Get(index);
    // Build the same weighted sub-graph RePaGer would use.
    auto hits = wb->google().Search(entry.query, 30, entry.year,
                                    {entry.paper});
    if (hits.empty()) continue;
    std::vector<graph::PaperId> seeds;
    for (const auto& h : hits) seeds.push_back(h.doc);
    auto khop = KHopNeighborhood(wb->corpus().citations, seeds, 2,
                                 graph::Direction::kOut);
    graph::Subgraph sg(wb->corpus().citations, khop.AllNodes());
    steiner::WeightedGraph g = core::BuildWeightedSubgraph(sg, wb->weights());
    std::vector<uint32_t> terminals;
    for (graph::PaperId s :
         core::CoOccurrencePapers(wb->corpus().citations, seeds, 2)) {
      uint32_t local = sg.ToLocal(s);
      if (local != UINT32_MAX) terminals.push_back(local);
    }
    if (terminals.size() < 3) continue;

    steiner::NewstOptions classic_options;
    classic_options.closure_mode = steiner::ClosureMode::kClassic;
    Timer kmb_timer;
    auto kmb = SolveNewst(g, terminals, classic_options);
    double kmb_ms = kmb_timer.ElapsedMillis();
    Timer fast_timer;
    auto fast = SolveNewstFast(g, terminals);
    double fast_ms = fast_timer.ElapsedMillis();
    Timer tm_timer;
    auto tm = SolveTakahashiMatsuyama(g, terminals);
    double tm_ms = tm_timer.ElapsedMillis();
    if (!kmb.ok() || !fast.ok() || !tm.ok()) continue;
    kmb_total += kmb->total_cost;
    fast_total += fast->total_cost;
    tm_total += tm->total_cost;
    std::string query = entry.query.substr(0, 24);
    table.AddRow({query, std::to_string(g.num_nodes()),
                  std::to_string(terminals.size()),
                  FormatDouble(kmb->total_cost, 1),
                  FormatDouble(fast->total_cost, 1),
                  FormatDouble(tm->total_cost, 1),
                  FormatDouble(tm->total_cost / kmb->total_cost, 3),
                  FormatDouble(kmb_ms, 1), FormatDouble(fast_ms, 1),
                  FormatDouble(tm_ms, 1)});
  }
  table.Print(std::cout);
  if (kmb_total > 0.0) {
    std::printf("\naggregate TM/KMB cost ratio: %.4f\n",
                tm_total / kmb_total);
    std::printf("aggregate fast/KMB cost ratio: %.4f\n",
                fast_total / kmb_total);
  }

  // Exact comparison on small instances (few terminals).
  std::printf("\n--- exact optimum on small instances (Dreyfus-Wagner) ---\n");
  TablePrinter exact_table({"|V|", "|S|", "exact", "KMB", "KMB/exact",
                            "TM/exact"});
  size_t done = 0;
  for (size_t index : sample) {
    if (done >= 5) break;
    const auto& entry = wb->bank().Get(index);
    auto hits = wb->google().Search(entry.query, 8, entry.year,
                                    {entry.paper});
    if (hits.empty()) continue;
    std::vector<graph::PaperId> seeds;
    for (const auto& h : hits) seeds.push_back(h.doc);
    auto khop = KHopNeighborhood(wb->corpus().citations, seeds, 1,
                                 graph::Direction::kOut);
    graph::Subgraph sg(wb->corpus().citations, khop.AllNodes());
    if (sg.num_nodes() > 400) continue;
    steiner::WeightedGraph g = core::BuildWeightedSubgraph(sg, wb->weights());
    std::vector<uint32_t> terminals;
    for (graph::PaperId s :
         core::CoOccurrencePapers(wb->corpus().citations, seeds, 2)) {
      uint32_t local = sg.ToLocal(s);
      if (local != UINT32_MAX) terminals.push_back(local);
      if (terminals.size() == 6) break;
    }
    if (terminals.size() < 3) continue;
    auto exact = SolveExactSteiner(g, terminals);
    auto kmb = SolveNewst(g, terminals);
    auto tm = SolveTakahashiMatsuyama(g, terminals);
    if (!exact.ok() || !kmb.ok() || !tm.ok()) continue;
    exact_table.AddRow({std::to_string(g.num_nodes()),
                        std::to_string(terminals.size()),
                        FormatDouble(exact->total_cost, 2),
                        FormatDouble(kmb->total_cost, 2),
                        FormatDouble(kmb->total_cost / exact->total_cost, 4),
                        FormatDouble(tm->total_cost / exact->total_cost, 4)});
    ++done;
  }
  exact_table.Print(std::cout);
  return 0;
}
