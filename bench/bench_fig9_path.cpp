// Reproduces Fig. 9: the reading path generated for one query, rendered
// as an ASCII tree and exported as Graphviz DOT. Papers NOT present in
// the engine's top-30 (Fig. 9's green circles — the prerequisites only
// citation analysis surfaces) are marked '*' / filled.

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "bench_common.h"
#include "eval/evaluator.h"

int main() {
  using namespace rpg;
  bench::BenchConfig config = bench::LoadBenchConfig();
  auto wb = bench::BuildWorkbenchOrDie(config);

  // Use the highest-scoring *recent* survey's query (a well-connected
  // topic with a deep citation history below it).
  size_t index = wb->bank().HighScoreSubset(1).front();
  for (size_t candidate : wb->bank().HighScoreSubset(50)) {
    if (wb->bank().Get(candidate).year >= 2015) {
      index = candidate;
      break;
    }
  }
  const auto& entry = wb->bank().Get(index);
  std::printf("=== Fig. 9: reading path for query \"%s\" ===\n",
              entry.query.c_str());
  std::printf("(from survey \"%s\", %d)\n\n", entry.title.c_str(), entry.year);

  core::RePagerOptions options;
  options.year_cutoff = entry.year;
  options.exclude = {entry.paper};
  auto result_or = wb->repager().Generate(entry.query, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const core::RePagerResult& result = result_or.value();

  std::unordered_set<graph::PaperId> seeds(result.initial_seeds.begin(),
                                           result.initial_seeds.end());
  std::unordered_set<graph::PaperId> added;  // Fig. 9's green nodes
  for (graph::PaperId p : result.path.nodes()) {
    if (!seeds.contains(p)) added.insert(p);
  }
  std::printf("path: %zu papers (%zu not in the engine top-30, marked *)\n\n",
              result.path.size(), added.size());
  std::printf("%s\n", result.path.ToAscii(wb->paper_info(), added).c_str());

  std::printf("flattened reading order:\n");
  auto order = result.path.FlattenedOrder(wb->years());
  for (size_t i = 0; i < order.size() && i < 15; ++i) {
    std::printf("  %2zu. [%d]%s %s\n", i + 1, wb->years()[order[i]],
                added.contains(order[i]) ? "*" : " ",
                wb->titles()[order[i]].c_str());
  }

  const char* dot_path = "fig9_reading_path.dot";
  std::ofstream out(dot_path);
  out << result.path.ToDot(wb->paper_info(), added);
  std::printf("\nDOT rendering written to %s\n", dot_path);
  return 0;
}
