#ifndef RPG_CORE_REPAGER_H_
#define RPG_CORE_REPAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/reading_path.h"
#include "core/seed_reallocator.h"
#include "graph/citation_graph.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "rank/weight_model.h"
#include "search/search_engine.h"
#include "steiner/newst.h"

namespace rpg::core {

/// Pipeline configuration. Defaults are the paper's experimental setting.
struct RePagerOptions {
  /// Top-K articles fetched from the engine as initial seeds (§VI-A: 30).
  int num_initial_seeds = 30;
  /// Expansion depth for the sub-citation graph (§IV-A step 3: 1st and
  /// 2nd order neighbors).
  int expansion_hops = 2;
  /// Expansion follows references (out-edges), the direction Observation
  /// II explores; kUndirected additionally pulls in citing papers.
  graph::Direction expansion_direction = graph::Direction::kOut;
  /// Minimum number of distinct seeds citing a paper for it to become a
  /// reallocated seed.
  int min_cooccurrence = 2;
  /// Terminal-set construction (Table III left ablation).
  SeedMode seed_mode = SeedMode::kReallocated;
  /// When false, skip the Steiner step entirely and return the seed set
  /// as the result (the NEWST-C ablation).
  bool run_steiner = true;
  /// Steiner variant switches (Table III right ablation: -N / -E).
  steiner::NewstOptions newst;
  /// Only consider papers published in or before this year (the paper
  /// restricts search to "anytime .. survey publication year").
  int year_cutoff = INT32_MAX;
  /// Doc ids the engine must not return (e.g. the queried survey).
  std::vector<graph::PaperId> exclude;
};

/// Everything RePaGer produces for one query.
struct RePagerResult {
  ReadingPath path;
  /// Ranked candidate list: Steiner-tree papers first (most important
  /// first), then remaining sub-graph candidates by importance. Truncate
  /// at K for the top-K evaluation.
  std::vector<graph::PaperId> ranked;
  std::vector<graph::PaperId> initial_seeds;
  std::vector<graph::PaperId> terminals;
  size_t subgraph_nodes = 0;
  size_t subgraph_edges = 0;
  double steiner_seconds = 0.0;
  double total_seconds = 0.0;
  /// Work counters from the NEWST run (zeros when run_steiner is false).
  steiner::SteinerStats steiner_stats;
};

/// The RePaGer system (§IV-A): seed retrieval -> weighted citation graph
/// -> sub-graph -> seed reallocation -> NEWST -> reading path.
///
/// The engine's document ids must coincide with the citation graph's
/// paper ids (both are built over the same corpus).
class RePaGer {
 public:
  /// All pointers must outlive the RePaGer. `years` orders reading
  /// direction and enforces year cutoffs.
  RePaGer(const graph::CitationGraph* graph,
          const search::SearchEngine* engine,
          const rank::WeightModel* weights,
          const std::vector<uint16_t>* years);

  /// Runs the full pipeline for a free-text query.
  Result<RePagerResult> Generate(const std::string& query,
                                 const RePagerOptions& options = {}) const;

  /// Importance used for ranking: a * pgscore + b * venue — the inverse
  /// of the node-weight denominator, exposed for baselines/tests.
  double Importance(graph::PaperId p) const;

 private:
  const graph::CitationGraph* graph_;
  const search::SearchEngine* engine_;
  const rank::WeightModel* weights_;
  const std::vector<uint16_t>* years_;
};

/// Builds the node-and-edge weighted Steiner input over a subgraph
/// (shared by RePaGer and the runtime benchmarks): node weights from
/// Eq. (3), undirected edges with Eq. (2) costs.
steiner::WeightedGraph BuildWeightedSubgraph(const graph::Subgraph& sg,
                                             const rank::WeightModel& weights);

}  // namespace rpg::core

#endif  // RPG_CORE_REPAGER_H_
