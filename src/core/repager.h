#ifndef RPG_CORE_REPAGER_H_
#define RPG_CORE_REPAGER_H_

/// \file
/// The RePaGer pipeline (§IV-A of the paper): free-text query -> engine
/// seed retrieval -> KHop sub-citation graph -> seed reallocation ->
/// NEWST Steiner tree -> ranked reading path.
///
/// Ownership / thread-safety model:
///  - RePaGer holds const pointers to a CitationGraph, SearchEngine,
///    WeightModel and years array; all four are immutable after
///    construction and must outlive the RePaGer. One RePaGer can serve
///    any number of threads concurrently.
///  - Generate() is const and touches only shared immutable state plus
///    its own locals — EXCEPT the explicit-scratch overload, whose
///    QueryScratch is the per-call mutable state. Give each concurrent
///    caller its own QueryScratch (BatchEngine allocates one per
///    worker); never share a scratch between threads.
///  - The scratch-free Generate() is a thin wrapper that builds a fresh
///    QueryScratch per call. Results are bit-identical either way; the
///    scratch exists purely so batch serving can amortize the per-query
///    allocations (KHop visit map, subgraph id map + CSR arrays,
///    weighted-graph builder buffers) that dominate once the Steiner
///    solver is fast (see ROADMAP "Perf — Steiner hot path").

#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/result.h"
#include "core/reading_path.h"
#include "obs/trace.h"
#include "core/seed_reallocator.h"
#include "graph/citation_graph.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "rank/weight_model.h"
#include "search/search_engine.h"
#include "steiner/newst.h"

namespace rpg::core {

/// Pipeline configuration. Defaults are the paper's experimental setting.
struct RePagerOptions {
  /// Top-K articles fetched from the engine as initial seeds (§VI-A: 30).
  int num_initial_seeds = 30;
  /// Expansion depth for the sub-citation graph (§IV-A step 3: 1st and
  /// 2nd order neighbors).
  int expansion_hops = 2;
  /// Expansion follows references (out-edges), the direction Observation
  /// II explores; kUndirected additionally pulls in citing papers.
  graph::Direction expansion_direction = graph::Direction::kOut;
  /// Minimum number of distinct seeds citing a paper for it to become a
  /// reallocated seed.
  int min_cooccurrence = 2;
  /// Terminal-set construction (Table III left ablation).
  SeedMode seed_mode = SeedMode::kReallocated;
  /// When false, skip the Steiner step entirely and return the seed set
  /// as the result (the NEWST-C ablation).
  bool run_steiner = true;
  /// Steiner variant switches (Table III right ablation: -N / -E).
  steiner::NewstOptions newst;
  /// Only consider papers published in or before this year (the paper
  /// restricts search to "anytime .. survey publication year").
  int year_cutoff = INT32_MAX;
  /// Doc ids the engine must not return (e.g. the queried survey).
  std::vector<graph::PaperId> exclude;
};

/// Everything RePaGer produces for one query.
struct RePagerResult {
  ReadingPath path;
  /// Ranked candidate list: Steiner-tree papers first (most important
  /// first), then remaining sub-graph candidates by importance. Truncate
  /// at K for the top-K evaluation.
  std::vector<graph::PaperId> ranked;
  std::vector<graph::PaperId> initial_seeds;
  std::vector<graph::PaperId> terminals;
  size_t subgraph_nodes = 0;
  size_t subgraph_edges = 0;
  double steiner_seconds = 0.0;
  double total_seconds = 0.0;
  /// Work counters from the NEWST run (zeros when run_steiner is false).
  steiner::SteinerStats steiner_stats;
  /// Per-stage spans of this Generate run (obs::kPipelineStages order,
  /// clocked from the call's start). Empty when tracing is compiled out
  /// or runtime-disabled. Cached with the result, so cache hits still
  /// attribute their original compute time.
  obs::SpanSet stages;
};

/// Reusable per-query working memory for RePaGer::Generate: the KHop
/// visit map and frontier levels, the subgraph id map and CSR arrays, the
/// weighted-graph builder buffers, and the ranking hash sets. After the
/// first query everything here is warm, so subsequent Generate calls make
/// almost no allocations outside the returned RePagerResult.
///
/// One scratch per thread: BatchEngine gives each pool worker its own.
/// The scratch carries no query state between calls — results are
/// bit-identical with a fresh or a reused scratch.
class QueryScratch {
 public:
  QueryScratch() = default;
  QueryScratch(const QueryScratch&) = delete;
  QueryScratch& operator=(const QueryScratch&) = delete;

 private:
  friend class RePaGer;
  /// Preallocated span storage for the pipeline trace: Generate records
  /// stage spans here (allocation-free after warm-up) and copies the
  /// SpanSet onto the result. Reset at the start of every traced call.
  obs::TraceContext trace_;
  graph::TraversalScratch khop_scratch_;
  graph::KHopResult khop_;
  graph::SubgraphScratch sg_scratch_;
  graph::Subgraph sg_;
  steiner::WeightedGraphBuilder builder_{0};
  steiner::WeightedGraph wg_;
  /// Dense-bitmap scratch for the Eq. (2) Con() counts — stamped once
  /// per high-degree subgraph row in BuildWeightedSubgraph, the single
  /// hottest stage of the pipeline (BENCH_table4 `stages.edge_cost_ms`).
  rank::ConScratch con_scratch_;
  std::vector<graph::PaperId> candidates_;
  std::vector<uint32_t> local_terminals_;
  FlatSet<graph::PaperId> excluded_;
  FlatSet<graph::PaperId> seed_set_;
  FlatMap<graph::PaperId, int> cooccurrence_;
  FlatSet<graph::PaperId> emitted_;
  std::vector<graph::PaperId> seed_block_;
  std::vector<graph::PaperId> rest_;
};

/// The RePaGer system (§IV-A): seed retrieval -> weighted citation graph
/// -> sub-graph -> seed reallocation -> NEWST -> reading path.
///
/// The engine's document ids must coincide with the citation graph's
/// paper ids (both are built over the same corpus).
class RePaGer {
 public:
  /// All pointers must outlive the RePaGer. `years` orders reading
  /// direction and enforces year cutoffs.
  RePaGer(const graph::CitationGraph* graph,
          const search::SearchEngine* engine,
          const rank::WeightModel* weights,
          const std::vector<uint16_t>* years);

  /// Runs the full pipeline for a free-text query.
  Result<RePagerResult> Generate(const std::string& query,
                                 const RePagerOptions& options = {}) const;

  /// Scratch-reusing variant: identical results, but per-query working
  /// memory lives in `scratch` and is recycled across calls. `scratch`
  /// must not be shared between concurrent callers.
  Result<RePagerResult> Generate(const std::string& query,
                                 const RePagerOptions& options,
                                 QueryScratch* scratch) const;

  /// Importance used for ranking: a * pgscore + b * venue — the inverse
  /// of the node-weight denominator, exposed for baselines/tests.
  double Importance(graph::PaperId p) const;

 private:
  const graph::CitationGraph* graph_;
  const search::SearchEngine* engine_;
  const rank::WeightModel* weights_;
  const std::vector<uint16_t>* years_;
};

/// Builds the node-and-edge weighted Steiner input over a subgraph
/// (shared by RePaGer and the runtime benchmarks): node weights from
/// Eq. (3), undirected edges with Eq. (2) costs.
steiner::WeightedGraph BuildWeightedSubgraph(const graph::Subgraph& sg,
                                             const rank::WeightModel& weights);

/// Scratch-reusing variant: accumulates into the caller's builder and
/// writes the CSR result into `*out`, reusing both objects' capacity.
/// `con_scratch` (optional) routes every Eq. (2) count through the
/// per-source dense-bitmap fast path; results are identical with or
/// without it (rank::ConScratch contract).
void BuildWeightedSubgraph(const graph::Subgraph& sg,
                           const rank::WeightModel& weights,
                           steiner::WeightedGraphBuilder* builder,
                           steiner::WeightedGraph* out,
                           rank::ConScratch* con_scratch = nullptr);

}  // namespace rpg::core

#endif  // RPG_CORE_REPAGER_H_
