#include "core/reading_path.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace rpg::core {

using graph::PaperId;

ReadingPath::ReadingPath(const steiner::SteinerResult& tree,
                         const std::vector<uint16_t>& years) {
  nodes_ = tree.nodes;
  edges_.reserve(tree.edges.size());
  for (const auto& [a, b] : tree.edges) {
    uint16_t ya = a < years.size() ? years[a] : 0;
    uint16_t yb = b < years.size() ? years[b] : 0;
    // The older paper is the prerequisite and is read first.
    if (ya < yb || (ya == yb && a < b)) {
      edges_.emplace_back(a, b);
    } else {
      edges_.emplace_back(b, a);
    }
  }
  std::sort(edges_.begin(), edges_.end());
}

std::vector<PaperId> ReadingPath::Roots() const {
  std::map<PaperId, int> indegree;
  for (PaperId v : nodes_) indegree[v] = 0;
  for (const auto& [from, to] : edges_) ++indegree[to];
  std::vector<PaperId> roots;
  for (const auto& [v, d] : indegree) {
    if (d == 0) roots.push_back(v);
  }
  return roots;
}

std::vector<PaperId> ReadingPath::FlattenedOrder(
    const std::vector<uint16_t>& years) const {
  std::map<PaperId, int> indegree;
  std::map<PaperId, std::vector<PaperId>> out;
  for (PaperId v : nodes_) indegree[v] = 0;
  for (const auto& [from, to] : edges_) {
    ++indegree[to];
    out[from].push_back(to);
  }
  auto order_key = [&](PaperId v) {
    uint16_t y = v < years.size() ? years[v] : 0;
    return std::pair<uint16_t, PaperId>(y, v);
  };
  auto cmp = [&](PaperId a, PaperId b) { return order_key(a) > order_key(b); };
  std::priority_queue<PaperId, std::vector<PaperId>, decltype(cmp)> ready(cmp);
  for (const auto& [v, d] : indegree) {
    if (d == 0) ready.push(v);
  }
  std::vector<PaperId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    PaperId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (PaperId w : out[v]) {
      if (--indegree[w] == 0) ready.push(w);
    }
  }
  return order;
}

namespace {

std::string Describe(PaperId v, const PaperInfo& info) {
  std::string title = info.titles != nullptr && v < info.titles->size()
                          ? (*info.titles)[v]
                          : ("paper " + std::to_string(v));
  int year = info.years != nullptr && v < info.years->size()
                 ? (*info.years)[v]
                 : 0;
  if (year > 0) return StrFormat("%s (%d)", title.c_str(), year);
  return title;
}

}  // namespace

std::string ReadingPath::ToAscii(
    const PaperInfo& info,
    const std::unordered_set<PaperId>& highlight) const {
  std::map<PaperId, std::vector<PaperId>> out;
  for (const auto& [from, to] : edges_) out[from].push_back(to);

  std::string result;
  std::unordered_set<PaperId> printed;
  // DFS from each root; a node reachable along several citation chains is
  // expanded only once (later mentions get a "^" back-reference mark).
  auto render = [&](auto&& self, PaperId v, int depth) -> void {
    result.append(static_cast<size_t>(depth) * 2, ' ');
    bool again = printed.contains(v);
    result += highlight.contains(v) ? "* " : "- ";
    result += Describe(v, info);
    if (again) {
      result += " ^\n";
      return;
    }
    result += "\n";
    printed.insert(v);
    for (PaperId w : out[v]) self(self, w, depth + 1);
  };
  for (PaperId root : Roots()) render(render, root, 0);
  return result;
}

std::string ReadingPath::ToDot(
    const PaperInfo& info,
    const std::unordered_set<PaperId>& highlight) const {
  std::string out = "digraph reading_path {\n  rankdir=TB;\n"
                    "  node [shape=box, fontsize=10];\n";
  for (PaperId v : nodes_) {
    std::string attrs;
    if (highlight.contains(v)) {
      attrs = ", style=filled, fillcolor=palegreen";
    }
    out += StrFormat("  n%u [label=\"%s\"%s];\n", v,
                     JsonWriter::Escape(Describe(v, info)).c_str(),
                     attrs.c_str());
  }
  for (const auto& [from, to] : edges_) {
    out += StrFormat("  n%u -> n%u;\n", from, to);
  }
  out += "}\n";
  return out;
}

std::string ReadingPath::ToJson(const PaperInfo& info) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("nodes").BeginArray();
  for (PaperId v : nodes_) {
    w.BeginObject();
    w.Key("id").UInt(v);
    if (info.titles != nullptr && v < info.titles->size()) {
      w.Key("title").String((*info.titles)[v]);
    }
    if (info.years != nullptr && v < info.years->size()) {
      w.Key("year").Int((*info.years)[v]);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("edges").BeginArray();
  for (const auto& [from, to] : edges_) {
    w.BeginObject();
    w.Key("read_first").UInt(from);
    w.Key("read_next").UInt(to);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace rpg::core
