#ifndef RPG_CORE_BATCH_ENGINE_H_
#define RPG_CORE_BATCH_ENGINE_H_

/// \file
/// Batched parallel query engine for RePaGer. The paper's serving
/// scenario is many independent survey queries against one immutable
/// citation graph — embarrassingly parallel — so BatchEngine fans a batch
/// of queries across a fixed-size ThreadPool, each worker reusing one
/// core::QueryScratch so per-query allocations drop to near zero after
/// warm-up (the dominant cost now that the NEWST solver is fast; see
/// ROADMAP "Perf — Steiner hot path").
///
/// Ownership / thread-safety model:
///  - The RePaGer (and, through it, the CitationGraph, SearchEngine and
///    WeightModel) is shared, immutable, and read concurrently by all
///    workers. The engine-level default must outlive the BatchEngine;
///    a per-query BatchQuery::repager is an owning shared_ptr (an epoch
///    handle alias) and keeps its substrate alive by itself.
///  - Each pool worker owns one QueryScratch for the duration of a
///    Run(); scratches are never shared between threads.
///  - Run() may be called repeatedly (the pool persists across batches)
///    but not concurrently from multiple threads on the same BatchEngine.
///  - Per-query results are bit-identical to calling
///    RePaGer::Generate() serially — verified by
///    tests/core/batch_engine_test.cc.

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/repager.h"
#include "steiner/stats.h"

namespace rpg::core {

/// One query in a batch: the free-text query plus its pipeline options.
struct BatchQuery {
  std::string query;
  RePagerOptions options;
  /// Optional request trace (shared with the serving layer). The worker
  /// that executes this query records a `solve` span and splices the
  /// pipeline's stage spans into it. The shared_ptr keeps the context
  /// alive even if the originating request was already answered (e.g. a
  /// reactor-side deadline 503).
  std::shared_ptr<obs::TraceContext> trace;
  /// Optional owning substrate handle, overriding the engine-level
  /// RePaGer for this one query. This is how epoch-based serving works
  /// (serve::Epoch): the serving layer pins the request's epoch with an
  /// aliasing shared_ptr, so the substrate the worker reads stays alive
  /// until this query's result is delivered even if the serving tier
  /// swapped to a newer epoch mid-batch. Null means "use the engine's
  /// constructor-supplied RePaGer" (the pre-epoch behaviour).
  std::shared_ptr<const RePaGer> repager;
};

/// Result of a batch run. `results[i]` corresponds to `queries[i]` —
/// per-query failures (empty query, no hits, ...) land in their slot
/// without affecting the rest of the batch.
struct BatchResult {
  std::vector<Result<RePagerResult>> results;
  /// Number of queries that produced a RePagerResult.
  size_t num_ok = 0;
  /// Wall-clock seconds for the whole batch (the throughput number).
  double wall_seconds = 0.0;
  /// Sum of per-query total_seconds over successful queries — compare
  /// against wall_seconds to see the parallel speedup.
  double sum_query_seconds = 0.0;
  /// NEWST work counters summed over successful queries.
  steiner::SteinerStats steiner_stats;
};

struct BatchEngineOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int num_threads = 0;
  /// When false, every query builds a fresh QueryScratch (the "scratch
  /// off" ablation in bench_table4_runtime). Keep true in production.
  bool reuse_scratch = true;
};

/// Runs batches of independent RePaGer queries on a worker pool.
class BatchEngine {
 public:
  /// `repager` is the default substrate for queries that carry no
  /// per-query handle; it must outlive the engine. It may be null when
  /// every BatchQuery supplies its own `repager` (the epoch-serving
  /// configuration) — a query with neither fails with
  /// FailedPrecondition instead of crashing. Spawns the pool
  /// immediately.
  explicit BatchEngine(const RePaGer* repager, BatchEngineOptions options = {});

  /// Executes all queries and blocks until the batch is complete.
  /// Query order in the result matches the input; scheduling order
  /// across workers is unspecified (results are order-independent).
  BatchResult Run(const std::vector<BatchQuery>& queries);

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  const RePaGer* repager_;
  BatchEngineOptions options_;
  ThreadPool pool_;
};

}  // namespace rpg::core

#endif  // RPG_CORE_BATCH_ENGINE_H_
