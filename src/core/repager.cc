#include "core/repager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace rpg::core {

using graph::PaperId;

RePaGer::RePaGer(const graph::CitationGraph* graph,
                 const search::SearchEngine* engine,
                 const rank::WeightModel* weights,
                 const std::vector<uint16_t>* years)
    : graph_(graph), engine_(engine), weights_(weights), years_(years) {
  RPG_CHECK(graph_ != nullptr && engine_ != nullptr && weights_ != nullptr &&
            years_ != nullptr);
  RPG_CHECK(years_->size() == graph_->num_nodes());
}

double RePaGer::Importance(PaperId p) const {
  // NodeWeight = gamma / max(denominator, floor); invert to recover the
  // (clamped) denominator, which *increases* with importance.
  return weights_->params().gamma / weights_->NodeWeight(p);
}

steiner::WeightedGraph BuildWeightedSubgraph(const graph::Subgraph& sg,
                                             const rank::WeightModel& weights) {
  steiner::WeightedGraphBuilder builder(sg.num_nodes());
  steiner::WeightedGraph out;
  BuildWeightedSubgraph(sg, weights, &builder, &out);
  return out;
}

void BuildWeightedSubgraph(const graph::Subgraph& sg,
                           const rank::WeightModel& weights,
                           steiner::WeightedGraphBuilder* builder,
                           steiner::WeightedGraph* out,
                           rank::ConScratch* con_scratch) {
  builder->Reset(sg.num_nodes());
  builder->ReserveEdges(sg.num_edges());
  for (uint32_t local = 0; local < sg.num_nodes(); ++local) {
    PaperId gu = sg.ToGlobal(local);
    builder->SetNodeWeight(local, weights.NodeWeight(gu));
    // Out-edges only, so each undirected edge is added exactly once.
    // Row-major order is what makes the ConScratch bitmap pay: gu is
    // stamped once and probed for the whole row.
    for (uint32_t cited : sg.OutNeighbors(local)) {
      PaperId gv = sg.ToGlobal(cited);
      builder->AddEdge(local, cited, weights.EdgeCost(gu, gv, con_scratch));
    }
  }
  builder->BuildInto(out);
}

Result<RePagerResult> RePaGer::Generate(const std::string& query,
                                        const RePagerOptions& options) const {
  QueryScratch scratch;
  return Generate(query, options, &scratch);
}

Result<RePagerResult> RePaGer::Generate(const std::string& query,
                                        const RePagerOptions& options,
                                        QueryScratch* scratch) const {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (options.num_initial_seeds <= 0) {
    return Status::InvalidArgument("num_initial_seeds must be positive");
  }
  Timer total_timer;
  RePagerResult result;
  // Pipeline trace: spans land in the scratch's preallocated SpanSet and
  // are copied onto the result at the end. A null trace (tracing
  // compiled out or runtime-disabled) skips every clock read.
  obs::TraceContext* trace = nullptr;
  if (obs::kTracingCompiledIn && obs::TracingEnabled()) {
    scratch->trace_.Reset(0);
    trace = &scratch->trace_;
  }
  uint64_t t0 = 0;

  // ---- Step 1: initial seeds from the engine -------------------------
  if (trace) t0 = trace->NowNs();
  auto hits = engine_->Search(query, options.num_initial_seeds,
                              options.year_cutoff, options.exclude);
  if (trace) {
    trace->AddSpan(obs::Stage::kSearch, t0, trace->NowNs() - t0,
                   hits.size());
  }
  if (hits.empty()) {
    return Status::NotFound("engine returned no results for: " + query);
  }
  for (const auto& h : hits) result.initial_seeds.push_back(h.doc);

  // ---- Step 3: sub-citation graph over 1st/2nd order neighbors -------
  if (trace) t0 = trace->NowNs();
  KHopNeighborhood(*graph_, result.initial_seeds, options.expansion_hops,
                   options.expansion_direction, &scratch->khop_scratch_,
                   &scratch->khop_);
  if (trace) {
    uint64_t visited = 0;
    for (const auto& level : scratch->khop_.levels) visited += level.size();
    trace->AddSpan(obs::Stage::kKhop, t0, trace->NowNs() - t0, visited);
    t0 = trace->NowNs();
  }
  std::vector<PaperId>& candidates = scratch->candidates_;
  candidates.clear();
  for (const auto& level : scratch->khop_.levels) {
    for (PaperId p : level) {
      if ((*years_)[p] <= options.year_cutoff) candidates.push_back(p);
    }
  }
  FlatSet<PaperId>& excluded = scratch->excluded_;
  excluded.clear();
  excluded.insert(options.exclude.begin(), options.exclude.end());
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](PaperId p) {
                                    return excluded.contains(p);
                                  }),
                   candidates.end());
  scratch->sg_.Assign(*graph_, candidates, &scratch->sg_scratch_);
  const graph::Subgraph& sg = scratch->sg_;
  result.subgraph_nodes = sg.num_nodes();
  result.subgraph_edges = sg.num_edges();
  if (trace) {
    trace->AddSpan(obs::Stage::kSubgraph, t0, trace->NowNs() - t0,
                   sg.num_nodes());
    t0 = trace->NowNs();
  }

  // ---- Step 4: seed reallocation by co-occurrence --------------------
  std::vector<PaperId> terminals =
      ReallocateSeeds(*graph_, result.initial_seeds, options.seed_mode,
                      options.min_cooccurrence);
  // Terminals must live inside the subgraph (they do by construction for
  // out-expansion, but year cutoffs / exclusions can drop them).
  terminals.erase(std::remove_if(terminals.begin(), terminals.end(),
                                 [&](PaperId p) { return !sg.Contains(p); }),
                  terminals.end());
  if (terminals.empty()) {
    // Degenerate query: fall back to whatever seeds survived.
    for (PaperId p : result.initial_seeds) {
      if (sg.Contains(p)) terminals.push_back(p);
    }
  }
  if (terminals.empty()) {
    return Status::NotFound("no usable terminals for: " + query);
  }
  result.terminals = terminals;

  // Query-specific evidence: how many distinct initial seeds cite each
  // candidate. This is the signal seed reallocation is built on; it also
  // drives the final ranking (a paper referenced by many query-relevant
  // articles is very likely on the survey's reference list).
  FlatMap<PaperId, int>& cooccurrence = scratch->cooccurrence_;
  cooccurrence.clear();
  FlatSet<PaperId>& seed_set = scratch->seed_set_;
  seed_set.clear();
  seed_set.insert(result.initial_seeds.begin(), result.initial_seeds.end());
  for (PaperId s : seed_set) {
    for (PaperId cited : graph_->OutNeighbors(s)) ++cooccurrence[cited];
  }
  if (trace) {
    trace->AddSpan(obs::Stage::kSeedRealloc, t0, trace->NowNs() - t0,
                   terminals.size());
  }
  // Unified candidate score: co-occurrence count, with a bonus for being
  // a direct engine hit (a seed without citation evidence still carries
  // lexical relevance worth roughly one co-citing seed).
  auto evidence_of = [&](PaperId p) {
    double score = 0.0;
    if (const int* count = cooccurrence.Find(p)) {
      score += static_cast<double>(*count);
    }
    if (seed_set.contains(p)) score += 1.2;
    return score;
  };

  std::vector<PaperId> tree_nodes;
  if (options.run_steiner) {
    // ---- Step 5: NEWST over the weighted sub-citation graph ----------
    Timer steiner_timer;
    if (trace) t0 = trace->NowNs();
    BuildWeightedSubgraph(sg, *weights_, &scratch->builder_, &scratch->wg_,
                          &scratch->con_scratch_);
    const steiner::WeightedGraph& wg = scratch->wg_;
    if (trace) {
      trace->AddSpan(obs::Stage::kEdgeCost, t0, trace->NowNs() - t0,
                     wg.num_edges());
      t0 = trace->NowNs();
    }
    std::vector<uint32_t>& local_terminals = scratch->local_terminals_;
    local_terminals.clear();
    local_terminals.reserve(terminals.size());
    for (PaperId t : terminals) local_terminals.push_back(sg.ToLocal(t));
    RPG_ASSIGN_OR_RETURN(steiner::SteinerResult local_tree,
                         SolveNewst(wg, local_terminals, options.newst));
    result.steiner_seconds = steiner_timer.ElapsedSeconds();
    result.steiner_stats = local_tree.stats;
    if (trace) {
      trace->AddSpan(obs::Stage::kSteiner, t0, trace->NowNs() - t0,
                     local_tree.stats.nodes_settled);
      t0 = trace->NowNs();
    }

    // Map back to global ids.
    steiner::SteinerResult tree;
    tree.total_cost = local_tree.total_cost;
    for (uint32_t v : local_tree.nodes) tree.nodes.push_back(sg.ToGlobal(v));
    for (const auto& [a, b] : local_tree.edges) {
      PaperId ga = sg.ToGlobal(a), gb = sg.ToGlobal(b);
      tree.edges.emplace_back(std::min(ga, gb), std::max(ga, gb));
    }
    std::sort(tree.nodes.begin(), tree.nodes.end());
    std::sort(tree.edges.begin(), tree.edges.end());
    result.path = ReadingPath(tree, *years_);
    tree_nodes = tree.nodes;
    if (trace) {
      trace->AddSpan(obs::Stage::kReadingPath, t0, trace->NowNs() - t0,
                     tree.nodes.size());
    }
  } else {
    // NEWST-C: the reallocated seed set is the final result, no path.
    tree_nodes = terminals;
  }

  // ---- Ranked list: Steiner-tree papers first, then the remaining
  // engine seeds, then the rest of the sub-graph; every block ordered by
  // citation evidence. The tree-first property is what the Table III
  // ablations measure: a different terminal set / weight scheme yields a
  // different tree, and hence a different top of the list.
  if (trace) t0 = trace->NowNs();
  auto rank_by_evidence = [&](std::vector<PaperId>* v) {
    std::sort(v->begin(), v->end(), [&](PaperId a, PaperId b) {
      double ca = evidence_of(a), cb = evidence_of(b);
      if (ca != cb) return ca > cb;
      double ia = Importance(a), ib = Importance(b);
      if (ia != ib) return ia > ib;
      return a < b;
    });
  };
  rank_by_evidence(&tree_nodes);
  FlatSet<PaperId>& emitted = scratch->emitted_;
  emitted.clear();
  emitted.insert(tree_nodes.begin(), tree_nodes.end());
  result.ranked = std::move(tree_nodes);
  result.ranked.reserve(sg.num_nodes());
  std::vector<PaperId>& seed_block = scratch->seed_block_;
  seed_block.clear();
  seed_block.reserve(result.initial_seeds.size());
  for (PaperId s : result.initial_seeds) {
    if (sg.Contains(s) && !emitted.contains(s)) seed_block.push_back(s);
  }
  rank_by_evidence(&seed_block);
  for (PaperId s : seed_block) {
    emitted.insert(s);
    result.ranked.push_back(s);
  }
  std::vector<PaperId>& rest = scratch->rest_;
  rest.clear();
  rest.reserve(sg.num_nodes());
  for (uint32_t local = 0; local < sg.num_nodes(); ++local) {
    PaperId p = sg.ToGlobal(local);
    if (!emitted.contains(p)) rest.push_back(p);
  }
  rank_by_evidence(&rest);
  result.ranked.insert(result.ranked.end(), rest.begin(), rest.end());

  if (trace) {
    trace->AddSpan(obs::Stage::kRank, t0, trace->NowNs() - t0,
                   result.ranked.size());
    trace->AttachSteinerStats(result.steiner_stats);
    result.stages = trace->spans();
  }
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace rpg::core
