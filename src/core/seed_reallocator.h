#ifndef RPG_CORE_SEED_REALLOCATOR_H_
#define RPG_CORE_SEED_REALLOCATOR_H_

#include <vector>

#include "graph/citation_graph.h"

namespace rpg::core {

/// How the compulsory terminal set for NEWST is formed from the initial
/// engine seeds and the co-occurrence papers (§VI-B seed-reallocation
/// ablation, Table III left).
enum class SeedMode {
  kReallocated,   ///< NEWST:   high co-occurrence papers
  kInitial,       ///< NEWST-W: the engine's top-K seeds unchanged
  kUnion,         ///< NEWST-U: union of the two
  kIntersection,  ///< NEWST-I: intersection of the two
};

/// Papers cited by at least `min_cooccurrence` distinct initial seeds
/// (§IV-A step 4). Such papers are likely prerequisites: several articles
/// directly relevant to the topic mention them. The initial seeds
/// themselves are excluded; the result is sorted by descending
/// co-occurrence count (ties: ascending id).
std::vector<graph::PaperId> CoOccurrencePapers(
    const graph::CitationGraph& g, const std::vector<graph::PaperId>& seeds,
    int min_cooccurrence);

/// Applies a SeedMode. Falls back to `initial` when the mode produces an
/// empty set (e.g. no co-occurring papers exist).
std::vector<graph::PaperId> ReallocateSeeds(
    const graph::CitationGraph& g, const std::vector<graph::PaperId>& initial,
    SeedMode mode, int min_cooccurrence);

}  // namespace rpg::core

#endif  // RPG_CORE_SEED_REALLOCATOR_H_
