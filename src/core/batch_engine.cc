#include "core/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>

#include "common/logging.h"
#include "common/timer.h"

namespace rpg::core {

namespace {

size_t ResolveThreads(int requested) {
  if (requested > 0) return static_cast<size_t>(requested);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

BatchEngine::BatchEngine(const RePaGer* repager, BatchEngineOptions options)
    : repager_(repager),
      options_(options),
      pool_(ResolveThreads(options.num_threads)) {}

BatchResult BatchEngine::Run(const std::vector<BatchQuery>& queries) {
  Timer wall;
  BatchResult batch;
  batch.results.assign(queries.size(),
                       Status::Internal("query not executed"));

  // Dynamic scheduling: workers pull the next unclaimed query index.
  // Queries vary a lot in sub-graph size, so static striping would leave
  // workers idle at the tail.
  std::atomic<size_t> next{0};
  const size_t workers = std::min(pool_.num_threads(), queries.size());
  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    done.push_back(pool_.Submit([this, &queries, &batch, &next] {
      QueryScratch scratch;
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        // Request trace: this worker is the only thread touching the
        // query's context during the solve (the dispatcher handed the
        // batch over through the pool queue, which orders its earlier
        // queue-span writes before ours).
        obs::TraceContext* trace = queries[i].trace.get();
        uint64_t solve_start = trace ? trace->NowNs() : 0;
        // Epoch pinning: a query-carried handle wins over the engine
        // default, and holding `queries[i].repager` keeps that epoch's
        // whole substrate alive for the duration of the solve.
        const RePaGer* repager =
            queries[i].repager ? queries[i].repager.get() : repager_;
        // Distinct slots: no synchronization needed on the writes.
        Result<RePagerResult> r =
            repager == nullptr
                ? Result<RePagerResult>(Status::FailedPrecondition(
                      "BatchEngine has no RePaGer: engine default is null "
                      "and the query carries no substrate handle"))
            : options_.reuse_scratch
                ? repager->Generate(queries[i].query, queries[i].options,
                                    &scratch)
                : repager->Generate(queries[i].query, queries[i].options);
        if (trace) {
          trace->AddSpan(obs::Stage::kSolve, solve_start,
                         trace->NowNs() - solve_start, r.ok() ? 1 : 0);
          if (r.ok()) {
            // The pipeline spans are clocked from Generate's own start;
            // rebasing them onto the solve span's start lines the whole
            // request trace up on one axis.
            trace->AppendRebased(r->stages, solve_start);
            trace->AttachSteinerStats(r->steiner_stats);
          }
        }
        batch.results[i] = std::move(r);
      }
    }));
  }
  // Wait for every worker before (re)throwing: an early rethrow would
  // unwind and destroy `batch`/`next` while other workers still write
  // through them.
  std::exception_ptr first_error;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  for (const Result<RePagerResult>& r : batch.results) {
    if (!r.ok()) continue;
    ++batch.num_ok;
    batch.sum_query_seconds += r->total_seconds;
    batch.steiner_stats.Add(r->steiner_stats);
  }
  batch.wall_seconds = wall.ElapsedSeconds();
  return batch;
}

}  // namespace rpg::core
