#ifndef RPG_CORE_READING_PATH_H_
#define RPG_CORE_READING_PATH_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/citation_graph.h"
#include "steiner/newst.h"

namespace rpg::core {

/// Per-paper display metadata used when rendering paths. All vectors are
/// indexed by global PaperId and must cover every node in the path.
struct PaperInfo {
  const std::vector<std::string>* titles = nullptr;
  const std::vector<uint16_t>* years = nullptr;
};

/// A reading path: the Steiner tree with each edge directed in *reading
/// order*. The paper resolves direction from the citation relationship
/// combined with publication time (§II-C): the prerequisite (older) end
/// is read first. An edge (a, b) means "read a before b".
class ReadingPath {
 public:
  ReadingPath() = default;

  /// Builds from a NEWST result whose node ids are global paper ids.
  /// Direction: older year first; ties broken by smaller id first.
  ReadingPath(const steiner::SteinerResult& tree,
              const std::vector<uint16_t>& years);

  const std::vector<graph::PaperId>& nodes() const { return nodes_; }
  const std::vector<std::pair<graph::PaperId, graph::PaperId>>& edges() const {
    return edges_;
  }

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }

  /// Papers with no incoming reading-order edge (the entry points of the
  /// path — typically the oldest prerequisites).
  std::vector<graph::PaperId> Roots() const;

  /// Topological order of the reading DAG, preferring older publication
  /// years (then smaller ids) among available papers: the sequence shown
  /// in the navigation bar of the RePaGer UI.
  std::vector<graph::PaperId> FlattenedOrder(
      const std::vector<uint16_t>& years) const;

  /// Indented ASCII tree (Fig. 9 style). `highlight` marks papers with a
  /// '*' (used for "not in the engine's top-30" marking).
  std::string ToAscii(const PaperInfo& info,
                      const std::unordered_set<graph::PaperId>& highlight = {})
      const;

  /// Graphviz DOT with titles + years; highlighted nodes filled.
  std::string ToDot(const PaperInfo& info,
                    const std::unordered_set<graph::PaperId>& highlight = {})
      const;

  /// Compact JSON {"nodes": [...], "edges": [...]} for the web UI.
  std::string ToJson(const PaperInfo& info) const;

 private:
  std::vector<graph::PaperId> nodes_;
  std::vector<std::pair<graph::PaperId, graph::PaperId>> edges_;
};

}  // namespace rpg::core

#endif  // RPG_CORE_READING_PATH_H_
