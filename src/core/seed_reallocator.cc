#include "core/seed_reallocator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rpg::core {

using graph::PaperId;

std::vector<PaperId> CoOccurrencePapers(const graph::CitationGraph& g,
                                        const std::vector<PaperId>& seeds,
                                        int min_cooccurrence) {
  std::unordered_set<PaperId> seed_set(seeds.begin(), seeds.end());
  std::unordered_map<PaperId, int> counts;
  for (PaperId s : seed_set) {
    if (s >= g.num_nodes()) continue;
    for (PaperId cited : g.OutNeighbors(s)) {
      if (!seed_set.contains(cited)) ++counts[cited];
    }
  }
  std::vector<std::pair<PaperId, int>> scored;
  for (const auto& [p, c] : counts) {
    if (c >= min_cooccurrence) scored.emplace_back(p, c);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<PaperId> out;
  out.reserve(scored.size());
  for (const auto& [p, c] : scored) out.push_back(p);
  return out;
}

std::vector<PaperId> ReallocateSeeds(const graph::CitationGraph& g,
                                     const std::vector<PaperId>& initial,
                                     SeedMode mode, int min_cooccurrence) {
  std::vector<PaperId> result;
  switch (mode) {
    case SeedMode::kInitial:
      result = initial;
      break;
    case SeedMode::kReallocated:
      result = CoOccurrencePapers(g, initial, min_cooccurrence);
      break;
    case SeedMode::kUnion: {
      result = CoOccurrencePapers(g, initial, min_cooccurrence);
      result.insert(result.end(), initial.begin(), initial.end());
      std::sort(result.begin(), result.end());
      result.erase(std::unique(result.begin(), result.end()), result.end());
      break;
    }
    case SeedMode::kIntersection: {
      // Initial seeds that are themselves highly co-cited *by the other
      // seeds*: count each seed's citations from fellow seeds.
      std::unordered_set<PaperId> seed_set(initial.begin(), initial.end());
      std::unordered_map<PaperId, int> counts;
      for (PaperId s : seed_set) {
        if (s >= g.num_nodes()) continue;
        for (PaperId cited : g.OutNeighbors(s)) {
          if (seed_set.contains(cited) && cited != s) ++counts[cited];
        }
      }
      for (PaperId s : initial) {
        auto it = counts.find(s);
        if (it != counts.end() && it->second >= min_cooccurrence) {
          result.push_back(s);
        }
      }
      break;
    }
  }
  if (result.empty()) result = initial;
  return result;
}

}  // namespace rpg::core
