#include "core/seed_reallocator.h"

#include <algorithm>

#include "common/flat_hash.h"

namespace rpg::core {

using graph::PaperId;

std::vector<PaperId> CoOccurrencePapers(const graph::CitationGraph& g,
                                        const std::vector<PaperId>& seeds,
                                        int min_cooccurrence) {
  FlatSet<PaperId> seed_set;
  seed_set.insert(seeds.begin(), seeds.end());
  FlatMap<PaperId, int> counts;
  for (PaperId s : seed_set) {
    if (s >= g.num_nodes()) continue;
    for (PaperId cited : g.OutNeighbors(s)) {
      if (!seed_set.contains(cited)) ++counts[cited];
    }
  }
  // Fully re-sorted with a total-order tiebreak, so the switch from
  // unordered_map bucket order to FlatMap insertion order is invisible.
  std::vector<std::pair<PaperId, int>> scored;
  for (const auto& [p, c] : counts) {
    if (c >= min_cooccurrence) scored.emplace_back(p, c);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<PaperId> out;
  out.reserve(scored.size());
  for (const auto& [p, c] : scored) out.push_back(p);
  return out;
}

std::vector<PaperId> ReallocateSeeds(const graph::CitationGraph& g,
                                     const std::vector<PaperId>& initial,
                                     SeedMode mode, int min_cooccurrence) {
  std::vector<PaperId> result;
  switch (mode) {
    case SeedMode::kInitial:
      result = initial;
      break;
    case SeedMode::kReallocated:
      result = CoOccurrencePapers(g, initial, min_cooccurrence);
      break;
    case SeedMode::kUnion: {
      result = CoOccurrencePapers(g, initial, min_cooccurrence);
      result.insert(result.end(), initial.begin(), initial.end());
      std::sort(result.begin(), result.end());
      result.erase(std::unique(result.begin(), result.end()), result.end());
      break;
    }
    case SeedMode::kIntersection: {
      // Initial seeds that are themselves highly co-cited *by the other
      // seeds*: count each seed's citations from fellow seeds.
      FlatSet<PaperId> seed_set;
      seed_set.insert(initial.begin(), initial.end());
      FlatMap<PaperId, int> counts;
      for (PaperId s : seed_set) {
        if (s >= g.num_nodes()) continue;
        for (PaperId cited : g.OutNeighbors(s)) {
          if (seed_set.contains(cited) && cited != s) ++counts[cited];
        }
      }
      for (PaperId s : initial) {
        const int* c = counts.Find(s);
        if (c != nullptr && *c >= min_cooccurrence) {
          result.push_back(s);
        }
      }
      break;
    }
  }
  if (result.empty()) result = initial;
  return result;
}

}  // namespace rpg::core
