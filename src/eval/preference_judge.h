#ifndef RPG_EVAL_PREFERENCE_JUDGE_H_
#define RPG_EVAL_PREFERENCE_JUDGE_H_

#include <cstdint>

#include "common/result.h"
#include "eval/workbench.h"

namespace rpg::eval {

/// Simulated replacement for the 16-participant human study of §VI-C
/// (Table V). Each virtual participant scores the two systems' results on
/// the questionnaire's three axes and votes Prefer-A / Same / Prefer-B;
/// per-participant Gaussian noise models rater disagreement. See
/// DESIGN.md §2 for why this substitution preserves the study's shape.
struct PreferenceOptions {
  size_t queries_per_domain = 20;  ///< paper: 20 queries per domain
  int participants = 8;           ///< paper: 8 raters per domain
  /// Results examined per system. The engine shows a page of hits; the
  /// RePaGer UI presents the whole reading path, which is larger.
  size_t list_size_a = 30;
  size_t list_size_b = 60;
  double noise_stddev = 0.15;
  /// Score gaps below this read as "prefer the two systems equally".
  double same_threshold = 0.10;
  uint64_t seed = 99;
};

/// Vote shares for one questionnaire criterion (sum to 1).
struct CriterionOutcome {
  double prefer_a = 0.0;  ///< Google Scholar
  double same = 0.0;
  double prefer_b = 0.0;  ///< NEWST / RePaGer
};

struct PreferenceResult {
  CriterionOutcome prerequisite;
  CriterionOutcome relevance;
  CriterionOutcome completeness;
  size_t queries = 0;
};

/// Runs the study for surveys of one CCF domain (A = Google Scholar
/// top-K, B = the RePaGer reading path).
///
/// Criterion scores per query:
///  - prerequisite: coverage of the ground-truth references that belong
///    to ancestor topics (the "how to read"/"how to understand" papers),
///    plus a structure bonus for systems that provide a reading order;
///  - relevance: fraction of returned papers about the queried topic (or
///    a descendant);
///  - completeness: recall of the survey's full reference list.
Result<PreferenceResult> RunPreferenceStudy(const Workbench& wb,
                                            uint32_t domain_index,
                                            const PreferenceOptions& options);

}  // namespace rpg::eval

#endif  // RPG_EVAL_PREFERENCE_JUDGE_H_
