#ifndef RPG_EVAL_EVALUATOR_H_
#define RPG_EVAL_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/baselines.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

namespace rpg::eval {

/// Which occurrence threshold defines the ground truth (L1/L2/L3).
enum class LabelLevel { kAtLeast1 = 1, kAtLeast2 = 2, kAtLeast3 = 3 };

const std::vector<graph::PaperId>& LabelsOf(const surveybank::SurveyEntry& e,
                                            LabelLevel level);

/// Averaged metrics for one (method, K, label) cell of Fig. 8.
struct CellResult {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  size_t queries = 0;
};

/// Evaluation driver over a set of SurveyBank entries.
class Evaluator {
 public:
  /// `entry_indices` selects the evaluation queries (e.g. a sampled test
  /// split). Entries whose ground truth is smaller than 20 references are
  /// kept (the bank construction already guarantees >= 20 for L1).
  Evaluator(const Workbench* wb, std::vector<size_t> entry_indices);

  /// Averages P@K / F1@K over all queries for one method. `num_seeds`
  /// feeds the seed-count sweep of Table II.
  Result<CellResult> Run(Method method, size_t k, LabelLevel level,
                         int num_seeds = 30) const;

  /// Runs a caller-supplied ranked-list producer (used by the Table III
  /// ablations, which need custom RePagerOptions).
  using ListProducer = std::function<Result<std::vector<graph::PaperId>>(
      const QuerySpec&, size_t k)>;
  Result<CellResult> RunCustom(const ListProducer& producer, size_t k,
                               LabelLevel level) const;

  /// Full Fig. 8 sweep for one method: computes each query's ranked list
  /// once (at max K) and evaluates every (K, label-level) cell from it.
  /// Returns grid[level_index][k_index].
  Result<std::vector<std::vector<CellResult>>> RunSweep(
      Method method, const std::vector<size_t>& ks,
      const std::vector<LabelLevel>& levels, int num_seeds = 30) const;

  /// Sweep with a caller-supplied producer.
  Result<std::vector<std::vector<CellResult>>> RunCustomSweep(
      const ListProducer& producer, const std::vector<size_t>& ks,
      const std::vector<LabelLevel>& levels) const;

  const std::vector<size_t>& entries() const { return entry_indices_; }

  /// Deterministically samples `n` evaluation queries from the bank
  /// (entries with non-empty L3 so all label levels are exercised).
  static std::vector<size_t> SampleEntries(const surveybank::SurveyBank& bank,
                                           size_t n, uint64_t seed);

 private:
  const Workbench* wb_;
  std::vector<size_t> entry_indices_;
};

}  // namespace rpg::eval

#endif  // RPG_EVAL_EVALUATOR_H_
