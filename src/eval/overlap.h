#ifndef RPG_EVAL_OVERLAP_H_
#define RPG_EVAL_OVERLAP_H_

#include <array>
#include <vector>

#include "common/result.h"
#include "eval/evaluator.h"
#include "eval/workbench.h"

namespace rpg::eval {

/// The Fig. 2 study: how much of a survey's reference list the engine's
/// raw top-K covers (0th order), versus after pulling in the papers cited
/// by those results (1st order) and their references in turn (2nd order).
struct OverlapResult {
  /// ratio[order][label]: order ∈ {0, 1, 2}, label ∈ {L1, L2, L3}.
  /// Each value is the mean over surveys of |response ∩ refs| / |refs|.
  std::array<std::array<double, 3>, 3> ratio{};
  size_t surveys = 0;
};

struct OverlapOptions {
  int top_k = 30;            ///< initial seed count (Fig. 2a: 30, 2b: 50)
  size_t subset_size = 100;  ///< high-score SurveyBank subset size
};

/// Runs the study over the high-score subset of the bank.
Result<OverlapResult> RunOverlapExperiment(const Workbench& wb,
                                           const OverlapOptions& options);

}  // namespace rpg::eval

#endif  // RPG_EVAL_OVERLAP_H_
