#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace rpg::eval {

size_t CountOverlap(const std::vector<graph::PaperId>& items,
                    const std::vector<graph::PaperId>& truth) {
  std::unordered_set<graph::PaperId> seen;
  size_t overlap = 0;
  for (graph::PaperId p : items) {
    if (!seen.insert(p).second) continue;
    if (std::binary_search(truth.begin(), truth.end(), p)) ++overlap;
  }
  return overlap;
}

PrfAtK ComputePrfAtK(const std::vector<graph::PaperId>& ranked,
                     const std::vector<graph::PaperId>& truth, size_t k) {
  PrfAtK out;
  if (k == 0 || ranked.empty() || truth.empty()) return out;
  size_t kk = std::min(k, ranked.size());
  std::vector<graph::PaperId> prefix(ranked.begin(),
                                     ranked.begin() + static_cast<long>(kk));
  size_t hits = CountOverlap(prefix, truth);
  out.precision = static_cast<double>(hits) / static_cast<double>(kk);
  out.recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

}  // namespace rpg::eval
