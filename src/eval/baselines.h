#ifndef RPG_EVAL_BASELINES_H_
#define RPG_EVAL_BASELINES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/workbench.h"

namespace rpg::eval {

/// The six compared systems of §VI (Fig. 8).
enum class Method {
  kGoogle,
  kMicrosoft,
  kAminer,
  kPageRank,
  kSciBert,  ///< the semantic-matcher substitute (DESIGN.md §2)
  kNewst,
};

const char* MethodName(Method m);
std::vector<Method> AllMethods();

/// A query instance: the survey's key phrases, its year (time-range
/// cutoff), and the survey paper itself (excluded to avoid data leakage,
/// §VI-A).
struct QuerySpec {
  std::string query;
  int year_cutoff = INT32_MAX;
  graph::PaperId exclude = graph::kInvalidPaper;
};

/// Produces a ranked list of >= k papers (when available) for a query
/// under the given method.
///
/// - Engines: their native top-k ranking.
/// - PageRank: expand the Google top-30 seeds to 2nd-order neighbors,
///   re-rank seed+candidates by *global* PageRank (§VI-A).
/// - SciBERT substitute: same expansion, re-rank by semantic similarity.
/// - NEWST: the full RePaGer pipeline's ranked list.
Result<std::vector<graph::PaperId>> RankedListFor(const Workbench& wb,
                                                  Method method,
                                                  const QuerySpec& spec,
                                                  size_t k,
                                                  int num_seeds = 30);

/// Expansion shared by the PageRank/SciBERT baselines: Google top-`seeds`
/// + their 1st/2nd-order references, year-filtered, survey excluded.
std::vector<graph::PaperId> ExpandSeeds(const Workbench& wb,
                                        const QuerySpec& spec, int num_seeds);

}  // namespace rpg::eval

#endif  // RPG_EVAL_BASELINES_H_
