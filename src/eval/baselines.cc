#include "eval/baselines.h"

#include <algorithm>

#include "graph/traversal.h"

namespace rpg::eval {

using graph::PaperId;

const char* MethodName(Method m) {
  switch (m) {
    case Method::kGoogle:
      return "Google";
    case Method::kMicrosoft:
      return "Microsoft";
    case Method::kAminer:
      return "Aminer";
    case Method::kPageRank:
      return "PageRank";
    case Method::kSciBert:
      return "SciBERT";
    case Method::kNewst:
      return "NEWST";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kNewst,   Method::kGoogle,  Method::kMicrosoft,
          Method::kAminer,  Method::kPageRank, Method::kSciBert};
}

std::vector<PaperId> ExpandSeeds(const Workbench& wb, const QuerySpec& spec,
                                 int num_seeds) {
  auto hits = wb.google().Search(spec.query, static_cast<size_t>(num_seeds),
                                 spec.year_cutoff, {spec.exclude});
  std::vector<PaperId> seeds;
  seeds.reserve(hits.size());
  for (const auto& h : hits) seeds.push_back(h.doc);
  graph::KHopResult khop = KHopNeighborhood(wb.corpus().citations, seeds, 2,
                                            graph::Direction::kOut);
  std::vector<PaperId> out;
  for (const auto& level : khop.levels) {
    for (PaperId p : level) {
      if (wb.years()[p] <= spec.year_cutoff && p != spec.exclude) {
        out.push_back(p);
      }
    }
  }
  return out;
}

Result<std::vector<PaperId>> RankedListFor(const Workbench& wb, Method method,
                                           const QuerySpec& spec, size_t k,
                                           int num_seeds) {
  switch (method) {
    case Method::kGoogle:
    case Method::kMicrosoft:
    case Method::kAminer: {
      const search::SearchEngine& engine =
          method == Method::kGoogle
              ? wb.google()
              : (method == Method::kMicrosoft ? wb.microsoft() : wb.aminer());
      auto hits = engine.Search(spec.query, k, spec.year_cutoff,
                                {spec.exclude});
      std::vector<PaperId> out;
      out.reserve(hits.size());
      for (const auto& h : hits) out.push_back(h.doc);
      return out;
    }
    case Method::kPageRank: {
      std::vector<PaperId> candidates = ExpandSeeds(wb, spec, num_seeds);
      std::sort(candidates.begin(), candidates.end(),
                [&](PaperId a, PaperId b) {
                  double pa = wb.pagerank()[a], pb = wb.pagerank()[b];
                  if (pa != pb) return pa > pb;
                  return a < b;
                });
      if (candidates.size() > k) candidates.resize(k);
      return candidates;
    }
    case Method::kSciBert: {
      std::vector<PaperId> candidates = ExpandSeeds(wb, spec, num_seeds);
      auto matches = wb.matcher().Rerank(spec.query, candidates, k);
      std::vector<PaperId> out;
      out.reserve(matches.size());
      for (const auto& m : matches) out.push_back(m.doc);
      return out;
    }
    case Method::kNewst: {
      core::RePagerOptions options;
      options.num_initial_seeds = num_seeds;
      options.year_cutoff = spec.year_cutoff;
      if (spec.exclude != graph::kInvalidPaper) {
        options.exclude = {spec.exclude};
      }
      RPG_ASSIGN_OR_RETURN(core::RePagerResult result,
                           wb.repager().Generate(spec.query, options));
      if (result.ranked.size() > k) result.ranked.resize(k);
      return result.ranked;
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace rpg::eval
