#ifndef RPG_EVAL_WORKBENCH_H_
#define RPG_EVAL_WORKBENCH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/repager.h"
#include "match/semantic_matcher.h"
#include "rank/weight_model.h"
#include "search/search_engine.h"
#include "surveybank/builder.h"
#include "surveybank/survey_bank.h"
#include "synth/corpus_generator.h"

namespace rpg::eval {

/// Everything an experiment needs, built once: corpus, SurveyBank, the
/// three baseline engines, global PageRank + venue scores, the Eq. (2)/(3)
/// weight model, the semantic matcher, and a RePaGer wired to the Google
/// Scholar profile (the seed source used throughout §VI).
struct WorkbenchOptions {
  synth::CorpusOptions corpus;
  surveybank::BuilderOptions bank;
  rank::NewstParams params;  ///< {3, 2, 5, 0.7, 0.3}
};

class Workbench {
 public:
  /// Builds all substrates; the dominant cost is corpus generation +
  /// PageRank (a few seconds at default scale).
  static Result<std::unique_ptr<Workbench>> Create(
      const WorkbenchOptions& options = {});

  const synth::Corpus& corpus() const { return *corpus_; }
  const surveybank::SurveyBank& bank() const { return *bank_; }

  const search::SearchEngine& google() const { return *google_; }
  const search::SearchEngine& microsoft() const { return *microsoft_; }
  const search::SearchEngine& aminer() const { return *aminer_; }

  const rank::WeightModel& weights() const { return *weights_; }
  const match::SemanticMatcher& matcher() const { return *matcher_; }
  const core::RePaGer& repager() const { return *repager_; }

  /// Max-normalized global PageRank (per paper).
  const std::vector<double>& pagerank() const { return pagerank_norm_; }
  /// Venue scores in [0, 1] (per paper).
  const std::vector<double>& venue_scores() const { return venue_scores_; }

  const std::vector<std::string>& titles() const { return titles_; }
  const std::vector<uint16_t>& years() const { return years_; }

  /// Display metadata bundle for path rendering.
  core::PaperInfo paper_info() const { return {&titles_, &years_}; }

 private:
  Workbench() = default;

  std::unique_ptr<synth::Corpus> corpus_;
  std::unique_ptr<surveybank::SurveyBank> bank_;
  std::unique_ptr<search::SearchEngine> google_;
  std::unique_ptr<search::SearchEngine> microsoft_;
  std::unique_ptr<search::SearchEngine> aminer_;
  std::unique_ptr<rank::WeightModel> weights_;
  std::unique_ptr<match::SemanticMatcher> matcher_;
  std::unique_ptr<core::RePaGer> repager_;
  std::vector<double> pagerank_norm_;
  std::vector<double> venue_scores_;
  std::vector<std::string> titles_;
  std::vector<uint16_t> years_;
};

}  // namespace rpg::eval

#endif  // RPG_EVAL_WORKBENCH_H_
