#include "eval/overlap.h"

#include "eval/metrics.h"
#include "graph/traversal.h"

namespace rpg::eval {

Result<OverlapResult> RunOverlapExperiment(const Workbench& wb,
                                           const OverlapOptions& options) {
  if (options.top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  OverlapResult result;
  std::array<std::array<MeanAccumulator, 3>, 3> acc;

  for (size_t index : wb.bank().HighScoreSubset(options.subset_size)) {
    const surveybank::SurveyEntry& entry = wb.bank().Get(index);
    if (entry.label_l1.empty()) continue;
    // Engine search restricted to the survey's era, survey removed.
    auto hits = wb.google().Search(entry.query,
                                   static_cast<size_t>(options.top_k),
                                   entry.year, {entry.paper});
    if (hits.empty()) continue;
    std::vector<graph::PaperId> seeds;
    for (const auto& h : hits) seeds.push_back(h.doc);

    // Levels 0..2 of reference expansion (following citations outward).
    graph::KHopResult khop =
        KHopNeighborhood(wb.corpus().citations, seeds, 2,
                         graph::Direction::kOut);
    std::vector<graph::PaperId> cumulative;
    for (int order = 0; order < 3; ++order) {
      if (order < static_cast<int>(khop.levels.size())) {
        for (graph::PaperId p : khop.levels[order]) {
          if (p != entry.paper && wb.years()[p] <= entry.year) {
            cumulative.push_back(p);
          }
        }
      }
      const std::vector<graph::PaperId>* labels[3] = {
          &entry.label_l1, &entry.label_l2, &entry.label_l3};
      for (int l = 0; l < 3; ++l) {
        if (labels[l]->empty()) continue;
        size_t overlap = CountOverlap(cumulative, *labels[l]);
        acc[order][l].Add(static_cast<double>(overlap) /
                          static_cast<double>(labels[l]->size()));
      }
    }
    ++result.surveys;
  }
  if (result.surveys == 0) {
    return Status::FailedPrecondition("no surveys produced engine results");
  }
  for (int order = 0; order < 3; ++order) {
    for (int l = 0; l < 3; ++l) {
      result.ratio[order][l] = acc[order][l].mean();
    }
  }
  return result;
}

}  // namespace rpg::eval
