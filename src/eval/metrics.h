#ifndef RPG_EVAL_METRICS_H_
#define RPG_EVAL_METRICS_H_

#include <vector>

#include "graph/citation_graph.h"

namespace rpg::eval {

/// Precision/recall/F1 of the top-K prefix of a ranked list against a
/// ground-truth set (§VI-A: P@K and F1@K over flattened reading lists).
struct PrfAtK {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// `truth` must be sorted ascending. K = min(k, ranked.size()) items are
/// considered; duplicates in `ranked` count once.
PrfAtK ComputePrfAtK(const std::vector<graph::PaperId>& ranked,
                     const std::vector<graph::PaperId>& truth, size_t k);

/// |a ∩ b| for a sorted `truth` and arbitrary `items` (duplicates in
/// items count once).
size_t CountOverlap(const std::vector<graph::PaperId>& items,
                    const std::vector<graph::PaperId>& truth);

/// Running mean accumulator for averaging metrics over queries.
class MeanAccumulator {
 public:
  void Add(double v) {
    sum_ += v;
    ++n_;
  }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  size_t count() const { return n_; }

 private:
  double sum_ = 0.0;
  size_t n_ = 0;
};

}  // namespace rpg::eval

#endif  // RPG_EVAL_METRICS_H_
