#include "eval/evaluator.h"

#include <algorithm>

#include "common/rng.h"

namespace rpg::eval {

const std::vector<graph::PaperId>& LabelsOf(const surveybank::SurveyEntry& e,
                                            LabelLevel level) {
  switch (level) {
    case LabelLevel::kAtLeast1:
      return e.label_l1;
    case LabelLevel::kAtLeast2:
      return e.label_l2;
    case LabelLevel::kAtLeast3:
      return e.label_l3;
  }
  return e.label_l1;
}

Evaluator::Evaluator(const Workbench* wb, std::vector<size_t> entry_indices)
    : wb_(wb), entry_indices_(std::move(entry_indices)) {}

Result<CellResult> Evaluator::Run(Method method, size_t k, LabelLevel level,
                                  int num_seeds) const {
  return RunCustom(
      [&](const QuerySpec& spec, size_t kk) {
        return RankedListFor(*wb_, method, spec, kk, num_seeds);
      },
      k, level);
}

Result<CellResult> Evaluator::RunCustom(const ListProducer& producer, size_t k,
                                        LabelLevel level) const {
  MeanAccumulator f1, precision, recall;
  for (size_t index : entry_indices_) {
    const surveybank::SurveyEntry& entry = wb_->bank().Get(index);
    const auto& truth = LabelsOf(entry, level);
    if (truth.empty()) continue;
    QuerySpec spec{entry.query, entry.year, entry.paper};
    auto ranked_or = producer(spec, k);
    if (!ranked_or.ok()) {
      // A query the engine cannot serve scores zero, like an empty list.
      f1.Add(0.0);
      precision.Add(0.0);
      recall.Add(0.0);
      continue;
    }
    PrfAtK m = ComputePrfAtK(ranked_or.value(), truth, k);
    f1.Add(m.f1);
    precision.Add(m.precision);
    recall.Add(m.recall);
  }
  if (f1.count() == 0) {
    return Status::FailedPrecondition("no evaluable queries");
  }
  CellResult out;
  out.f1 = f1.mean();
  out.precision = precision.mean();
  out.recall = recall.mean();
  out.queries = f1.count();
  return out;
}

Result<std::vector<std::vector<CellResult>>> Evaluator::RunSweep(
    Method method, const std::vector<size_t>& ks,
    const std::vector<LabelLevel>& levels, int num_seeds) const {
  return RunCustomSweep(
      [&](const QuerySpec& spec, size_t kk) {
        return RankedListFor(*wb_, method, spec, kk, num_seeds);
      },
      ks, levels);
}

Result<std::vector<std::vector<CellResult>>> Evaluator::RunCustomSweep(
    const ListProducer& producer, const std::vector<size_t>& ks,
    const std::vector<LabelLevel>& levels) const {
  if (ks.empty() || levels.empty()) {
    return Status::InvalidArgument("empty sweep axes");
  }
  size_t max_k = *std::max_element(ks.begin(), ks.end());
  struct Acc {
    MeanAccumulator f1, precision, recall;
  };
  std::vector<std::vector<Acc>> acc(levels.size(),
                                    std::vector<Acc>(ks.size()));
  size_t evaluable = 0;
  for (size_t index : entry_indices_) {
    const surveybank::SurveyEntry& entry = wb_->bank().Get(index);
    QuerySpec spec{entry.query, entry.year, entry.paper};
    auto ranked_or = producer(spec, max_k);
    std::vector<graph::PaperId> empty_list;
    const std::vector<graph::PaperId>& ranked =
        ranked_or.ok() ? ranked_or.value() : empty_list;
    bool counted = false;
    for (size_t li = 0; li < levels.size(); ++li) {
      const auto& truth = LabelsOf(entry, levels[li]);
      if (truth.empty()) continue;
      counted = true;
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        PrfAtK m = ComputePrfAtK(ranked, truth, ks[ki]);
        acc[li][ki].f1.Add(m.f1);
        acc[li][ki].precision.Add(m.precision);
        acc[li][ki].recall.Add(m.recall);
      }
    }
    if (counted) ++evaluable;
  }
  if (evaluable == 0) {
    return Status::FailedPrecondition("no evaluable queries");
  }
  std::vector<std::vector<CellResult>> grid(
      levels.size(), std::vector<CellResult>(ks.size()));
  for (size_t li = 0; li < levels.size(); ++li) {
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      grid[li][ki].f1 = acc[li][ki].f1.mean();
      grid[li][ki].precision = acc[li][ki].precision.mean();
      grid[li][ki].recall = acc[li][ki].recall.mean();
      grid[li][ki].queries = acc[li][ki].f1.count();
    }
  }
  return grid;
}

std::vector<size_t> Evaluator::SampleEntries(
    const surveybank::SurveyBank& bank, size_t n, uint64_t seed) {
  std::vector<size_t> eligible;
  for (size_t i = 0; i < bank.size(); ++i) {
    if (!bank.Get(i).label_l3.empty()) eligible.push_back(i);
  }
  Rng rng(seed);
  rng.Shuffle(&eligible);
  if (eligible.size() > n) eligible.resize(n);
  std::sort(eligible.begin(), eligible.end());
  return eligible;
}

}  // namespace rpg::eval
