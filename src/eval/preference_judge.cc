#include "eval/preference_judge.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "eval/baselines.h"
#include "eval/metrics.h"

namespace rpg::eval {

namespace {

using graph::PaperId;

/// Per-query scores of one system on the three questionnaire axes.
struct AxisScores {
  double prerequisite = 0.0;
  double relevance = 0.0;
  double completeness = 0.0;
};

AxisScores ScoreSystem(const Workbench& wb,
                       const surveybank::SurveyEntry& entry,
                       const std::vector<PaperId>& results, bool structured) {
  const synth::TopicHierarchy& topics = wb.corpus().topics;
  AxisScores scores;

  // Ground-truth prerequisite papers: references whose (latent) topic is
  // a strict ancestor of the survey's topic.
  std::vector<PaperId> prereq_truth;
  for (PaperId r : entry.label_l1) {
    synth::TopicId rt = wb.corpus().papers[r].topic;
    if (rt != entry.topic && topics.IsAncestorOf(rt, entry.topic)) {
      prereq_truth.push_back(r);
    }
  }
  std::sort(prereq_truth.begin(), prereq_truth.end());
  double coverage =
      prereq_truth.empty()
          ? 0.0
          : static_cast<double>(CountOverlap(results, prereq_truth)) /
                static_cast<double>(prereq_truth.size());
  // Raters reward both *containing* prerequisites and *ordering* them.
  scores.prerequisite = 0.75 * coverage + (structured ? 0.25 : 0.0);

  // Relevance: graded topical credit. Raters see prerequisite papers
  // from the parent area as still fairly relevant, papers from elsewhere
  // in the domain as marginal, everything else as off-topic.
  double relevance_sum = 0.0;
  for (PaperId p : results) {
    synth::TopicId pt = wb.corpus().papers[p].topic;
    if (pt == entry.topic || topics.IsAncestorOf(entry.topic, pt)) {
      relevance_sum += 1.0;
    } else if (topics.Get(pt).level == synth::TopicLevel::kArea &&
               topics.IsAncestorOf(pt, entry.topic)) {
      relevance_sum += 0.8;
    } else if (topics.DomainOf(pt) == topics.DomainOf(entry.topic)) {
      relevance_sum += 0.45;
    }
  }
  scores.relevance = results.empty()
                         ? 0.0
                         : relevance_sum /
                               static_cast<double>(results.size());

  // Completeness: recall of the survey's reference list.
  scores.completeness =
      entry.label_l1.empty()
          ? 0.0
          : static_cast<double>(CountOverlap(results, entry.label_l1)) /
                static_cast<double>(entry.label_l1.size());
  return scores;
}

void Vote(double a, double b, double threshold, Rng* rng, double noise,
          CriterionOutcome* outcome) {
  double na = a + rng->Normal(0.0, noise);
  double nb = b + rng->Normal(0.0, noise);
  if (na > nb + threshold) {
    outcome->prefer_a += 1.0;
  } else if (nb > na + threshold) {
    outcome->prefer_b += 1.0;
  } else {
    outcome->same += 1.0;
  }
}

void NormalizeOutcome(CriterionOutcome* o, double total) {
  if (total <= 0.0) return;
  o->prefer_a /= total;
  o->same /= total;
  o->prefer_b /= total;
}

}  // namespace

Result<PreferenceResult> RunPreferenceStudy(const Workbench& wb,
                                            uint32_t domain_index,
                                            const PreferenceOptions& options) {
  // Queries: surveys of the requested domain by latent topic (the
  // questionnaire targets a research domain, not a publication venue).
  std::vector<size_t> pool;
  for (size_t i = 0; i < wb.bank().size(); ++i) {
    const auto& e = wb.bank().Get(i);
    if (e.topic == UINT32_MAX) continue;
    if (wb.corpus().topics.Get(e.topic).domain_index == domain_index) {
      pool.push_back(i);
    }
  }
  if (pool.empty()) {
    return Status::FailedPrecondition("no surveys in requested domain");
  }
  Rng rng(options.seed);
  rng.Shuffle(&pool);
  if (pool.size() > options.queries_per_domain) {
    pool.resize(options.queries_per_domain);
  }

  PreferenceResult result;
  double votes = 0.0;
  for (size_t index : pool) {
    const surveybank::SurveyEntry& entry = wb.bank().Get(index);
    QuerySpec spec{entry.query, entry.year, entry.paper};
    auto a_or = RankedListFor(wb, Method::kGoogle, spec, options.list_size_a);
    auto b_or = RankedListFor(wb, Method::kNewst, spec, options.list_size_b);
    if (!a_or.ok() || !b_or.ok()) continue;
    AxisScores a = ScoreSystem(wb, entry, a_or.value(), /*structured=*/false);
    AxisScores b = ScoreSystem(wb, entry, b_or.value(), /*structured=*/true);
    for (int participant = 0; participant < options.participants;
         ++participant) {
      Vote(a.prerequisite, b.prerequisite, options.same_threshold, &rng,
           options.noise_stddev, &result.prerequisite);
      Vote(a.relevance, b.relevance, options.same_threshold, &rng,
           options.noise_stddev, &result.relevance);
      Vote(a.completeness, b.completeness, options.same_threshold, &rng,
           options.noise_stddev, &result.completeness);
      votes += 1.0;
    }
    ++result.queries;
  }
  if (result.queries == 0) {
    return Status::FailedPrecondition("no evaluable preference queries");
  }
  NormalizeOutcome(&result.prerequisite, votes);
  NormalizeOutcome(&result.relevance, votes);
  NormalizeOutcome(&result.completeness, votes);
  return result;
}

}  // namespace rpg::eval
