#include "eval/workbench.h"

#include "rank/pagerank.h"

namespace rpg::eval {

Result<std::unique_ptr<Workbench>> Workbench::Create(
    const WorkbenchOptions& options) {
  auto wb = std::unique_ptr<Workbench>(new Workbench());

  RPG_ASSIGN_OR_RETURN(wb->corpus_, synth::GenerateCorpus(options.corpus));
  const synth::Corpus& corpus = *wb->corpus_;

  RPG_ASSIGN_OR_RETURN(surveybank::SurveyBank bank,
                       surveybank::BuildSurveyBank(corpus, options.bank));
  wb->bank_ = std::make_unique<surveybank::SurveyBank>(std::move(bank));

  // Flat metadata arrays.
  const size_t n = corpus.num_papers();
  wb->titles_.reserve(n);
  wb->years_.reserve(n);
  std::vector<std::string> abstracts;
  abstracts.reserve(n);
  std::vector<search::EngineDocument> docs;
  docs.reserve(n);
  wb->venue_scores_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const synth::Paper& p = corpus.papers[i];
    wb->titles_.push_back(p.title);
    wb->years_.push_back(p.year);
    abstracts.push_back(p.abstract_text);
    docs.push_back({p.title, p.abstract_text, p.year,
                    corpus.citations.CitationCount(
                        static_cast<graph::PaperId>(i))});
    wb->venue_scores_.push_back(corpus.venues.Score(p.venue));
  }

  // Engines.
  RPG_ASSIGN_OR_RETURN(wb->google_,
                       search::SearchEngine::Build(
                           docs, search::GoogleScholarProfile()));
  RPG_ASSIGN_OR_RETURN(wb->microsoft_,
                       search::SearchEngine::Build(
                           docs, search::MicrosoftAcademicProfile()));
  RPG_ASSIGN_OR_RETURN(wb->aminer_, search::SearchEngine::Build(
                                        std::move(docs),
                                        search::AMinerProfile()));

  // Global PageRank + weight model.
  wb->pagerank_norm_ =
      rank::NormalizeByMax(rank::PageRank(corpus.citations));
  wb->weights_ = std::make_unique<rank::WeightModel>(
      &corpus.citations, wb->pagerank_norm_, wb->venue_scores_,
      options.params);

  // Semantic matcher (SciBERT substitute).
  wb->matcher_ = std::make_unique<match::SemanticMatcher>(wb->titles_,
                                                          abstracts);

  // RePaGer wired to the Google profile (the paper's seed source).
  wb->repager_ = std::make_unique<core::RePaGer>(
      &corpus.citations, wb->google_.get(), wb->weights_.get(), &wb->years_);
  return wb;
}

}  // namespace rpg::eval
