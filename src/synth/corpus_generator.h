#ifndef RPG_SYNTH_CORPUS_GENERATOR_H_
#define RPG_SYNTH_CORPUS_GENERATOR_H_

#include <memory>

#include "common/result.h"
#include "synth/corpus.h"

namespace rpg::synth {

/// Knobs for the corpus generator. Defaults produce ~27k papers and ~300
/// surveys in a couple of seconds — the same *structure* as the paper's
/// 6M-node S2ORC graph at laptop scale (every experiment's workload shape
/// is preserved; see DESIGN.md §2).
struct CorpusOptions {
  TopicHierarchyOptions hierarchy;
  VenueTableOptions venue;

  /// Papers directly about each leaf topic. Large enough that an
  /// engine's top-30 is a small sample of each topic's literature (the
  /// real corpora behind Fig. 2 make engine/reference overlap low).
  int papers_per_topic = 200;
  /// Prerequisite papers about each area (parents of leaf topics). Their
  /// titles do NOT contain leaf-topic phrases, so lexical engines miss
  /// them; leaf papers cite them, so citation expansion finds them.
  int papers_per_area = 60;
  /// Foundational classics per domain (old, highly cited).
  int papers_per_domain = 50;

  /// Total surveys; allocated to domains proportionally to Table I.
  int num_surveys = 300;
  /// Fraction of surveys written about an area (vs. a leaf topic).
  double area_survey_fraction = 0.3;

  int min_year = 1980;
  int max_year = 2021;

  /// Mean reference-list length for regular papers / surveys. SurveyBank
  /// reports ~58 references per survey on average. Regular papers cite
  /// sparsely enough that co-citation by multiple search hits is a
  /// *selective* signal (in the paper's 6M-node graph it is rare).
  double regular_refs_mean = 14.0;
  double survey_refs_mean = 58.0;

  /// Fraction of papers (incl. surveys) with no recognizable venue; the
  /// paper's Table I reports 64.2% "Uncertain Topics".
  double missing_venue_fraction = 0.642;

  uint64_t seed = 42;
};

/// Generates the full synthetic corpus: topic tree, venues, papers (in
/// chronological order so all citation edges point to older papers),
/// citation graph with topic-aware preferential attachment, and surveys
/// with occurrence-weighted reference lists.
Result<std::unique_ptr<Corpus>> GenerateCorpus(const CorpusOptions& options);

/// The scale axis: derives CorpusOptions whose total paper count lands
/// within a few percent of `target_papers` (valid from ~10^3 up to 10^7
/// and beyond), keeping the structural shape — skewed Table I survey
/// allocation, Zipf-ish topic sizes, sparse regular / dense survey
/// reference lists — intact as the corpus grows. The topic tree widens as
/// sqrt(target) so leaves deepen at the same rate they multiply.
/// Deterministic: the same (target, seed) always yields the same options
/// and therefore (via the seeded generator) the same corpus bytes.
CorpusOptions ScaledCorpusOptions(uint64_t target_papers, uint64_t seed);

/// Relative Table I domain weights (AI = 12.3 ... HCI = 0.9), used to
/// allocate surveys across domains. Exposed for tests/stats.
const std::vector<double>& TableOneDomainWeights();

}  // namespace rpg::synth

#endif  // RPG_SYNTH_CORPUS_GENERATOR_H_
