#ifndef RPG_SYNTH_VENUE_TABLE_H_
#define RPG_SYNTH_VENUE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rpg::synth {

using VenueId = uint32_t;
inline constexpr VenueId kNoVenue = UINT32_MAX;

/// One journal/conference. Mirrors the paper's venue collection: ~700
/// venues over 10 domains, each with a CCF tier (A/B/C, expert-assigned)
/// and an AMiner-style influence score in [0, 1] (derived from best-paper
/// citations). §IV-B averages the two into the final venue score.
struct Venue {
  std::string name;
  uint32_t domain_index = 0;
  int ccf_tier = 3;           ///< 1 = A (best), 2 = B, 3 = C
  double aminer_influence = 0.0;
};

/// Options controlling the synthetic venue collection.
struct VenueTableOptions {
  int venues_per_domain_per_tier = 23;  ///< 10 * 3 * 23 = 690 ≈ "around 700"
  uint64_t seed = 23;
};

/// The synthetic CCF/AMiner venue collection.
class VenueTable {
 public:
  explicit VenueTable(const VenueTableOptions& options = {});

  size_t size() const { return venues_.size(); }
  const Venue& Get(VenueId id) const { return venues_[id]; }

  /// All venue ids for one domain at one tier.
  const std::vector<VenueId>& ByDomainTier(uint32_t domain_index,
                                           int tier) const;

  /// CCF tier mapped to [0, 1]: A -> 1.0, B -> 0.6, C -> 0.3.
  static double TierScore(int tier);

  /// Final venue score of §IV-B: average of tier score and AMiner
  /// influence. Returns 0 for kNoVenue.
  double Score(VenueId id) const;

 private:
  std::vector<Venue> venues_;
  // [domain][tier - 1] -> venue ids
  std::vector<std::vector<std::vector<VenueId>>> by_domain_tier_;
};

}  // namespace rpg::synth

#endif  // RPG_SYNTH_VENUE_TABLE_H_
