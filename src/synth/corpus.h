#ifndef RPG_SYNTH_CORPUS_H_
#define RPG_SYNTH_CORPUS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/citation_graph.h"
#include "synth/topic_hierarchy.h"
#include "synth/venue_table.h"

namespace rpg::synth {

/// One scientific paper of the synthetic corpus. Titles/abstracts carry
/// the topical vocabulary the retrieval substrate indexes; `topic` is the
/// generator-side latent label (never exposed to the search/path pipeline,
/// only used by evaluation to reason about prerequisites).
struct Paper {
  std::string title;
  std::string abstract_text;
  uint16_t year = 0;
  VenueId venue = kNoVenue;
  TopicId topic = kInvalidTopic;
  bool is_survey = false;
};

/// A survey paper together with its reference list and per-reference
/// occurrence counts (how many times the reference is mentioned in the
/// survey body) — the source of the L1/L2/L3 ground-truth labels.
struct SurveyRecord {
  graph::PaperId paper = graph::kInvalidPaper;
  TopicId topic = kInvalidTopic;
  std::vector<graph::PaperId> references;
  std::vector<uint32_t> occurrence;  ///< parallel to `references`, >= 1
};

/// The generated corpus: papers, citation graph, surveys, and the topic /
/// venue substrates. Node ids in `citations` index `papers`.
struct Corpus {
  TopicHierarchy topics;
  VenueTable venues;
  std::vector<Paper> papers;
  graph::CitationGraph citations;
  std::vector<SurveyRecord> surveys;

  explicit Corpus(const TopicHierarchyOptions& topic_options,
                  const VenueTableOptions& venue_options)
      : topics(topic_options), venues(venue_options) {}

  size_t num_papers() const { return papers.size(); }

  /// Index of the survey record for a paper id, or -1.
  int SurveyIndexOf(graph::PaperId id) const;
};

}  // namespace rpg::synth

#endif  // RPG_SYNTH_CORPUS_H_
