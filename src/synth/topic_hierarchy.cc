#include "synth/topic_hierarchy.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace rpg::synth {

namespace {

// Table I domain labels.
const std::vector<std::string>* BuildDomainNames() {
  return new std::vector<std::string>{
      "Artificial Intelligence",
      "Interdisciplinary, Emerging Subjects",
      "Computer Network",
      "Computer Graphics and Multimedia",
      "Database, Data Mining, Information Retrieval",
      "Software Engineering, System Software, Programming Language",
      "Computer Architecture, Parallel and Distributed Computing, Storage "
      "System",
      "Network and Information Security",
      "Computer Science Theory",
      "Human-Computer Interaction and Pervasive Computing",
  };
}

// Per-domain term banks used to mint topic phrases. Terms are single
// lowercase words; phrases combine two distinct terms, so a bank of n
// terms yields n*(n-1) possible phrases — far more than needed.
const std::vector<std::vector<std::string>>* BuildDomainTerms() {
  return new std::vector<std::vector<std::string>>{
      // Artificial Intelligence
      {"neural", "learning", "reinforcement", "adversarial", "transformer",
       "language", "vision", "speech", "translation", "embedding",
       "attention", "generative", "semantic", "knowledge", "reasoning",
       "planning", "agent", "recognition", "classification", "detection",
       "segmentation", "pretraining", "representation", "graph"},
      // Interdisciplinary, Emerging Subjects
      {"quantum", "bioinformatics", "genomic", "blockchain", "robotic",
       "autonomous", "crowdsourcing", "social", "computational", "biology",
       "finance", "healthcare", "medical", "climate", "energy", "legal",
       "education", "iot", "edge", "federated", "wearable", "sensing"},
      // Computer Network
      {"routing", "wireless", "congestion", "bandwidth", "multicast",
       "protocol", "spectrum", "cellular", "mesh", "mobility", "latency",
       "throughput", "overlay", "peering", "sdn", "virtualization",
       "datacenter", "optical", "satellite", "vehicular", "handoff",
       "telemetry"},
      // Computer Graphics and Multimedia
      {"rendering", "shading", "texture", "animation", "geometry",
       "raytracing", "mesh", "illumination", "volumetric", "streaming",
       "codec", "compression", "panorama", "stereo", "holographic",
       "augmented", "virtual", "avatar", "motion", "capture", "pointcloud",
       "photogrammetry"},
      // Database, Data Mining, Information Retrieval
      {"query", "indexing", "transaction", "concurrency", "storage",
       "columnar", "relational", "ranking", "retrieval", "recommendation",
       "clustering", "outlier", "stream", "warehouse", "provenance",
       "sharding", "replication", "consistency", "join", "optimizer",
       "vectorized", "crawling"},
      // Software Engineering, System Software, Programming Language
      {"compiler", "verification", "testing", "debugging", "refactoring",
       "typing", "static", "dynamic", "analysis", "synthesis", "fuzzing",
       "specification", "concurrency", "runtime", "garbage", "collection",
       "microservice", "container", "devops", "traceability", "mutation",
       "symbolic"},
      // Computer Architecture, Parallel and Distributed Computing, Storage
      {"cache", "pipeline", "superscalar", "coherence", "interconnect",
       "accelerator", "gpu", "fpga", "memory", "persistent", "nvme",
       "scheduling", "consensus", "raft", "paxos", "checkpoint", "failover",
       "prefetching", "branch", "speculation", "vectorization", "numa"},
      // Network and Information Security
      {"encryption", "authentication", "malware", "intrusion", "anomaly",
       "firewall", "phishing", "botnet", "ransomware", "forensics",
       "privacy", "anonymity", "obfuscation", "sandboxing", "exploit",
       "vulnerability", "audit", "trust", "keyexchange", "signature",
       "watermarking", "honeypot"},
      // Computer Science Theory
      {"complexity", "approximation", "randomized", "combinatorial",
       "optimization", "hashing", "sketching", "submodular", "matroid",
       "spectral", "lattice", "coding", "sampling", "streaming", "online",
       "mechanism", "equilibrium", "cryptographic", "boolean", "circuit",
       "automata", "logic"},
      // Human-Computer Interaction and Pervasive Computing
      {"interface", "usability", "gesture", "haptic", "accessibility",
       "visualization", "dashboard", "annotation", "collaboration",
       "telepresence", "ubiquitous", "context", "aware", "tangible",
       "eyetracking", "crowdwork", "affective", "conversational",
       "dialogue", "notification", "personalization", "ambient"},
  };
}

const std::vector<std::vector<std::string>>& DomainTermsAll() {
  static const auto* terms = BuildDomainTerms();
  return *terms;
}

}  // namespace

const std::vector<std::string>& TopicHierarchy::DomainNames() {
  static const auto* names = BuildDomainNames();
  return *names;
}

const std::vector<std::string>& TopicHierarchy::DomainTerms(
    uint32_t domain_index) {
  return DomainTermsAll()[domain_index];
}

TopicHierarchy::TopicHierarchy(const TopicHierarchyOptions& options) {
  RPG_CHECK(options.areas_per_domain >= 1);
  RPG_CHECK(options.topics_per_area >= 1);
  Rng rng(options.seed);

  Topic root;
  root.id = 0;
  root.level = TopicLevel::kRoot;
  root.phrase = "computer science";
  topics_.push_back(root);

  const auto& names = DomainNames();
  const size_t num_domains = names.size();
  for (uint32_t d = 0; d < num_domains; ++d) {
    Topic domain;
    domain.id = static_cast<TopicId>(topics_.size());
    domain.parent = 0;
    domain.level = TopicLevel::kDomain;
    domain.domain_index = d;
    domain.phrase = names[d];
    topics_[0].children.push_back(domain.id);
    topics_.push_back(domain);
    TopicId domain_id = domain.id;

    const auto& bank = DomainTerms(d);
    // Mint unique two-term phrases for areas and topics of this domain.
    std::set<std::pair<size_t, size_t>> used;
    auto mint_phrase = [&]() {
      for (int attempt = 0; attempt < 1000; ++attempt) {
        size_t a = rng.NextBounded(bank.size());
        size_t b = rng.NextBounded(bank.size());
        if (a == b) continue;
        if (used.insert({a, b}).second) {
          return bank[a] + " " + bank[b];
        }
      }
      RPG_CHECK(false) << "term bank exhausted for domain " << d;
      return std::string();
    };

    for (int a = 0; a < options.areas_per_domain; ++a) {
      Topic area;
      area.id = static_cast<TopicId>(topics_.size());
      area.parent = domain_id;
      area.level = TopicLevel::kArea;
      area.domain_index = d;
      area.phrase = mint_phrase();
      topics_[domain_id].children.push_back(area.id);
      topics_.push_back(area);
      TopicId area_id = area.id;

      for (int t = 0; t < options.topics_per_area; ++t) {
        Topic leaf;
        leaf.id = static_cast<TopicId>(topics_.size());
        leaf.parent = area_id;
        leaf.level = TopicLevel::kTopic;
        leaf.domain_index = d;
        leaf.phrase = mint_phrase();
        topics_[area_id].children.push_back(leaf.id);
        topics_.push_back(leaf);
      }
    }
  }
}

std::vector<TopicId> TopicHierarchy::AtLevel(TopicLevel level) const {
  std::vector<TopicId> out;
  for (const auto& t : topics_) {
    if (t.level == level) out.push_back(t.id);
  }
  return out;
}

TopicId TopicHierarchy::DomainOf(TopicId id) const {
  TopicId cur = id;
  while (cur != kInvalidTopic && topics_[cur].level != TopicLevel::kDomain) {
    if (topics_[cur].level == TopicLevel::kRoot) return kInvalidTopic;
    cur = topics_[cur].parent;
  }
  return cur;
}

TopicId TopicHierarchy::AreaOf(TopicId id) const {
  TopicId cur = id;
  while (cur != kInvalidTopic) {
    if (topics_[cur].level == TopicLevel::kArea) return cur;
    if (topics_[cur].level == TopicLevel::kRoot) return kInvalidTopic;
    cur = topics_[cur].parent;
  }
  return kInvalidTopic;
}

bool TopicHierarchy::IsAncestorOf(TopicId ancestor, TopicId id) const {
  TopicId cur = id;
  while (cur != kInvalidTopic) {
    if (cur == ancestor) return true;
    cur = topics_[cur].parent;
  }
  return false;
}

}  // namespace rpg::synth
