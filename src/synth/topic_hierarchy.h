#ifndef RPG_SYNTH_TOPIC_HIERARCHY_H_
#define RPG_SYNTH_TOPIC_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rpg::synth {

using TopicId = uint32_t;
inline constexpr TopicId kInvalidTopic = UINT32_MAX;

/// Depth in the topic tree. Domains mirror the 10 CCF categories of
/// Table I; areas are survey-able sub-fields whose papers act as
/// *prerequisites* for their child topics; topics are the leaves the bulk
/// of papers (and most surveys) are about.
enum class TopicLevel : uint8_t { kRoot = 0, kDomain = 1, kArea = 2, kTopic = 3 };

/// One node of the topic tree.
struct Topic {
  TopicId id = kInvalidTopic;
  TopicId parent = kInvalidTopic;
  TopicLevel level = TopicLevel::kRoot;
  uint32_t domain_index = 0;   ///< index into DomainNames() (valid below root)
  std::string phrase;          ///< key phrase naming the topic ("neural parsing")
  std::vector<TopicId> children;
};

/// Shape of the generated hierarchy.
struct TopicHierarchyOptions {
  int areas_per_domain = 5;
  int topics_per_area = 5;
  uint64_t seed = 17;
};

/// Fixed topic tree: root -> 10 domains -> areas -> topics. Phrases are
/// drawn from per-domain term banks so that child-topic titles share
/// vocabulary with their domain but NOT with their parent area's phrase —
/// which is exactly why lexical search engines miss prerequisite papers
/// (Observation I of the paper).
class TopicHierarchy {
 public:
  explicit TopicHierarchy(const TopicHierarchyOptions& options = {});

  const Topic& Get(TopicId id) const { return topics_[id]; }
  size_t size() const { return topics_.size(); }
  TopicId root() const { return 0; }

  const std::vector<TopicId>& Domains() const { return topics_[0].children; }

  /// All nodes at the given level.
  std::vector<TopicId> AtLevel(TopicLevel level) const;

  /// Walks up to the domain ancestor (identity for domains).
  TopicId DomainOf(TopicId id) const;

  /// Walks up to the area ancestor; kInvalidTopic for domains/root.
  TopicId AreaOf(TopicId id) const;

  /// True when `ancestor` lies on the parent chain of `id` (inclusive).
  bool IsAncestorOf(TopicId ancestor, TopicId id) const;

  /// The 10 CCF-style domain display names (Table I ordering).
  static const std::vector<std::string>& DomainNames();

  /// The term bank used to mint phrases for one domain (for tests).
  static const std::vector<std::string>& DomainTerms(uint32_t domain_index);

 private:
  std::vector<Topic> topics_;
};

}  // namespace rpg::synth

#endif  // RPG_SYNTH_TOPIC_HIERARCHY_H_
