#include "synth/venue_table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "synth/topic_hierarchy.h"

namespace rpg::synth {

VenueTable::VenueTable(const VenueTableOptions& options) {
  Rng rng(options.seed);
  const size_t num_domains = TopicHierarchy::DomainNames().size();
  by_domain_tier_.assign(num_domains, {{}, {}, {}});
  static const char* kTierTag[] = {"A", "B", "C"};
  for (uint32_t d = 0; d < num_domains; ++d) {
    for (int tier = 1; tier <= 3; ++tier) {
      for (int i = 0; i < options.venues_per_domain_per_tier; ++i) {
        Venue v;
        v.name = StrFormat("VENUE-D%u-%s-%02d", d, kTierTag[tier - 1], i);
        v.domain_index = d;
        v.ccf_tier = tier;
        // Influence correlates with tier but is noisy, like real AMiner
        // scores computed from best-paper citations.
        double base = tier == 1 ? 0.75 : tier == 2 ? 0.45 : 0.2;
        v.aminer_influence =
            std::min(1.0, std::max(0.0, base + rng.Normal(0.0, 0.12)));
        VenueId id = static_cast<VenueId>(venues_.size());
        venues_.push_back(v);
        by_domain_tier_[d][tier - 1].push_back(id);
      }
    }
  }
}

const std::vector<VenueId>& VenueTable::ByDomainTier(uint32_t domain_index,
                                                     int tier) const {
  RPG_CHECK(domain_index < by_domain_tier_.size());
  RPG_CHECK(tier >= 1 && tier <= 3);
  return by_domain_tier_[domain_index][tier - 1];
}

double VenueTable::TierScore(int tier) {
  switch (tier) {
    case 1:
      return 1.0;
    case 2:
      return 0.6;
    default:
      return 0.3;
  }
}

double VenueTable::Score(VenueId id) const {
  if (id == kNoVenue || id >= venues_.size()) return 0.0;
  const Venue& v = venues_[id];
  return 0.5 * (TierScore(v.ccf_tier) + v.aminer_influence);
}

}  // namespace rpg::synth
