#include "synth/corpus.h"

namespace rpg::synth {

int Corpus::SurveyIndexOf(graph::PaperId id) const {
  for (size_t i = 0; i < surveys.size(); ++i) {
    if (surveys[i].paper == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rpg::synth
