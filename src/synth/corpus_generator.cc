#include "synth/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace rpg::synth {

namespace {

using graph::PaperId;

/// Generic academic filler vocabulary for titles/abstracts. All entries
/// must be non-stopwords so they create mild lexical noise for retrieval.
const std::vector<std::string>& FillerWords() {
  static const auto* words = new std::vector<std::string>{
      "efficient", "scalable",  "robust",    "adaptive",  "unified",
      "practical", "empirical", "principled","modular",   "incremental",
      "framework", "model",     "evaluation","benchmark", "architecture",
      "algorithm", "technique", "pipeline",  "paradigm",  "perspective"};
  return *words;
}

/// The role a paper plays in the generator (drives titles and citation
/// mixtures). Matches the level of the paper's topic label.
enum class Role { kDomainClassic, kAreaPrerequisite, kLeafPaper, kSurvey };

struct Proto {
  TopicId topic;
  Role role;
  uint16_t year;
};

/// Title templates per role. Survey templates only add stopwords around
/// the phrase so TopicRank recovers the phrase as the query.
std::string MakeTitle(Rng* rng, const std::string& phrase, Role role,
                      const std::vector<std::string>& domain_terms) {
  const auto& filler = FillerWords();
  auto pick_filler = [&] { return filler[rng->NextBounded(filler.size())]; };
  auto pick_term = [&] {
    return domain_terms[rng->NextBounded(domain_terms.size())];
  };
  if (role == Role::kSurvey) {
    switch (rng->NextBounded(5)) {
      case 0:
        return "a survey on " + phrase;
      case 1:
        return phrase + ": a survey";
      case 2:
        return "a comprehensive survey on " + phrase;
      case 3:
        return "a review of " + phrase;
      default:
        return "recent trends in " + phrase + ": a survey";
    }
  }
  switch (rng->NextBounded(5)) {
    case 0:
      return pick_filler() + " " + phrase;
    case 1:
      return phrase + " with " + pick_term() + " " + pick_filler();
    case 2:
      return "a " + pick_filler() + " " + pick_filler() + " for " + phrase;
    case 3:
      return phrase + ": an " + pick_filler() + " " + pick_filler();
    default:
      return pick_term() + " based " + phrase;
  }
}

std::string MakeAbstract(Rng* rng, const std::string& phrase,
                         const std::string& parent_phrase,
                         const std::vector<std::string>& domain_terms) {
  const auto& filler = FillerWords();
  std::string abs;
  auto append = [&](const std::string& s) {
    if (!abs.empty()) abs.push_back(' ');
    abs += s;
  };
  // The topical phrase dominates, the parent phrase appears once, and a
  // few domain terms + filler words round it out (~30 tokens).
  for (int i = 0; i < 3; ++i) append(phrase);
  if (!parent_phrase.empty()) append(parent_phrase);
  for (int i = 0; i < 6; ++i)
    append(domain_terms[rng->NextBounded(domain_terms.size())]);
  for (int i = 0; i < 8; ++i)
    append(filler[rng->NextBounded(filler.size())]);
  return abs;
}

/// Preferential-attachment pick from a pool: tournament of `rounds` by
/// current in-degree (returns kInvalidPaper on an empty pool). Larger
/// tournaments bias harder toward the highly-cited backbone — surveys
/// select references far more deliberately than regular papers do.
PaperId PickPreferential(Rng* rng, const std::vector<PaperId>& pool,
                         const std::vector<uint32_t>& indeg, int rounds = 3) {
  if (pool.empty()) return graph::kInvalidPaper;
  PaperId best = pool[rng->NextBounded(pool.size())];
  for (int t = 1; t < rounds; ++t) {
    PaperId c = pool[rng->NextBounded(pool.size())];
    if (indeg[c] > indeg[best]) best = c;
  }
  return best;
}

/// Year sampled so density increases toward `hi` (square-law skew).
uint16_t SkewedRecentYear(Rng* rng, int lo, int hi) {
  double u = rng->UniformDouble();
  int span = hi - lo;
  int offset = static_cast<int>(std::floor(span * u * u));
  return static_cast<uint16_t>(hi - offset);
}

/// Year sampled so density decreases toward `hi` (old-skewed classics).
uint16_t SkewedOldYear(Rng* rng, int lo, int hi) {
  double u = rng->UniformDouble();
  int span = hi - lo;
  int offset = static_cast<int>(std::floor(span * u * u));
  return static_cast<uint16_t>(lo + offset);
}

}  // namespace

const std::vector<double>& TableOneDomainWeights() {
  static const auto* weights = new std::vector<double>{
      12.3, 4.7, 4.5, 3.0, 2.9, 2.2, 2.1, 1.7, 1.3, 0.9};
  return *weights;
}

Result<std::unique_ptr<Corpus>> GenerateCorpus(const CorpusOptions& options) {
  if (options.papers_per_topic < 1 || options.num_surveys < 0) {
    return Status::InvalidArgument("corpus options out of range");
  }
  if (options.min_year >= options.max_year) {
    return Status::InvalidArgument("min_year must precede max_year");
  }
  auto corpus = std::make_unique<Corpus>(options.hierarchy, options.venue);
  Rng rng(options.seed);
  const TopicHierarchy& topics = corpus->topics;

  // ---- 1. Proto papers with years ---------------------------------------
  std::vector<Proto> protos;
  const int lo = options.min_year, hi = options.max_year;
  for (TopicId d : topics.AtLevel(TopicLevel::kDomain)) {
    for (int i = 0; i < options.papers_per_domain; ++i) {
      protos.push_back(
          {d, Role::kDomainClassic, SkewedOldYear(&rng, lo, lo + 25)});
    }
  }
  for (TopicId a : topics.AtLevel(TopicLevel::kArea)) {
    for (int i = 0; i < options.papers_per_area; ++i) {
      protos.push_back({a, Role::kAreaPrerequisite,
                        SkewedOldYear(&rng, lo + 5, hi - 6)});
    }
  }
  for (TopicId t : topics.AtLevel(TopicLevel::kTopic)) {
    for (int i = 0; i < options.papers_per_topic; ++i) {
      protos.push_back(
          {t, Role::kLeafPaper, SkewedRecentYear(&rng, lo + 10, hi)});
    }
  }
  // Surveys: domains weighted per Table I; area vs leaf per option.
  {
    const auto& weights = TableOneDomainWeights();
    const auto domains = topics.AtLevel(TopicLevel::kDomain);
    for (int i = 0; i < options.num_surveys; ++i) {
      size_t d_index = rng.WeightedIndex(weights);
      TopicId domain = domains[d_index];
      const auto& areas = topics.Get(domain).children;
      TopicId area = areas[rng.NextBounded(areas.size())];
      TopicId subject;
      if (rng.Bernoulli(options.area_survey_fraction)) {
        subject = area;
      } else {
        const auto& leaves = topics.Get(area).children;
        subject = leaves[rng.NextBounded(leaves.size())];
      }
      protos.push_back({subject, Role::kSurvey,
                        SkewedRecentYear(&rng, std::max(lo, 1995), hi)});
    }
  }

  // Chronological ids: stable sort by year, random tiebreak via pre-shuffle.
  rng.Shuffle(&protos);
  std::stable_sort(protos.begin(), protos.end(),
                   [](const Proto& a, const Proto& b) { return a.year < b.year; });

  // ---- 2. Materialize papers (titles, abstracts, venues) ----------------
  const size_t n = protos.size();
  corpus->papers.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Proto& p = protos[i];
    const Topic& topic = topics.Get(p.topic);
    const auto& terms = TopicHierarchy::DomainTerms(topic.domain_index);
    std::string parent_phrase;
    if (topic.level == TopicLevel::kTopic) {
      parent_phrase = topics.Get(topic.parent).phrase;
    } else if (topic.level == TopicLevel::kArea) {
      parent_phrase.clear();  // area abstracts stay free of leaf phrases
    }
    // Domain-level classics get a fresh two-term phrase from the domain
    // bank (the Table I display name is a category label, not title text).
    std::string phrase = topic.phrase;
    if (topic.level == TopicLevel::kDomain) {
      size_t a = rng.NextBounded(terms.size());
      size_t b = (a + 1 + rng.NextBounded(terms.size() - 1)) % terms.size();
      phrase = terms[a] + " " + terms[b];
    }
    Paper& paper = corpus->papers[i];
    paper.title = MakeTitle(&rng, phrase, p.role, terms);
    paper.abstract_text = MakeAbstract(&rng, phrase, parent_phrase, terms);
    paper.year = p.year;
    paper.topic = p.topic;
    paper.is_survey = p.role == Role::kSurvey;
    if (!rng.Bernoulli(options.missing_venue_fraction)) {
      // Venue tier correlates with role: classics skew A, leaves uniform.
      int tier;
      double u = rng.UniformDouble();
      if (p.role == Role::kDomainClassic) {
        tier = u < 0.6 ? 1 : (u < 0.9 ? 2 : 3);
      } else {
        tier = u < 0.25 ? 1 : (u < 0.6 ? 2 : 3);
      }
      const auto& vs = corpus->venues.ByDomainTier(topic.domain_index, tier);
      paper.venue = vs[rng.NextBounded(vs.size())];
    }
  }

  // ---- 3. Citations (chronological, topic-aware preferential) -----------
  // pool[t] holds the ids of already-published papers labeled with topic t.
  std::vector<std::vector<PaperId>> pool(topics.size());
  // survey_pool[t] holds already-published surveys on topic t; papers cite
  // surveys of their area for background, which is how real surveys
  // accumulate citations (Fig. 4a).
  std::vector<std::vector<PaperId>> survey_pool(topics.size());
  std::vector<PaperId> global_pool;
  std::vector<uint32_t> indeg(n, 0);
  graph::GraphBuilder builder(n);

  // Mixture components; weights depend on the citing paper's role.
  enum Pool {
    kSameTopic,
    kAreaOf,
    kSiblings,
    kDomainClassics,
    kChildren,
    kGlobal,
    kNearbySurveys
  };

  auto sample_from = [&](Pool which, TopicId topic_id, int rounds) -> PaperId {
    const Topic& topic = topics.Get(topic_id);
    switch (which) {
      case kSameTopic:
        return PickPreferential(&rng, pool[topic_id], indeg, rounds);
      case kAreaOf: {
        TopicId area = topics.AreaOf(topic_id);
        if (area == kInvalidTopic) return graph::kInvalidPaper;
        return PickPreferential(&rng, pool[area], indeg, rounds);
      }
      case kSiblings: {
        if (topic.parent == kInvalidTopic) return graph::kInvalidPaper;
        const auto& sibs = topics.Get(topic.parent).children;
        TopicId sib = sibs[rng.NextBounded(sibs.size())];
        if (sib == topic_id) return graph::kInvalidPaper;
        return PickPreferential(&rng, pool[sib], indeg, rounds);
      }
      case kDomainClassics: {
        TopicId domain = topics.DomainOf(topic_id);
        if (domain == kInvalidTopic) return graph::kInvalidPaper;
        return PickPreferential(&rng, pool[domain], indeg, rounds);
      }
      case kChildren: {
        if (topic.children.empty()) return graph::kInvalidPaper;
        TopicId child = topic.children[rng.NextBounded(topic.children.size())];
        return PickPreferential(&rng, pool[child], indeg, rounds);
      }
      case kGlobal:
        return PickPreferential(&rng, global_pool, indeg, rounds);
      case kNearbySurveys: {
        // A survey on the paper's own topic or its area.
        TopicId area = topics.AreaOf(topic_id);
        const auto& own = survey_pool[topic_id];
        const auto& parent =
            area == kInvalidTopic ? own : survey_pool[area];
        if (own.empty() && parent.empty()) return graph::kInvalidPaper;
        const auto& chosen =
            own.empty() ? parent
                        : (parent.empty() || rng.Bernoulli(0.6) ? own
                                                                : parent);
        return PickPreferential(&rng, chosen, indeg, rounds);
      }
    }
    return graph::kInvalidPaper;
  };

  auto sample_refs = [&](PaperId citer, const std::vector<Pool>& pools,
                         const std::vector<double>& weights, size_t count,
                         int rounds, std::vector<PaperId>* out) {
    TopicId topic_id = corpus->papers[citer].topic;
    std::unordered_set<PaperId> seen;
    size_t attempts = 0;
    while (out->size() < count && attempts < count * 12) {
      ++attempts;
      Pool which = pools[rng.WeightedIndex(weights)];
      PaperId target = sample_from(which, topic_id, rounds);
      if (target == graph::kInvalidPaper || target == citer) continue;
      if (!seen.insert(target).second) continue;
      out->push_back(target);
    }
  };

  const std::vector<Pool> kLeafPools = {kSameTopic, kAreaOf,  kSiblings,
                                        kDomainClassics, kGlobal, kNearbySurveys};
  const std::vector<double> kLeafWeights = {0.42, 0.19, 0.10, 0.10, 0.14, 0.05};
  const std::vector<Pool> kAreaPools = {kSameTopic, kDomainClassics, kGlobal};
  const std::vector<double> kAreaWeights = {0.40, 0.35, 0.25};
  const std::vector<Pool> kClassicPools = {kSameTopic, kGlobal};
  const std::vector<double> kClassicWeights = {0.6, 0.4};
  const std::vector<Pool> kLeafSurveyPools = {kSameTopic, kAreaOf, kSiblings,
                                              kDomainClassics, kGlobal};
  const std::vector<double> kLeafSurveyWeights = {0.40, 0.18, 0.18, 0.10, 0.14};
  const std::vector<Pool> kAreaSurveyPools = {kSameTopic, kChildren,
                                              kDomainClassics, kGlobal};
  const std::vector<double> kAreaSurveyWeights = {0.35, 0.35, 0.15, 0.15};

  for (PaperId id = 0; id < n; ++id) {
    const Proto& p = protos[id];
    std::vector<PaperId> refs;
    if (p.role == Role::kSurvey) {
      size_t want = std::clamp<size_t>(rng.Poisson(options.survey_refs_mean),
                                       20, 250);
      bool is_area = topics.Get(p.topic).level == TopicLevel::kArea;
      sample_refs(id, is_area ? kAreaSurveyPools : kLeafSurveyPools,
                  is_area ? kAreaSurveyWeights : kLeafSurveyWeights, want,
                  /*rounds=*/8, &refs);
      // Occurrence counts: topical, highly-cited references are mentioned
      // multiple times in the survey body; incidental ones only once.
      SurveyRecord record;
      record.paper = id;
      record.topic = p.topic;
      for (PaperId r : refs) {
        bool same_topic = corpus->papers[r].topic == p.topic ||
                          topics.IsAncestorOf(corpus->papers[r].topic, p.topic);
        double boost = 0.08 * std::log1p(static_cast<double>(indeg[r])) +
                       (same_topic ? 0.12 : 0.0);
        double p_again = std::clamp(0.30 + boost, 0.05, 0.80);
        uint32_t occ = 1;
        while (occ < 8 && rng.Bernoulli(p_again)) ++occ;
        record.references.push_back(r);
        record.occurrence.push_back(occ);
      }
      corpus->surveys.push_back(std::move(record));
    } else {
      size_t want = std::clamp<size_t>(rng.Poisson(options.regular_refs_mean),
                                       3, 120);
      switch (p.role) {
        case Role::kLeafPaper:
          sample_refs(id, kLeafPools, kLeafWeights, want, /*rounds=*/3, &refs);
          break;
        case Role::kAreaPrerequisite:
          sample_refs(id, kAreaPools, kAreaWeights, want, /*rounds=*/3, &refs);
          break;
        case Role::kDomainClassic:
          sample_refs(id, kClassicPools, kClassicWeights, want, /*rounds=*/3, &refs);
          break;
        case Role::kSurvey:
          break;
      }
    }
    for (PaperId r : refs) {
      builder.AddCitation(id, r);
      ++indeg[r];
    }
    if (p.role == Role::kSurvey) {
      survey_pool[p.topic].push_back(id);
    } else {
      pool[p.topic].push_back(id);
    }
    global_pool.push_back(id);
  }

  RPG_ASSIGN_OR_RETURN(corpus->citations, builder.Build());
  return corpus;
}

CorpusOptions ScaledCorpusOptions(uint64_t target_papers, uint64_t seed) {
  CorpusOptions o;
  o.seed = seed;
  // Widen the tree as sqrt(target): leaf count L = 10 * A * T grows
  // linearly with target while per-leaf population stays roughly flat,
  // which keeps topic-local citation structure (and engine recall
  // behavior) scale-invariant.
  const double t = static_cast<double>(target_papers);
  const int fan = static_cast<int>(
      std::clamp(std::ceil(std::sqrt(t / 2000.0)), 2.0, 100.0));
  o.hierarchy.areas_per_domain = fan;
  o.hierarchy.topics_per_area = fan;
  const uint64_t leaves = 10ull * fan * fan;

  const double per_leaf = 0.75 * t / static_cast<double>(leaves);
  o.papers_per_area = std::max(5, static_cast<int>(0.3 * per_leaf));
  o.papers_per_domain = std::max(10, static_cast<int>(0.25 * per_leaf));
  o.num_surveys =
      std::max<int>(100, static_cast<int>(target_papers / 100));

  const uint64_t fixed = static_cast<uint64_t>(o.num_surveys) +
                         10ull * o.papers_per_domain +
                         10ull * fan * o.papers_per_area;
  const uint64_t remaining = target_papers > fixed ? target_papers - fixed : 0;
  o.papers_per_topic =
      std::max<int>(1, static_cast<int>(remaining / leaves));
  return o;
}

}  // namespace rpg::synth
