#ifndef RPG_COMMON_STRING_UTIL_H_
#define RPG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rpg {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True when `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with the given number of decimals (e.g. 0.2343 -> "0.2343"
/// with decimals = 4).
std::string FormatDouble(double v, int decimals);

/// Formats an integer with thousands separators ("9,321").
std::string FormatWithCommas(int64_t v);

}  // namespace rpg

#endif  // RPG_COMMON_STRING_UTIL_H_
