#ifndef RPG_COMMON_DARY_HEAP_H_
#define RPG_COMMON_DARY_HEAP_H_

/// \file
/// Cache-friendly d-ary min-heap (default d = 4) for the Dijkstra /
/// Prim / Takahashi–Matsuyama inner loops (ROADMAP item 4).
///
/// Versus the binary std::priority_queue the solvers used before:
/// a 4-ary layout halves the tree depth, so the push path (sift-up)
/// does half the compares, and the four children of node i are the
/// contiguous cells 4i+1..4i+4 — one cache line for 8-byte entries —
/// which turns the pop path's child scan into sequential reads. For
/// heaps where pushes outnumber pops (lazy-deletion Dijkstra pushes a
/// stale entry per improvement), that trade wins.
///
/// Semantics note for the differential suites: like std::priority_queue
/// with std::greater<>, Pop() always removes a *minimum* element under
/// Less. The solvers' entries are (dist, node) pairs compared
/// lexicographically — a total order with no indistinguishable distinct
/// entries — so the sequence of popped values is identical to the
/// binary heap's, and every Dijkstra dist/parent array (hence every
/// Steiner tree and RePagerResult) is bit-identical before and after
/// the swap. tests/common/dary_heap_test.cc pins both the oracle
/// pop-order equivalence and the Dijkstra differential; the golden
/// fingerprints in tests/steiner/ and tests/core/ pin the end-to-end
/// claim.
///
/// clear() keeps the allocated buffer, so a heap owned by a scratch
/// object (or reused across the phases of one solve) is allocation-free
/// after warm-up.

#include <cstddef>
#include <utility>
#include <vector>

namespace rpg {

template <typename T, unsigned kArity = 4, typename Less = std::less<T>>
class DaryHeap {
  static_assert(kArity >= 2, "a heap needs at least two children per node");

 public:
  DaryHeap() = default;

  bool empty() const { return h_.empty(); }
  size_t size() const { return h_.size(); }
  void reserve(size_t n) { h_.reserve(n); }
  void clear() { h_.clear(); }

  /// Minimum element under Less.
  const T& top() const { return h_.front(); }

  void push(const T& v) {
    h_.push_back(v);
    SiftUp(h_.size() - 1);
  }

  template <typename... Args>
  void emplace(Args&&... args) {
    h_.emplace_back(std::forward<Args>(args)...);
    SiftUp(h_.size() - 1);
  }

  void pop() {
    if (h_.size() > 1) {
      h_.front() = std::move(h_.back());
      h_.pop_back();
      SiftDown(0);
    } else {
      h_.pop_back();
    }
  }

 private:
  void SiftUp(size_t i) {
    T v = std::move(h_[i]);
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!less_(v, h_[parent])) break;
      h_[i] = std::move(h_[parent]);
      i = parent;
    }
    h_[i] = std::move(v);
  }

  void SiftDown(size_t i) {
    const size_t n = h_.size();
    T v = std::move(h_[i]);
    for (;;) {
      size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t last = std::min(first + kArity, n);
      size_t best = first;
      for (size_t c = first + 1; c < last; ++c) {
        if (less_(h_[c], h_[best])) best = c;
      }
      if (!less_(h_[best], v)) break;
      h_[i] = std::move(h_[best]);
      i = best;
    }
    h_[i] = std::move(v);
  }

  std::vector<T> h_;
  [[no_unique_address]] Less less_;
};

}  // namespace rpg

#endif  // RPG_COMMON_DARY_HEAP_H_
