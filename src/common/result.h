#ifndef RPG_COMMON_RESULT_H_
#define RPG_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace rpg {

/// Result<T> holds either a value of type T or a non-OK Status, in the
/// style of arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, so functions can
  /// `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, so functions can
  /// `return Status::...`). `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK if this holds a value, otherwise the error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace rpg

/// Evaluates an expression producing Result<T>; on error propagates the
/// status, otherwise assigns the value to `lhs`.
#define RPG_ASSIGN_OR_RETURN(lhs, expr)                  \
  RPG_ASSIGN_OR_RETURN_IMPL(                             \
      RPG_CONCAT_NAME(_rpg_result_, __LINE__), lhs, expr)

#define RPG_CONCAT_NAME_INNER(x, y) x##y
#define RPG_CONCAT_NAME(x, y) RPG_CONCAT_NAME_INNER(x, y)
#define RPG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#endif  // RPG_COMMON_RESULT_H_
