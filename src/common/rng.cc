#include "common/rng.h"

#include <cmath>

namespace rpg {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  if (n == 0) return 0;
  // Lemire's unbiased bounded generation with rejection.
  uint64_t threshold = (~n + 1) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * scale;
  has_spare_normal_ = true;
  return mean + stddev * u * scale;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 1;
  // Inverse-CDF on the continuous approximation of the Zipf CDF
  // (integral of x^-s), then clamp; accurate enough for workload shaping.
  double u = UniformDouble();
  if (s == 1.0) {
    double h = std::log(static_cast<double>(n) + 1.0);
    double x = std::exp(u * h);
    uint64_t r = static_cast<uint64_t>(x);
    return r < 1 ? 1 : (r > n ? n : r);
  }
  double one_minus_s = 1.0 - s;
  double hmax = (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0) /
                one_minus_s;
  double x = std::pow(u * hmax * one_minus_s + 1.0, 1.0 / one_minus_s);
  uint64_t r = static_cast<uint64_t>(x);
  return r < 1 ? 1 : (r > n ? n : r);
}

uint64_t Rng::Geometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;
  double u = UniformDouble();
  if (u == 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::log(u) / std::log(1.0 - p));
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    double v = Normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
  }
  double limit = std::exp(-mean);
  double prod = UniformDouble();
  uint64_t k = 0;
  while (prod > limit) {
    prod *= UniformDouble();
    ++k;
  }
  return k;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  if (k > n) k = n;
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 8 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + NextBounded(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling into a sorted probe vector.
  std::vector<uint64_t> seen;
  seen.reserve(k);
  while (out.size() < k) {
    uint64_t c = NextBounded(n);
    bool dup = false;
    for (uint64_t s : seen) {
      if (s == c) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.push_back(c);
      out.push_back(c);
    }
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0.0) return 0;
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0 ? weights[i] : 0;
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace rpg
