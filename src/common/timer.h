#ifndef RPG_COMMON_TIMER_H_
#define RPG_COMMON_TIMER_H_

#include <chrono>

namespace rpg {

/// Monotonic stopwatch used by the runtime experiments (Table IV).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rpg

#endif  // RPG_COMMON_TIMER_H_
