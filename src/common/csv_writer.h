#ifndef RPG_COMMON_CSV_WRITER_H_
#define RPG_COMMON_CSV_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

namespace rpg {

/// Minimal RFC-4180 CSV emitter used by benches to dump per-series data
/// (so figure series can be re-plotted outside the repo).
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream* os) : os_(os) {}

  /// Writes one row, quoting fields containing separators/quotes/newlines.
  void WriteRow(const std::vector<std::string>& fields);

  /// Quotes a single field per RFC 4180 when needed.
  static std::string EscapeField(const std::string& field);

 private:
  std::ostream* os_;
};

/// Parses a CSV line into fields (handles quoted fields with embedded
/// commas and doubled quotes). Returns InvalidArgument on unterminated
/// quotes.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

}  // namespace rpg

#endif  // RPG_COMMON_CSV_WRITER_H_
