#ifndef RPG_COMMON_TABLE_PRINTER_H_
#define RPG_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace rpg {

/// Renders aligned plain-text tables; used by the benchmark binaries so
/// their stdout mirrors the paper's tables row-for-row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `decimals` places.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int decimals);

  size_t num_rows() const { return rows_.size(); }

  /// Writes the table with a header separator line.
  void Print(std::ostream& os) const;

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rpg

#endif  // RPG_COMMON_TABLE_PRINTER_H_
