#include "common/histogram.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace rpg {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  RPG_CHECK(edges_.size() >= 2) << "histogram needs at least one bucket";
  for (size_t i = 1; i < edges_.size(); ++i) {
    RPG_CHECK(edges_[i] > edges_[i - 1]) << "edges must be increasing";
  }
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::Add(double value) { AddCount(value, 1); }

void Histogram::AddCount(double value, uint64_t count) {
  sum_ += value * static_cast<double>(count);
  n_ += count;
  if (value < edges_.front()) {
    underflow_ += count;
    return;
  }
  if (value >= edges_.back()) {
    overflow_ += count;
    return;
  }
  // Linear scan: bucket counts are small (Fig. 4 uses < 10 buckets).
  for (size_t i = 0; i + 1 < edges_.size(); ++i) {
    if (value < edges_[i + 1]) {
      counts_[i] += count;
      return;
    }
  }
}

uint64_t Histogram::total() const {
  uint64_t t = underflow_ + overflow_;
  for (uint64_t c : counts_) t += c;
  return t;
}

std::string Histogram::BucketLabel(size_t i) const {
  auto fmt = [](double v) {
    if (v == std::floor(v)) {
      return std::to_string(static_cast<int64_t>(v));
    }
    return FormatDouble(v, 2);
  };
  return fmt(edges_[i]) + "-" + fmt(edges_[i + 1]);
}

double Histogram::BucketFraction(size_t i) const {
  uint64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(t);
}

double Histogram::mean() const {
  if (n_ == 0) return 0.0;
  return sum_ / static_cast<double>(n_);
}

double Histogram::Quantile(double q) const {
  uint64_t t = total();
  if (t == 0) return 0.0;
  // One observation: every quantile IS that observation. (n_ counts
  // Add calls; with a single call the exact value survives in sum_,
  // so return it instead of smearing it across its bucket.)
  if (t == 1 && n_ == 1) return sum_;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(t);
  double seen = static_cast<double>(underflow_);
  if (rank <= seen) return edges_.front();
  for (size_t i = 0; i < counts_.size(); ++i) {
    double c = static_cast<double>(counts_[i]);
    if (rank <= seen + c && c > 0) {
      double frac = (rank - seen) / c;
      return edges_[i] + frac * (edges_[i + 1] - edges_[i]);
    }
    seen += c;
  }
  return edges_.back();
}

}  // namespace rpg
