#ifndef RPG_COMMON_RNG_H_
#define RPG_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rpg {

/// Deterministic pseudo-random generator (xoshiro256**). Every randomized
/// component in the library takes an explicit seed so experiments are
/// reproducible run-to-run; std::mt19937 distributions are avoided because
/// their outputs differ across standard library implementations.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so any 64-bit seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic, caches the spare).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed rank in [1, n] with exponent s > 0 (rejection-free
  /// inverse-CDF over a precomputation-free harmonic approximation).
  uint64_t Zipf(uint64_t n, double s);

  /// Geometric number of failures before first success, p in (0, 1].
  uint64_t Geometric(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Samples k distinct indices from [0, n) via partial Fisher-Yates.
  /// Returns fewer than k when k > n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (uint64_t i = v->size() - 1; i > 0; --i) {
      uint64_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks an index with probability proportional to weights[i]. Weights
  /// must be non-negative with a positive sum; otherwise returns 0.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace rpg

#endif  // RPG_COMMON_RNG_H_
