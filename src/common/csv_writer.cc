#include "common/csv_writer.h"

namespace rpg {

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *os_ << ',';
    *os_ << EscapeField(fields[i]);
  }
  *os_ << '\n';
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && current.empty()) {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line");
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace rpg
