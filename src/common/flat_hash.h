#ifndef RPG_COMMON_FLAT_HASH_H_
#define RPG_COMMON_FLAT_HASH_H_

/// \file
/// Insert-only open-addressing hash containers for the per-query hot
/// path (ROADMAP item 4). The std::unordered_* containers the pipeline
/// scratch used before are node-based: every insert allocates, every
/// probe chases a pointer, and clear() frees the nodes — exactly the
/// behavior a reusable QueryScratch exists to avoid.
///
/// FlatSet/FlatMap instead keep a dense `items` vector (the elements, in
/// insertion order) plus a power-of-two slot table of uint32 indices
/// into it, linear probing, ~0.7 max load. Properties the pipeline
/// relies on:
///  - insert-only: no erase (the scratch never removes individual keys);
///  - clear() keeps capacity, so a warm scratch inserts allocation-free;
///  - iteration walks the dense items vector in INSERTION order —
///    deterministic, unlike unordered_* bucket order, so swapping these
///    in cannot perturb any downstream order. (The pipeline only ever
///    feeds iterated elements into commutative integer sums or re-sorts
///    them with total-order comparators, so the unordered_*→Flat* swap
///    is bit-identical anyway; the golden-fingerprint suites pin that.)
///  - keys are integers (PaperId, packed uint64 pairs); the hash is a
///    fixed multiplicative mix, NOT randomized per process, which is
///    what makes serve-path behavior reproducible run-to-run.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rpg {

namespace flat_internal {

/// splitmix64 finalizer: enough avalanche that sequential ids do not
/// cluster probe chains, and fixed (not seeded) for reproducibility.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

}  // namespace flat_internal

/// Open-addressing hash set over an integral key. See file comment for
/// the contract (insert-only, capacity-keeping clear, insertion-order
/// iteration).
template <typename K>
class FlatSet {
 public:
  FlatSet() = default;

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Drops all elements but keeps both buffers' capacity.
  void clear() {
    items_.clear();
    std::fill(slots_.begin(), slots_.end(), flat_internal::kEmptySlot);
  }

  void reserve(size_t n) {
    items_.reserve(n);
    GrowSlots(n);
  }

  /// Returns true iff the key was newly inserted.
  bool insert(K key) {
    MaybeGrow();
    size_t s = ProbeFor(key);
    if (slots_[s] != flat_internal::kEmptySlot) return false;
    slots_[s] = static_cast<uint32_t>(items_.size());
    items_.push_back(key);
    return true;
  }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  bool contains(K key) const {
    if (slots_.empty()) return false;
    return slots_[ProbeFor(key)] != flat_internal::kEmptySlot;
  }

  /// Insertion-order iteration over the dense element vector.
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  size_t ProbeFor(K key) const {
    const size_t mask = slots_.size() - 1;
    size_t s = flat_internal::Mix(static_cast<uint64_t>(key)) & mask;
    while (slots_[s] != flat_internal::kEmptySlot && items_[slots_[s]] != key) {
      s = (s + 1) & mask;
    }
    return s;
  }

  void MaybeGrow() {
    // Max load 0.7: grow when (size + 1) / slots > 0.7.
    if (slots_.empty() || (items_.size() + 1) * 10 > slots_.size() * 7) {
      GrowSlots(items_.size() + 1);
    }
  }

  void GrowSlots(size_t want_items) {
    size_t want_slots = 16;
    while (want_slots * 7 < want_items * 10) want_slots <<= 1;
    if (want_slots <= slots_.size()) return;
    slots_.assign(want_slots, flat_internal::kEmptySlot);
    const size_t mask = slots_.size() - 1;
    for (size_t idx = 0; idx < items_.size(); ++idx) {
      size_t s = flat_internal::Mix(static_cast<uint64_t>(items_[idx])) & mask;
      while (slots_[s] != flat_internal::kEmptySlot) s = (s + 1) & mask;
      slots_[s] = static_cast<uint32_t>(idx);
    }
  }

  std::vector<K> items_;
  std::vector<uint32_t> slots_;
};

/// Open-addressing hash map over an integral key. Same contract as
/// FlatSet; values live inline in the dense items vector.
template <typename K, typename V>
class FlatMap {
 public:
  FlatMap() = default;

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void clear() {
    items_.clear();
    std::fill(slots_.begin(), slots_.end(), flat_internal::kEmptySlot);
  }

  void reserve(size_t n) {
    items_.reserve(n);
    GrowSlots(n);
  }

  /// unordered_map-style value access: default-constructs on first use.
  V& operator[](K key) {
    MaybeGrow();
    size_t s = ProbeFor(key);
    if (slots_[s] == flat_internal::kEmptySlot) {
      slots_[s] = static_cast<uint32_t>(items_.size());
      items_.emplace_back(key, V{});
    }
    return items_[slots_[s]].second;
  }

  /// Pointer to the value, or nullptr when absent (flat stand-in for
  /// find() != end()).
  const V* Find(K key) const {
    if (slots_.empty()) return nullptr;
    size_t s = ProbeFor(key);
    if (slots_[s] == flat_internal::kEmptySlot) return nullptr;
    return &items_[slots_[s]].second;
  }

  bool contains(K key) const { return Find(key) != nullptr; }

  /// Insertion-order iteration over (key, value) pairs.
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  size_t ProbeFor(K key) const {
    const size_t mask = slots_.size() - 1;
    size_t s = flat_internal::Mix(static_cast<uint64_t>(key)) & mask;
    while (slots_[s] != flat_internal::kEmptySlot &&
           items_[slots_[s]].first != key) {
      s = (s + 1) & mask;
    }
    return s;
  }

  void MaybeGrow() {
    if (slots_.empty() || (items_.size() + 1) * 10 > slots_.size() * 7) {
      GrowSlots(items_.size() + 1);
    }
  }

  void GrowSlots(size_t want_items) {
    size_t want_slots = 16;
    while (want_slots * 7 < want_items * 10) want_slots <<= 1;
    if (want_slots <= slots_.size()) return;
    slots_.assign(want_slots, flat_internal::kEmptySlot);
    const size_t mask = slots_.size() - 1;
    for (size_t idx = 0; idx < items_.size(); ++idx) {
      size_t s =
          flat_internal::Mix(static_cast<uint64_t>(items_[idx].first)) & mask;
      while (slots_[s] != flat_internal::kEmptySlot) s = (s + 1) & mask;
      slots_[s] = static_cast<uint32_t>(idx);
    }
  }

  std::vector<std::pair<K, V>> items_;
  std::vector<uint32_t> slots_;
};

}  // namespace rpg

#endif  // RPG_COMMON_FLAT_HASH_H_
