#ifndef RPG_COMMON_JSON_WRITER_H_
#define RPG_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rpg {

/// Streaming JSON emitter (objects/arrays/scalars) used to export reading
/// paths and dataset records. Produces compact, valid JSON; no DOM.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits `"key":` inside an object; must be followed by a value.
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices a pre-serialized JSON value in value position (comma
  /// handling applies; the caller guarantees `json` is valid JSON).
  /// Lets composed documents embed sub-documents — e.g. /api/stats
  /// embedding serve::MetricsRegistry::ToJson().
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string Escape(const std::string& s);

 private:
  void MaybeComma();

  std::string out_;
  // Tracks whether a value was already emitted at each nesting level so
  // commas are inserted correctly.
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

}  // namespace rpg

#endif  // RPG_COMMON_JSON_WRITER_H_
