#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace rpg {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_.back()) out_.push_back(',');
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (need_comma_.back()) out_.push_back(',');
  need_comma_.back() = true;
  out_.push_back('"');
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  if (std::isnan(value) || std::isinf(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  MaybeComma();
  out_ += json;
  return *this;
}

}  // namespace rpg
