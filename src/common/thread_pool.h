#ifndef RPG_COMMON_THREAD_POOL_H_
#define RPG_COMMON_THREAD_POOL_H_

/// \file
/// Fixed-size worker pool over a single FIFO task queue.
///
/// Ownership / thread-safety model:
///  - The pool owns its `std::thread` workers; the destructor (or an
///    explicit Shutdown()) drains every task already submitted, then
///    joins. Tasks never outlive the pool.
///  - Submit() is safe to call from any thread, including from inside a
///    running task — even while a Shutdown() is draining, in which case
///    the still-running worker guarantees the new task executes.
///    Submitting from a NON-worker thread after Shutdown() has begun is
///    a programmer error (RPG_CHECK): the workers may already be gone
///    and the task could never run.
///  - Tasks run exactly once, in FIFO order per queue pop; with more than
///    one worker, completion order is unspecified.
///  - Exceptions thrown by a task are captured into the returned
///    std::future and rethrown from future::get() — they never escape a
///    worker thread.
///
/// This is the execution substrate of core::BatchEngine (one worker =
/// one reusable core::QueryScratch); kept deliberately minimal — no
/// priorities, no work stealing — because RePaGer batch queries are
/// coarse-grained and embarrassingly parallel.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rpg {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1). Workers idle on a
  /// condition variable until tasks arrive.
  explicit ThreadPool(size_t num_threads);

  /// Equivalent to Shutdown(): drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. The future's
  /// get() rethrows any exception the task threw.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Stops accepting new tasks, runs everything already queued, joins the
  /// workers. Idempotent; called by the destructor.
  void Shutdown();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();
  bool OnWorkerThread() const;

  std::vector<std::thread> workers_;
  // Immutable after construction; lets Enqueue accept worker-thread
  // submits even mid-Shutdown (the submitting worker is alive and will
  // drain them), while rejecting external submits that could be dropped.
  std::vector<std::thread::id> worker_ids_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace rpg

#endif  // RPG_COMMON_THREAD_POOL_H_
