#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#if defined(__linux__)
#include <sys/syscall.h>
#else
#include <functional>
#include <thread>
#endif

namespace rpg {

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

LogLevel InitialLogLevel() {
  const char* env = std::getenv("RPG_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

/// Function-local static so the env var is read exactly once, on first
/// use, thread-safely (magic static) — including uses during static
/// initialization of other TUs.
std::atomic<int>& LogLevelVar() {
  static std::atomic<int> level{static_cast<int>(InitialLogLevel())};
  return level;
}

/// Cached kernel thread id (one syscall per thread, ever).
long CurrentThreadId() {
#if defined(__linux__)
  static thread_local const long tid =
      static_cast<long>(::syscall(SYS_gettid));
  return tid;
#else
  static thread_local const long tid = [] {
    return static_cast<long>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffff);
  }();
  return tid;
#endif
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LogLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      LogLevelVar().load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& s, LogLevel* out) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
  }
  if (lower == "debug" || lower == "d" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "i" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "w" ||
             lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "e" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm utc;
  gmtime_r(&ts.tv_sec, &utc);
  char buf[96];
  int n = std::snprintf(
      buf, sizeof(buf),
      "[%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ tid=%ld %s %s:%d] ",
      utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
      utc.tm_min, utc.tm_sec, ts.tv_nsec / 1000000, CurrentThreadId(),
      LevelTag(level), base, line);
  if (n < 0) return "[] ";
  return std::string(buf, static_cast<size_t>(n) < sizeof(buf)
                              ? static_cast<size_t>(n)
                              : sizeof(buf) - 1);
}

void WriteLogLine(std::string line) {
  line.push_back('\n');
  // One write(2) per message keeps concurrent lines whole; the retry
  // loop only continues after EINTR or a short write (pipes under
  // pressure), never interleaving with another thread's full-line write
  // in the common case of a line shorter than PIPE_BUF.
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr gone; nothing sane to do
    }
    off += static_cast<size_t>(n);
  }
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetLogLevel())),
      level_(level) {
  if (enabled_) stream_ << FormatLogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (enabled_) WriteLogLine(stream_.str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  WriteLogLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace rpg
