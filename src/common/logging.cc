#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rpg {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal
}  // namespace rpg
