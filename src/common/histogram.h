#ifndef RPG_COMMON_HISTOGRAM_H_
#define RPG_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rpg {

/// Fixed-bucket histogram over arbitrary (possibly unequal) bucket edges.
/// Used for the SurveyBank distribution figures (Fig. 4), whose x-axes use
/// irregular ranges such as 0-5, 5-10, 10-100, 100-500, ..., and for the
/// serving-layer latency metrics (serve::MetricsRegistry), which need the
/// Quantile() estimate below.
class Histogram {
 public:
  /// `edges` are the bucket boundaries; bucket i covers [edges[i],
  /// edges[i+1]). Values below the first edge or at/above the last are
  /// counted in underflow/overflow. Requires strictly increasing edges
  /// with at least two entries.
  explicit Histogram(std::vector<double> edges);

  void Add(double value);
  void AddCount(double value, uint64_t count);

  size_t num_buckets() const { return edges_.size() - 1; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Lower/upper edge of bucket i (bucket i covers [lower, upper)).
  double bucket_lower_edge(size_t i) const { return edges_[i]; }
  double bucket_upper_edge(size_t i) const { return edges_[i + 1]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const;

  /// "lo-hi" label for bucket i (integral edges render without decimals).
  std::string BucketLabel(size_t i) const;

  /// Fraction of total mass in bucket i (0 when empty).
  double BucketFraction(size_t i) const;

  double mean() const;

  /// Sum of all observed values (exact, not bucket-approximated) — the
  /// `_sum` series of the Prometheus exposition.
  double sum() const { return sum_; }

  /// Estimated q-quantile (q in [0, 1]) assuming mass is uniform within
  /// each bucket (linear interpolation between the bucket edges).
  /// Underflow mass is treated as sitting at the first edge and overflow
  /// mass at the last, so extreme quantiles stay finite but are clamped —
  /// size the edges so the tail you care about is inside them. Edge
  /// cases are pinned by tests/serve/metrics_test.cc: an empty histogram
  /// returns 0 for every q, and a single-observation histogram returns
  /// that observation exactly (no within-bucket interpolation).
  double Quantile(double q) const;

 private:
  std::vector<double> edges_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  double sum_ = 0.0;
  uint64_t n_ = 0;
};

}  // namespace rpg

#endif  // RPG_COMMON_HISTOGRAM_H_
