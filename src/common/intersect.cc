#include "common/intersect.h"

#include <algorithm>

namespace rpg::intersect {

size_t CountCommonMerge(std::span<const uint32_t> a,
                        std::span<const uint32_t> b, size_t cap) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size() && count < cap) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

namespace {

/// First index k in [lo, n) with v[k] >= x: exponential probe from lo,
/// then binary search inside the bracketed window. O(log(k - lo)).
size_t GallopLowerBound(std::span<const uint32_t> v, size_t lo, uint32_t x) {
  size_t n = v.size();
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && v[hi] < x) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, n);
  // Invariant: v[lo - 1] < x (or lo == original lo), v[hi] >= x or hi == n.
  return static_cast<size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, x) - v.begin());
}

}  // namespace

size_t CountCommonGallop(std::span<const uint32_t> small,
                         std::span<const uint32_t> large, size_t cap) {
  size_t count = 0;
  size_t base = 0;  // monotone cursor into `large`
  for (size_t i = 0; i < small.size() && count < cap; ++i) {
    uint32_t x = small[i];
    base = GallopLowerBound(large, base, x);
    if (base == large.size()) break;
    if (large[base] == x) {
      ++count;
      ++base;
    }
  }
  return count;
}

size_t CountCommonBlocked(std::span<const uint32_t> a,
                          std::span<const uint32_t> b, size_t cap) {
  if (cap == 0) return 0;
  const size_t na = a.size(), nb = b.size();
  size_t count = 0;
  size_t i = 0, j = 0;
  // Each step advances each cursor by at most 1, so when both cursors
  // are >= kBlockSize from their ends a whole block runs with NO bounds
  // checks — the inner loop is just compare/add, cmov-friendly. The cap
  // is re-checked once per block; count can overshoot cap inside a
  // block and the clamps restore the exact min(|a∩b|, cap) contract.
  while (i + kBlockSize <= na && j + kBlockSize <= nb) {
    for (size_t step = 0; step < kBlockSize; ++step) {
      uint32_t x = a[i], y = b[j];
      count += (x == y);
      i += (x <= y);
      j += (y <= x);
    }
    if (count >= cap) return cap;
  }
  // Tail (and short inputs): plain capped merge over what remains.
  while (i < na && j < nb && count < cap) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::min(count, cap);
}

size_t CountCommon(std::span<const uint32_t> a, std::span<const uint32_t> b,
                   size_t cap) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty() || cap == 0) return 0;
  if (b.size() / a.size() >= kGallopRatio) {
    return CountCommonGallop(a, b, cap);
  }
  return CountCommonBlocked(a, b, cap);
}

void NeighborBitmap::EnsureUniverse(size_t n) {
  size_t words = (n + 63) / 64;
  if (words > words_.size()) words_.resize(words, 0);
}

void NeighborBitmap::Stamp(std::span<const uint32_t> list) {
  for (uint32_t v : list) words_[v >> 6] |= uint64_t{1} << (v & 63);
}

void NeighborBitmap::Unstamp(std::span<const uint32_t> list) {
  for (uint32_t v : list) words_[v >> 6] &= ~(uint64_t{1} << (v & 63));
}

void NeighborBitmap::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

size_t NeighborBitmap::CountCommon(std::span<const uint32_t> probe,
                                   size_t cap) const {
  if (cap == 0) return 0;
  size_t count = 0;
  size_t i = 0;
  const size_t n = probe.size();
  while (i < n) {
    // Same blocked shape as CountCommonBlocked: tight branchless probes,
    // cap enforced per block.
    size_t stop = std::min(n, i + kBlockSize);
    for (; i < stop; ++i) count += Test(probe[i]);
    if (count >= cap) return cap;
  }
  return std::min(count, cap);
}

}  // namespace rpg::intersect
