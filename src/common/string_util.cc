#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rpg {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(haystack[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  bool negative = v < 0;
  uint64_t mag = negative ? static_cast<uint64_t>(-(v + 1)) + 1
                          : static_cast<uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace rpg
