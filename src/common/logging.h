#ifndef RPG_COMMON_LOGGING_H_
#define RPG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rpg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. The initial
/// level comes from the RPG_LOG_LEVEL environment variable at first use
/// ("debug"/"info"/"warning"/"error", see ParseLogLevel), defaulting to
/// kInfo when unset or unparseable.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name: "debug"/"info"/"warning"/"error" (any case;
/// "warn" also accepted), the single letters D/I/W/E, or the digits 0-3.
/// Returns false (and leaves `*out` untouched) on anything else.
bool ParseLogLevel(const std::string& s, LogLevel* out);

namespace internal {

/// Formats the per-line prefix:
///   "[<ISO-8601 UTC, ms precision> tid=<thread id> <L> <file>:<line>] "
/// e.g. "[2026-08-08T12:34:56.789Z tid=4242 I repager.cc:88] ".
/// Exposed for the logging unit tests.
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

/// Appends '\n' and writes the whole line to stderr with a single
/// write(2), so lines emitted by concurrent threads never shear into
/// each other (POSIX serializes writes on one file description). Also
/// the sink for the structured slow-query log (obs::EmitSlowQueryLog).
void WriteLogLine(std::string line);

/// Stream-style log line; emits to stderr on destruction. Use via the
/// RPG_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rpg

#define RPG_LOG(level)                                           \
  ::rpg::internal::LogMessage(::rpg::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check that aborts with a message; active in all build modes
/// (used for programmer errors, not for recoverable conditions).
#define RPG_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::rpg::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

namespace rpg::internal {

/// Helper for RPG_CHECK: collects the message then aborts.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace rpg::internal

#endif  // RPG_COMMON_LOGGING_H_
