#ifndef RPG_COMMON_LOGGING_H_
#define RPG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rpg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction. Use via the
/// RPG_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rpg

#define RPG_LOG(level)                                           \
  ::rpg::internal::LogMessage(::rpg::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check that aborts with a message; active in all build modes
/// (used for programmer errors, not for recoverable conditions).
#define RPG_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::rpg::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

namespace rpg::internal {

/// Helper for RPG_CHECK: collects the message then aborts.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace rpg::internal

#endif  // RPG_COMMON_LOGGING_H_
