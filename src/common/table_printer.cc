#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace rpg {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int decimals) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, decimals));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace rpg
