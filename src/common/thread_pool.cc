#include "common/thread_pool.h"

#include "common/logging.h"

namespace rpg {

ThreadPool::ThreadPool(size_t num_threads) {
  RPG_CHECK(num_threads > 0) << "thread pool needs at least one worker";
  workers_.reserve(num_threads);
  worker_ids_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    worker_ids_.push_back(workers_.back().get_id());
  }
}

bool ThreadPool::OnWorkerThread() const {
  std::thread::id self = std::this_thread::get_id();
  for (std::thread::id id : worker_ids_) {
    if (id == self) return true;
  }
  return false;
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A worker submitting mid-drain is fine: that worker is still alive
    // and will loop back to run the task before exiting.
    RPG_CHECK(!shutting_down_ || OnWorkerThread())
        << "Submit from outside the pool after Shutdown";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain the queue even when shutting down so Shutdown() == "finish
      // all submitted work".
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rpg
