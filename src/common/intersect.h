#ifndef RPG_COMMON_INTERSECT_H_
#define RPG_COMMON_INTERSECT_H_

/// \file
/// Sorted-set intersection kernels for the Eq. (2) common-neighbor
/// counting hot path (ROADMAP item 4; see docs/benchmarks.md
/// "BENCH_intersect.json").
///
/// Contract shared by every kernel in this file:
///  - inputs are spans of uint32 ids, sorted ascending, duplicate-free
///    (the CSR adjacency invariant of graph::CitationGraph);
///  - the return value is exactly min(|a ∩ b|, cap) — the cap is a
///    *semantic clamp*, not just an optimization hint, so callers like
///    rank::WeightModel::Con can stop a two-phase count the moment the
///    budget is exhausted and still get order-independent results;
///  - cap == 0 returns 0 without touching the inputs.
/// Because every kernel computes the same min(|a ∩ b|, cap), they are
/// freely interchangeable; tests/common/intersect_test.cc holds each of
/// them to a std::set_intersection oracle across size ratios 1:1..1:1e4
/// and exhaustive boundary cases.
///
/// Kernel selection (CountCommon) is by size ratio: galloping wins when
/// one side is much shorter than the other (O(|small| log |large|)),
/// the branch-light blocked merge wins for comparable sizes
/// (O(|a| + |b|), cmov-friendly inner loop, cap checked once per
/// block). The dense NeighborBitmap path is for callers that probe many
/// lists against one fixed high-degree node: stamp once, O(|probe|)
/// per count (rank::ConScratch builds these per subgraph row).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rpg::intersect {

/// The blocked-merge kernel re-checks the cap only every kBlockSize
/// steps so its inner loop stays branch-light; exposed for the
/// boundary-case tests (lengths around every multiple ± 1).
inline constexpr size_t kBlockSize = 64;

/// CountCommon dispatches to galloping when the longer input is at
/// least this many times the shorter one. Measured crossover on the
/// capped Eq. (2) workload (bench/bench_intersect.cpp): galloping
/// already wins at 1:4 and is ~400x ahead by 1:10^4, while below 1:4
/// the blocked merge and gallop are within noise of each other.
inline constexpr size_t kGallopRatio = 4;

/// Textbook two-pointer merge — the readable baseline every other
/// kernel is differentially tested against (besides the std oracle).
size_t CountCommonMerge(std::span<const uint32_t> a,
                        std::span<const uint32_t> b, size_t cap);

/// Galloping (exponential-probe + binary-search) intersection for
/// skewed sizes: walks the smaller span element-by-element and gallops
/// through the larger one. O(|small| · log(|large| / |small|)).
/// Works for any sizes, but only pays off when |a| ≪ |b|.
size_t CountCommonGallop(std::span<const uint32_t> small,
                         std::span<const uint32_t> large, size_t cap);

/// Branch-light merge: the inner loop advances both cursors with
/// comparison masks instead of an unpredictable three-way branch
/// (compiles to cmov/setcc; no per-element cap branch), and the cap is
/// enforced between kBlockSize-step blocks.
size_t CountCommonBlocked(std::span<const uint32_t> a,
                          std::span<const uint32_t> b, size_t cap);

/// Adaptive dispatcher: picks galloping vs blocked merge from the size
/// ratio. This is the kernel WeightModel::Con uses for the scratch-free
/// path.
size_t CountCommon(std::span<const uint32_t> a, std::span<const uint32_t> b,
                   size_t cap);

/// Dense bit-set over a node universe [0, n) for repeated intersections
/// against one fixed "stamped" set: Stamp(list) once, then
/// CountCommon(probe, cap) is O(|probe|) regardless of the stamped
/// list's length. Unstamp(list) with the SAME list returns the bitmap
/// to all-zeros in O(|list|), so a long-lived bitmap (one per
/// rank::ConScratch / core::QueryScratch) never pays an O(n) clear
/// between sources.
class NeighborBitmap {
 public:
  NeighborBitmap() = default;

  /// Grows the universe to at least n ids; new words are zero. Never
  /// shrinks, so scratch reuse across graphs of different sizes is
  /// allocation-free after the largest one.
  void EnsureUniverse(size_t n);

  size_t universe_bits() const { return words_.size() * 64; }

  /// Sets the bit of every id in `list`. Ids must be < universe.
  void Stamp(std::span<const uint32_t> list);

  /// Clears the bits of every id in `list` — the exact inverse of
  /// Stamp(list). Pass the same list that was stamped.
  void Unstamp(std::span<const uint32_t> list);

  /// Zeroes the whole bitmap (O(universe); only for recovery when the
  /// previously stamped list is no longer known).
  void Clear();

  bool Test(uint32_t v) const {
    return (words_[v >> 6] >> (v & 63)) & 1u;
  }

  /// min(|stamped ∩ probe|, cap) by probing each element of `probe`.
  /// Same cap semantics as the span kernels.
  size_t CountCommon(std::span<const uint32_t> probe, size_t cap) const;

 private:
  std::vector<uint64_t> words_;
};

}  // namespace rpg::intersect

#endif  // RPG_COMMON_INTERSECT_H_
