#ifndef RPG_COMMON_STATUS_H_
#define RPG_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace rpg {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
  /// Transient overload: the serving layer shed this request (queue
  /// bound, connection cap). Safe to retry after backing off; never
  /// cached as a negative result.
  kUnavailable,
  /// The request exceeded its deadline before (or while) being served.
  /// Like kUnavailable it is transient and never cached, but it means
  /// work was *abandoned*, not refused — callers should treat the
  /// outcome as unknown.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Status is the error-reporting currency of the public API. The library
/// does not throw exceptions; fallible operations return Status (or
/// Result<T>, see result.h). Status is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Overload-backoff hint: how long (whole seconds) the caller should
  /// wait before retrying. Set by the serving layer on kUnavailable /
  /// kDeadlineExceeded statuses so the HTTP edge can emit an honest
  /// `Retry-After` without reaching back into serving state. 0 = no hint.
  Status&& WithRetryAfter(int seconds) && {
    retry_after_seconds_ = seconds;
    return std::move(*this);
  }
  Status& WithRetryAfter(int seconds) & {
    retry_after_seconds_ = seconds;
    return *this;
  }
  int retry_after_seconds() const { return retry_after_seconds_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  int retry_after_seconds_ = 0;
};

}  // namespace rpg

/// Propagates a non-OK status to the caller. Usable only in functions that
/// return Status.
#define RPG_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::rpg::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

#endif  // RPG_COMMON_STATUS_H_
