#include "text/tokenizer.h"

#include <cctype>

namespace rpg::text {

std::vector<std::string> Tokenize(std::string_view s,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= options.min_token_length) {
      if (options.keep_numbers || !std::isdigit(static_cast<unsigned char>(
                                      current[0]))) {
        tokens.push_back(current);
      }
    }
    current.clear();
  };
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(options.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : ch);
    } else if (ch == '\'') {
      // Apostrophes vanish: "don't" -> "dont".
      continue;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> NGrams(const std::vector<std::string>& tokens,
                                size_t n) {
  std::vector<std::string> grams;
  if (n == 0 || tokens.size() < n) return grams;
  grams.reserve(tokens.size() - n + 1);
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string g = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      g.push_back('_');
      g += tokens[i + j];
    }
    grams.push_back(std::move(g));
  }
  return grams;
}

}  // namespace rpg::text
