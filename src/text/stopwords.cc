#include "text/stopwords.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace rpg::text {

namespace {

// Sorted so lookup can binary-search. Keep sorted when editing.
constexpr std::array<std::string_view, 142> kStopwords = {
    "a",        "about",   "above",   "after",   "again",    "against",
    "all",      "am",      "an",      "and",     "any",      "approach",
    "approaches", "are",   "as",      "at",      "based",    "be",
    "because",  "been",    "before",  "being",   "below",    "between",
    "both",     "but",     "by",      "can",     "cannot",   "comprehensive",
    "could",    "did",     "do",      "does",    "doing",    "down",
    "during",   "each",    "few",     "for",     "from",     "further",
    "had",      "has",     "have",    "having",  "he",       "her",
    "here",     "hers",    "him",     "his",     "how",      "i",
    "if",       "in",      "into",    "is",      "it",       "its",
    "itself",   "me",      "method",  "methods", "more",     "most",
    "my",       "new",     "no",      "nor",     "not",      "novel",
    "of",       "off",     "on",      "once",    "only",     "or",
    "other",    "ought",   "our",     "ours",    "out",      "over",
    "overview", "own",     "recent",  "review",  "same",     "she",
    "should",   "so",      "some",    "study",   "such",     "survey",
    "surveys",  "system",  "systems", "than",    "that",     "the",
    "their",    "theirs",  "them",    "then",    "there",    "these",
    "they",     "this",    "those",   "through", "to",       "too",
    "toward",   "towards", "trends",  "under",   "until",    "up",
    "use",      "used",    "using",   "very",    "via",      "was",
    "we",       "were",    "what",    "when",    "where",    "which",
    "while",    "who",     "whom",    "why",     "with",     "would",
    "you",      "your",    "yours",   "yourself"};

}  // namespace

bool IsStopword(std::string_view token) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), token);
}

size_t StopwordCount() { return kStopwords.size(); }

}  // namespace rpg::text
