#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpg::text {

double SparseVector::Norm() const {
  double s = 0.0;
  for (float w : weights) s += static_cast<double>(w) * w;
  return std::sqrt(s);
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  if (a.terms.empty() || b.terms.empty()) return 0.0;
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.terms.size() && j < b.terms.size()) {
    if (a.terms[i] == b.terms[j]) {
      dot += static_cast<double>(a.weights[i]) * b.weights[j];
      ++i;
      ++j;
    } else if (a.terms[i] < b.terms[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  double na = a.Norm(), nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (na * nb);
}

void TfIdfModel::AddDocument(const std::vector<TermId>& term_ids) {
  RPG_CHECK(!finalized_) << "AddDocument after Finalize";
  ++num_documents_;
  // Each unique term counts once per document.
  std::vector<TermId> unique = term_ids;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  for (TermId t : unique) ++df_[t];
}

void TfIdfModel::Finalize() {
  RPG_CHECK(!finalized_) << "double Finalize";
  finalized_ = true;
  idf_.reserve(df_.size());
  double n = static_cast<double>(num_documents_);
  for (const auto& [term, df] : df_) {
    idf_[term] = static_cast<float>(
        std::log((1.0 + n) / (1.0 + static_cast<double>(df))) + 1.0);
  }
}

double TfIdfModel::Idf(TermId term) const {
  auto it = idf_.find(term);
  if (it != idf_.end()) return it->second;
  // Unseen term: maximal IDF.
  return std::log(1.0 + static_cast<double>(num_documents_)) + 1.0;
}

uint64_t TfIdfModel::DocumentFrequency(TermId term) const {
  auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

SparseVector TfIdfModel::Vectorize(
    const std::vector<TermId>& term_ids) const {
  RPG_CHECK(finalized_) << "Vectorize before Finalize";
  std::vector<TermId> sorted = term_ids;
  std::sort(sorted.begin(), sorted.end());
  SparseVector v;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    double tf = 1.0 + std::log(static_cast<double>(j - i));
    v.terms.push_back(sorted[i]);
    v.weights.push_back(static_cast<float>(tf * Idf(sorted[i])));
    i = j;
  }
  double norm = v.Norm();
  if (norm > 0.0) {
    for (float& w : v.weights) w = static_cast<float>(w / norm);
  }
  return v;
}

}  // namespace rpg::text
