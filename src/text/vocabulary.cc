#include "text/vocabulary.h"

namespace rpg::text {

Vocabulary Vocabulary::FromTerms(std::vector<std::string> terms) {
  Vocabulary v;
  v.terms_ = std::move(terms);
  v.index_.reserve(v.terms_.size());
  for (TermId id = 0; id < v.terms_.size(); ++id) {
    v.index_.emplace(v.terms_[id], id);  // keeps the first id on dups
  }
  return v;
}

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

std::vector<TermId> Vocabulary::Encode(
    const std::vector<std::string>& tokens) {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(GetOrAdd(t));
  return ids;
}

std::vector<TermId> Vocabulary::EncodeExisting(
    const std::vector<std::string>& tokens) const {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) {
    TermId id = Lookup(t);
    if (id != kInvalidTerm) ids.push_back(id);
  }
  return ids;
}

}  // namespace rpg::text
