#include "text/topicrank.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace rpg::text {

namespace internal {

std::vector<Candidate> ExtractCandidates(const std::string& text) {
  std::vector<std::string> tokens = Tokenize(text);
  // Collect maximal runs of non-stopword tokens together with positions.
  struct Run {
    std::vector<std::string> words;
    int start;
  };
  std::vector<Run> runs;
  std::vector<std::string> current;
  int start = -1;
  for (size_t i = 0; i <= tokens.size(); ++i) {
    bool boundary = (i == tokens.size()) || IsStopword(tokens[i]);
    if (boundary) {
      if (!current.empty()) {
        runs.push_back({current, start});
        current.clear();
      }
    } else {
      if (current.empty()) start = static_cast<int>(i);
      current.push_back(tokens[i]);
    }
  }
  // Merge identical surface forms into one candidate with many positions.
  std::map<std::string, Candidate> merged;
  for (const auto& run : runs) {
    std::string key;
    for (const auto& w : run.words) {
      if (!key.empty()) key.push_back(' ');
      key += w;
    }
    auto [it, inserted] = merged.try_emplace(key);
    Candidate& cand = it->second;
    if (inserted) {
      cand.words = run.words;
      for (const auto& w : run.words) cand.stems.push_back(PorterStem(w));
      std::sort(cand.stems.begin(), cand.stems.end());
      cand.stems.erase(std::unique(cand.stems.begin(), cand.stems.end()),
                       cand.stems.end());
    }
    cand.first_word_positions.push_back(run.start);
  }
  std::vector<Candidate> out;
  out.reserve(merged.size());
  for (auto& [key, cand] : merged) out.push_back(std::move(cand));
  return out;
}

double StemOverlap(const Candidate& a, const Candidate& b) {
  if (a.stems.empty() || b.stems.empty()) return 0.0;
  size_t overlap = 0;
  size_t i = 0, j = 0;
  while (i < a.stems.size() && j < b.stems.size()) {
    if (a.stems[i] == b.stems[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a.stems[i] < b.stems[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t denom = std::min(a.stems.size(), b.stems.size());
  return static_cast<double>(overlap) / static_cast<double>(denom);
}

std::vector<int> ClusterCandidates(const std::vector<Candidate>& candidates,
                                   double threshold) {
  int n = static_cast<int>(candidates.size());
  std::vector<int> cluster(n);
  for (int i = 0; i < n; ++i) cluster[i] = i;

  // Pairwise similarity matrix (candidate counts per title are tiny).
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      sim[i][j] = sim[j][i] = StemOverlap(candidates[i], candidates[j]);
    }
  }

  // Average-linkage HAC: repeatedly merge the closest pair of clusters
  // whose average similarity clears the threshold.
  auto members = [&](int c) {
    std::vector<int> m;
    for (int i = 0; i < n; ++i)
      if (cluster[i] == c) m.push_back(i);
    return m;
  };
  for (;;) {
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) {
      if (std::find(ids.begin(), ids.end(), cluster[i]) == ids.end())
        ids.push_back(cluster[i]);
    }
    double best = threshold;
    int best_a = -1, best_b = -1;
    for (size_t a = 0; a < ids.size(); ++a) {
      for (size_t b = a + 1; b < ids.size(); ++b) {
        auto ma = members(ids[a]);
        auto mb = members(ids[b]);
        double total = 0.0;
        for (int i : ma)
          for (int j : mb) total += sim[i][j];
        double avg = total / static_cast<double>(ma.size() * mb.size());
        if (avg >= best) {
          best = avg;
          best_a = ids[a];
          best_b = ids[b];
        }
      }
    }
    if (best_a < 0) break;
    for (int i = 0; i < n; ++i) {
      if (cluster[i] == best_b) cluster[i] = best_a;
    }
  }
  // Renumber clusters densely.
  std::map<int, int> renumber;
  for (int i = 0; i < n; ++i) {
    auto [it, inserted] =
        renumber.try_emplace(cluster[i], static_cast<int>(renumber.size()));
    cluster[i] = it->second;
  }
  return cluster;
}

}  // namespace internal

std::vector<Keyphrase> ExtractKeyphrases(const std::string& text,
                                         const TopicRankOptions& options) {
  using internal::Candidate;
  std::vector<Candidate> candidates = internal::ExtractCandidates(text);
  if (candidates.empty()) return {};

  std::vector<int> cluster =
      internal::ClusterCandidates(candidates, options.cluster_similarity);
  int num_topics = 0;
  for (int c : cluster) num_topics = std::max(num_topics, c + 1);

  // Complete topic graph; edge weight = sum over cross-topic candidate
  // occurrence pairs of 1 / |pos_i - pos_j|.
  std::vector<std::vector<double>> w(
      num_topics, std::vector<double>(num_topics, 0.0));
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (cluster[i] == cluster[j]) continue;
      double weight = 0.0;
      for (int pi : candidates[i].first_word_positions) {
        for (int pj : candidates[j].first_word_positions) {
          int d = std::abs(pi - pj);
          if (d > 0) weight += 1.0 / static_cast<double>(d);
        }
      }
      w[cluster[i]][cluster[j]] += weight;
      w[cluster[j]][cluster[i]] += weight;
    }
  }

  // Weighted TextRank over topics.
  std::vector<double> score(num_topics, 1.0 / num_topics);
  std::vector<double> out_weight(num_topics, 0.0);
  for (int i = 0; i < num_topics; ++i) {
    for (int j = 0; j < num_topics; ++j) out_weight[i] += w[i][j];
  }
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<double> next(num_topics, (1.0 - options.damping) / num_topics);
    for (int i = 0; i < num_topics; ++i) {
      if (out_weight[i] <= 0.0) continue;
      for (int j = 0; j < num_topics; ++j) {
        if (w[i][j] > 0.0) {
          next[j] += options.damping * score[i] * w[i][j] / out_weight[i];
        }
      }
    }
    score.swap(next);
  }

  // Pick the first-occurring candidate of each topic as its exemplar.
  struct Topic {
    double score;
    int first_pos;
    std::string phrase;
  };
  std::vector<Topic> topics(num_topics,
                            Topic{0.0, INT32_MAX, std::string()});
  for (size_t i = 0; i < candidates.size(); ++i) {
    int c = cluster[i];
    topics[c].score = score[c];
    int first = *std::min_element(candidates[i].first_word_positions.begin(),
                                  candidates[i].first_word_positions.end());
    if (first < topics[c].first_pos) {
      topics[c].first_pos = first;
      std::string phrase;
      for (const auto& word : candidates[i].words) {
        if (!phrase.empty()) phrase.push_back(' ');
        phrase += word;
      }
      topics[c].phrase = phrase;
    }
  }
  std::sort(topics.begin(), topics.end(), [](const Topic& a, const Topic& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.first_pos < b.first_pos;
  });

  std::vector<Keyphrase> out;
  for (const auto& t : topics) {
    if (options.top_n > 0 && static_cast<int>(out.size()) >= options.top_n)
      break;
    out.push_back({t.phrase, t.score});
  }
  return out;
}

}  // namespace rpg::text
