#ifndef RPG_TEXT_TOKENIZER_H_
#define RPG_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rpg::text {

/// Options for Tokenize. Defaults match what the retrieval and keyphrase
/// pipelines expect: lowercase alphanumeric word tokens.
struct TokenizerOptions {
  bool lowercase = true;
  /// Keep tokens made purely of digits (years like "2017" are meaningful
  /// in titles).
  bool keep_numbers = true;
  /// Drop tokens shorter than this after normalization.
  size_t min_token_length = 1;
};

/// Splits text into word tokens. A token is a maximal run of ASCII
/// alphanumeric characters; hyphens and apostrophes inside a word join the
/// two sides ("state-of-the-art" -> "state", "of", "the", "art" is avoided:
/// it becomes "stateoftheart"? No --- hyphens split; apostrophes are
/// removed, so "don't" -> "dont"). Everything else is a separator.
std::vector<std::string> Tokenize(std::string_view s,
                                  const TokenizerOptions& options = {});

/// Produces word n-grams (joined with '_') from a token sequence.
/// n must be >= 1; returns empty when tokens.size() < n.
std::vector<std::string> NGrams(const std::vector<std::string>& tokens,
                                size_t n);

}  // namespace rpg::text

#endif  // RPG_TEXT_TOKENIZER_H_
