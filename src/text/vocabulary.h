#ifndef RPG_TEXT_VOCABULARY_H_
#define RPG_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rpg::text {

using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = UINT32_MAX;

/// Bidirectional term <-> dense-id mapping shared by the index, TF-IDF and
/// embedding components. Ids are assigned in first-seen order.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Rebuilds a vocabulary from a serialized term list, preserving the
  /// original first-seen id order (terms_[i] gets id i). Duplicate terms
  /// keep their first id; later duplicates become unreachable via Lookup
  /// but TermOf stays valid for every id. Used by the snapshot loader.
  static Vocabulary FromTerms(std::vector<std::string> terms);

  /// Returns the id of `term`, interning it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id of `term` or kInvalidTerm if absent.
  TermId Lookup(std::string_view term) const;

  /// Returns the term for a valid id.
  const std::string& TermOf(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  /// Converts a token sequence to ids, interning unseen tokens.
  std::vector<TermId> Encode(const std::vector<std::string>& tokens);

  /// Converts a token sequence to ids; unseen tokens are skipped.
  std::vector<TermId> EncodeExisting(
      const std::vector<std::string>& tokens) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace rpg::text

#endif  // RPG_TEXT_VOCABULARY_H_
