#ifndef RPG_TEXT_STOPWORDS_H_
#define RPG_TEXT_STOPWORDS_H_

#include <string_view>

namespace rpg::text {

/// True for common English function words plus scholarly boilerplate
/// ("survey", "review", "via", ...) that carries no topical signal in
/// paper titles. The list mirrors what keyphrase extractors like pke
/// filter before candidate selection.
bool IsStopword(std::string_view token);

/// Number of entries in the built-in stopword list (for tests).
size_t StopwordCount();

}  // namespace rpg::text

#endif  // RPG_TEXT_STOPWORDS_H_
