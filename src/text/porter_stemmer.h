#ifndef RPG_TEXT_PORTER_STEMMER_H_
#define RPG_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace rpg::text {

/// Classic Porter (1980) stemming algorithm, steps 1a-5b. Input must be a
/// lower-case ASCII word; non-alphabetic input is returned unchanged.
/// "relational" -> "relat", "networks" -> "network".
std::string PorterStem(std::string_view word);

}  // namespace rpg::text

#endif  // RPG_TEXT_PORTER_STEMMER_H_
