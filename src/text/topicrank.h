#ifndef RPG_TEXT_TOPICRANK_H_
#define RPG_TEXT_TOPICRANK_H_

#include <string>
#include <vector>

namespace rpg::text {

/// Configuration for TopicRank (Bougouin, Boudin & Daille, IJCNLP 2013) —
/// the keyphrase extractor the paper runs (via `pke`) over survey titles
/// to produce the RPG query key phrases.
struct TopicRankOptions {
  /// Candidates sharing at least this fraction of (stemmed) words are
  /// clustered into one topic (paper uses 25%).
  double cluster_similarity = 0.25;
  /// PageRank damping for the topic graph.
  double damping = 0.85;
  /// Power-iteration rounds.
  int iterations = 50;
  /// Maximum phrases to return (<=0 means all).
  int top_n = 2;
};

/// A scored keyphrase.
struct Keyphrase {
  std::string phrase;  ///< Original (lowercased) surface form.
  double score = 0.0;  ///< TopicRank topic score.
};

/// Extracts keyphrases from text. Pipeline: tokenize -> candidate phrases
/// (maximal runs of non-stopword tokens) -> stem-overlap clustering into
/// topics (average-linkage HAC) -> complete topic graph weighted by
/// reciprocal positional distance -> TextRank -> first-occurring candidate
/// of each top topic.
std::vector<Keyphrase> ExtractKeyphrases(const std::string& text,
                                         const TopicRankOptions& options = {});

namespace internal {

/// A candidate phrase with the positions (token offsets) of each of its
/// occurrences and its stemmed word set. Exposed for unit tests.
struct Candidate {
  std::vector<std::string> words;          ///< surface tokens
  std::vector<std::string> stems;          ///< sorted unique stems
  std::vector<int> first_word_positions;   ///< one per occurrence
};

/// Extracts candidate phrases (maximal non-stopword runs) with positions.
std::vector<Candidate> ExtractCandidates(const std::string& text);

/// Fraction of overlapping stems relative to the smaller stem set.
double StemOverlap(const Candidate& a, const Candidate& b);

/// Average-linkage agglomerative clustering; returns cluster id per
/// candidate.
std::vector<int> ClusterCandidates(const std::vector<Candidate>& candidates,
                                   double threshold);

}  // namespace internal

}  // namespace rpg::text

#endif  // RPG_TEXT_TOPICRANK_H_
