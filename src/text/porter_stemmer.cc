#include "text/porter_stemmer.h"

#include <cctype>

namespace rpg::text {

namespace {

// Working buffer view for the classic Porter algorithm. `k` is the index
// of the last character of the current stem (inclusive).
struct Stem {
  std::string b;
  int k = -1;

  bool IsConsonant(int i) const {
    char c = b[static_cast<size_t>(i)];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: number of VC sequences.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b[static_cast<size_t>(j)] != b[static_cast<size_t>(j - 1)])
      return false;
    return IsConsonant(j);
  }

  // cvc where the final c is not w, x or y ("hop" true, "snow"/"box" false).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2))
      return false;
    char c = b[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool EndsWith(std::string_view suffix, int* j) const {
    int len = static_cast<int>(suffix.size());
    if (len > k + 1) return false;
    for (int i = 0; i < len; ++i) {
      if (b[static_cast<size_t>(k - len + 1 + i)] !=
          suffix[static_cast<size_t>(i)])
        return false;
    }
    *j = k - len;
    return true;
  }

  void SetTo(std::string_view replacement, int j) {
    int len = static_cast<int>(replacement.size());
    b.resize(static_cast<size_t>(j + 1));
    b.append(replacement);
    k = j + len;
  }

  // Replaces the matched suffix when Measure(j) > 0.
  void ReplaceIfM(std::string_view replacement, int j) {
    if (Measure(j) > 0) SetTo(replacement, j);
  }
};

void Step1a(Stem* s) {
  int j;
  if (s->b[static_cast<size_t>(s->k)] != 's') return;
  if (s->EndsWith("sses", &j)) {
    s->k -= 2;
  } else if (s->EndsWith("ies", &j)) {
    s->SetTo("i", j);
  } else if (s->k >= 1 &&
             s->b[static_cast<size_t>(s->k - 1)] != 's') {
    s->k -= 1;
  }
  s->b.resize(static_cast<size_t>(s->k + 1));
}

void Step1b(Stem* s) {
  int j;
  if (s->EndsWith("eed", &j)) {
    if (s->Measure(j) > 0) {
      s->k -= 1;
      s->b.resize(static_cast<size_t>(s->k + 1));
    }
    return;
  }
  bool matched = false;
  if (s->EndsWith("ed", &j) && s->VowelInStem(j)) {
    s->k = j;
    s->b.resize(static_cast<size_t>(s->k + 1));
    matched = true;
  } else if (s->EndsWith("ing", &j) && s->VowelInStem(j)) {
    s->k = j;
    s->b.resize(static_cast<size_t>(s->k + 1));
    matched = true;
  }
  if (!matched) return;
  int dummy;
  if (s->EndsWith("at", &dummy) || s->EndsWith("bl", &dummy) ||
      s->EndsWith("iz", &dummy)) {
    s->b.push_back('e');
    s->k += 1;
  } else if (s->DoubleConsonant(s->k)) {
    char c = s->b[static_cast<size_t>(s->k)];
    if (c != 'l' && c != 's' && c != 'z') {
      s->k -= 1;
      s->b.resize(static_cast<size_t>(s->k + 1));
    }
  } else if (s->Measure(s->k) == 1 && s->Cvc(s->k)) {
    s->b.push_back('e');
    s->k += 1;
  }
}

void Step1c(Stem* s) {
  int j;
  if (s->EndsWith("y", &j) && s->VowelInStem(j)) {
    s->b[static_cast<size_t>(s->k)] = 'i';
  }
}

struct Rule {
  std::string_view suffix;
  std::string_view replacement;
};

void ApplyRules(Stem* s, const Rule* rules, size_t n) {
  int j;
  for (size_t i = 0; i < n; ++i) {
    if (s->EndsWith(rules[i].suffix, &j)) {
      s->ReplaceIfM(rules[i].replacement, j);
      return;
    }
  }
}

void Step2(Stem* s) {
  static constexpr Rule kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"}};
  ApplyRules(s, kRules, sizeof(kRules) / sizeof(kRules[0]));
}

void Step3(Stem* s) {
  static constexpr Rule kRules[] = {
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""}};
  ApplyRules(s, kRules, sizeof(kRules) / sizeof(kRules[0]));
}

void Step4(Stem* s) {
  static constexpr std::string_view kSuffixes[] = {
      "al",   "ance", "ence", "er",  "ic",   "able", "ible", "ant", "ement",
      "ment", "ent",  "ou",   "ism", "ate",  "iti",  "ous",  "ive", "ize"};
  int j;
  for (std::string_view suffix : kSuffixes) {
    if (s->EndsWith(suffix, &j)) {
      if (s->Measure(j) > 1) {
        s->k = j;
        s->b.resize(static_cast<size_t>(s->k + 1));
      }
      return;
    }
  }
  // "ion" only when preceded by s or t.
  if (s->EndsWith("ion", &j) && j >= 0) {
    char c = s->b[static_cast<size_t>(j)];
    if ((c == 's' || c == 't') && s->Measure(j) > 1) {
      s->k = j;
      s->b.resize(static_cast<size_t>(s->k + 1));
    }
  }
}

void Step5a(Stem* s) {
  if (s->b[static_cast<size_t>(s->k)] != 'e') return;
  int a = s->Measure(s->k - 1);
  if (a > 1 || (a == 1 && !s->Cvc(s->k - 1))) {
    s->k -= 1;
    s->b.resize(static_cast<size_t>(s->k + 1));
  }
}

void Step5b(Stem* s) {
  if (s->b[static_cast<size_t>(s->k)] == 'l' && s->DoubleConsonant(s->k) &&
      s->Measure(s->k) > 1) {
    s->k -= 1;
    s->b.resize(static_cast<size_t>(s->k + 1));
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) {
      return std::string(word);
    }
  }
  Stem s;
  s.b.assign(word);
  s.k = static_cast<int>(word.size()) - 1;
  Step1a(&s);
  if (s.k > 0) Step1b(&s);
  if (s.k > 0) Step1c(&s);
  if (s.k > 0) Step2(&s);
  if (s.k > 0) Step3(&s);
  if (s.k > 0) Step4(&s);
  if (s.k > 0) Step5a(&s);
  if (s.k > 0) Step5b(&s);
  s.b.resize(static_cast<size_t>(s.k + 1));
  return s.b;
}

}  // namespace rpg::text
