#ifndef RPG_TEXT_TFIDF_H_
#define RPG_TEXT_TFIDF_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace rpg::text {

/// Sparse term-weight vector (sorted by term id, unique terms).
struct SparseVector {
  std::vector<TermId> terms;
  std::vector<float> weights;

  size_t size() const { return terms.size(); }
  /// L2 norm.
  double Norm() const;
};

/// Cosine similarity of two sparse vectors (0 when either is empty).
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Document-frequency statistics + TF-IDF vectorization. Fit on a corpus
/// once, then vectorize documents/queries.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Counts document frequencies over term-id documents. Call once per
  /// document before Finalize().
  void AddDocument(const std::vector<TermId>& term_ids);

  /// Freezes document frequencies and precomputes IDF. Must be called
  /// before Vectorize.
  void Finalize();

  /// Smoothed IDF: log((1 + N) / (1 + df)) + 1.
  double Idf(TermId term) const;

  uint64_t num_documents() const { return num_documents_; }
  uint64_t DocumentFrequency(TermId term) const;

  /// Builds an L2-normalized tf-idf vector (log-scaled tf).
  SparseVector Vectorize(const std::vector<TermId>& term_ids) const;

 private:
  std::unordered_map<TermId, uint64_t> df_;
  std::unordered_map<TermId, float> idf_;
  uint64_t num_documents_ = 0;
  bool finalized_ = false;
};

}  // namespace rpg::text

#endif  // RPG_TEXT_TFIDF_H_
