#include "graph/citation_graph.h"

#include <algorithm>

namespace rpg::graph {

bool CitationGraph::HasEdge(PaperId u, PaperId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace rpg::graph
