#ifndef RPG_GRAPH_CITATION_GRAPH_H_
#define RPG_GRAPH_CITATION_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace rpg::graph {

/// Dense paper identifier. The paper's citation graph has ~6M nodes;
/// uint32 keeps adjacency arrays compact and cache-friendly.
using PaperId = uint32_t;
inline constexpr PaperId kInvalidPaper = UINT32_MAX;

/// Immutable citation graph in compressed-sparse-row form. An edge
/// u -> v means "paper u cites paper v". Both directions are stored:
/// out-edges (references of u) and in-edges (papers citing v), because the
/// pipeline expands neighborhoods in both directions (§IV-A step 3) and
/// PageRank propagates along reversed citations.
///
/// Construct via GraphBuilder. Within each node's span, neighbors are
/// sorted ascending, enabling binary-search membership tests.
class CitationGraph {
 public:
  CitationGraph() = default;

  size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  size_t num_edges() const { return out_targets_.size(); }

  /// Papers cited by `u` (its reference list).
  std::span<const PaperId> OutNeighbors(PaperId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_offsets_[u + 1] - out_offsets_[u]};
  }

  /// Papers that cite `v`.
  std::span<const PaperId> InNeighbors(PaperId v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(PaperId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(PaperId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// True when u cites v (binary search over u's references).
  bool HasEdge(PaperId u, PaperId v) const;

  /// In-degree == number of citations received.
  size_t CitationCount(PaperId v) const { return InDegree(v); }

 private:
  friend class GraphBuilder;
  friend class GraphIo;

  std::vector<uint64_t> out_offsets_;  // size num_nodes + 1
  std::vector<PaperId> out_targets_;
  std::vector<uint64_t> in_offsets_;
  std::vector<PaperId> in_targets_;
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_CITATION_GRAPH_H_
