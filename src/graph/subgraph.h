#ifndef RPG_GRAPH_SUBGRAPH_H_
#define RPG_GRAPH_SUBGRAPH_H_

/// \file
/// Node-induced subgraph with a local <-> global id mapping. The RePaGer
/// pipeline runs NEWST over the 1st/2nd-order neighborhood sub-citation
/// graph (§IV-A step 3), which is orders of magnitude smaller than the
/// whole graph; local dense ids keep the Steiner machinery simple.
///
/// Ownership / thread-safety model:
///  - A built Subgraph is immutable and self-contained (it does NOT
///    retain pointers into the CitationGraph or the scratch); concurrent
///    reads are safe.
///  - SubgraphScratch is transient build state only: a |V|-sized dense
///    global->local map plus CSR fill cursors, used during Assign() and
///    reset (in O(subgraph) time) before it returns. One scratch per
///    thread; reusing it across queries avoids the O(|V|) map allocation
///    per subgraph build.
///  - Assign() reuses the Subgraph's own CSR arrays (clear keeps
///    capacity), so a worker that keeps one Subgraph object alive pays
///    near-zero allocation after warm-up.

#include <span>
#include <vector>

#include "graph/citation_graph.h"

namespace rpg::graph {

class Subgraph;

/// Reusable build-time state for Subgraph::Assign. Treat as an opaque
/// token: default-construct once per worker and pass to every Assign
/// call. Never share one scratch between threads.
class SubgraphScratch {
 public:
  SubgraphScratch() = default;

 private:
  friend class Subgraph;
  std::vector<uint32_t> global_to_local_;  // UINT32_MAX = absent; lazily sized
  std::vector<uint64_t> out_cursor_;
  std::vector<uint64_t> in_cursor_;
};

/// Compressed-sparse-row induced subgraph (same storage design as
/// CitationGraph). Local ids are assigned in the order nodes first appear
/// in `nodes`; neighbor spans are sorted ascending by local id.
class Subgraph {
 public:
  /// Empty subgraph; populate with Assign().
  Subgraph() = default;

  /// Builds the subgraph of `g` induced by `nodes` (duplicates collapsed,
  /// out-of-range ids dropped) using a private transient scratch.
  Subgraph(const CitationGraph& g, const std::vector<PaperId>& nodes);

  /// Same, but build-time state lives in caller-owned `scratch`.
  Subgraph(const CitationGraph& g, const std::vector<PaperId>& nodes,
           SubgraphScratch* scratch);

  /// (Re)builds this subgraph in place, reusing existing array capacity.
  /// `scratch` is left reset and may be reused immediately.
  void Assign(const CitationGraph& g, const std::vector<PaperId>& nodes,
              SubgraphScratch* scratch);

  size_t num_nodes() const { return locals_to_global_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Global paper id for a local id.
  PaperId ToGlobal(uint32_t local) const { return locals_to_global_[local]; }

  /// Local id for a global paper id, or UINT32_MAX if not in the
  /// subgraph. O(log k) binary search over the sorted id index.
  uint32_t ToLocal(PaperId global) const;

  bool Contains(PaperId global) const {
    return ToLocal(global) != UINT32_MAX;
  }

  /// Local out-neighbors (cited papers inside the subgraph), sorted.
  std::span<const uint32_t> OutNeighbors(uint32_t local) const {
    return {out_targets_.data() + out_offsets_[local],
            out_offsets_[local + 1] - out_offsets_[local]};
  }
  /// Local in-neighbors (citing papers inside the subgraph), sorted.
  std::span<const uint32_t> InNeighbors(uint32_t local) const {
    return {in_targets_.data() + in_offsets_[local],
            in_offsets_[local + 1] - in_offsets_[local]};
  }

  /// Undirected adjacency (union of in and out), sorted.
  std::vector<uint32_t> UndirectedNeighbors(uint32_t local) const;

 private:
  std::vector<PaperId> locals_to_global_;
  // ToLocal index: globals sorted ascending + their local ids, parallel.
  std::vector<PaperId> sorted_globals_;
  std::vector<uint32_t> sorted_locals_;
  // Offsets hold num_nodes + 1 entries ({0} when empty) from default
  // construction on, so accessors stay in bounds for every valid local.
  std::vector<uint64_t> out_offsets_{0};
  std::vector<uint32_t> out_targets_;
  std::vector<uint64_t> in_offsets_{0};
  std::vector<uint32_t> in_targets_;
  size_t num_edges_ = 0;
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_SUBGRAPH_H_
