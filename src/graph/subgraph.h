#ifndef RPG_GRAPH_SUBGRAPH_H_
#define RPG_GRAPH_SUBGRAPH_H_

#include <unordered_map>
#include <vector>

#include "graph/citation_graph.h"

namespace rpg::graph {

/// Node-induced subgraph with a local <-> global id mapping. The RePaGer
/// pipeline runs NEWST over the 1st/2nd-order neighborhood sub-citation
/// graph (§IV-A step 3), which is orders of magnitude smaller than the
/// whole graph; local dense ids keep the Steiner machinery simple.
class Subgraph {
 public:
  /// Builds the subgraph of `g` induced by `nodes` (duplicates collapsed,
  /// out-of-range ids dropped). Local ids are assigned in the order nodes
  /// first appear in `nodes`.
  Subgraph(const CitationGraph& g, const std::vector<PaperId>& nodes);

  size_t num_nodes() const { return locals_to_global_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Global paper id for a local id.
  PaperId ToGlobal(uint32_t local) const { return locals_to_global_[local]; }

  /// Local id for a global paper id, or UINT32_MAX if not in the subgraph.
  uint32_t ToLocal(PaperId global) const;

  bool Contains(PaperId global) const {
    return ToLocal(global) != UINT32_MAX;
  }

  /// Local out-neighbors (cited papers inside the subgraph).
  const std::vector<uint32_t>& OutNeighbors(uint32_t local) const {
    return out_[local];
  }
  /// Local in-neighbors (citing papers inside the subgraph).
  const std::vector<uint32_t>& InNeighbors(uint32_t local) const {
    return in_[local];
  }

  /// Undirected adjacency (union of in and out), sorted.
  std::vector<uint32_t> UndirectedNeighbors(uint32_t local) const;

 private:
  std::vector<PaperId> locals_to_global_;
  std::unordered_map<PaperId, uint32_t> global_to_local_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
  size_t num_edges_ = 0;
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_SUBGRAPH_H_
