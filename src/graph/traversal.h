#ifndef RPG_GRAPH_TRAVERSAL_H_
#define RPG_GRAPH_TRAVERSAL_H_

/// \file
/// Bounded BFS (the §IV-A step-3 "1st/2nd-order neighbor" expansion) and
/// connected-component helpers over the immutable CitationGraph.
///
/// Ownership / thread-safety model:
///  - CitationGraph is immutable after construction; any number of
///    threads may traverse it concurrently.
///  - TraversalScratch is the per-caller mutable state (visit map +
///    touched list). A scratch must never be shared between threads;
///    give each worker its own (core::QueryScratch does exactly that).
///  - The scratch-free KHopNeighborhood overload is a thin wrapper that
///    allocates a fresh scratch per call — identical results, convenient
///    for one-shot use; the scratch overload exists so batch serving can
///    amortize the O(|V|) visit map across queries.

#include <vector>

#include "graph/citation_graph.h"

namespace rpg::graph {

/// Which edge directions a traversal follows.
enum class Direction {
  kOut,        ///< follow references (u -> papers u cites)
  kIn,         ///< follow citers (v -> papers citing v)
  kUndirected  ///< both
};

/// Result of a bounded BFS: nodes grouped by hop distance from the seed
/// set. `levels[0]` is the (deduplicated) seed set itself, `levels[h]` the
/// nodes first reached at hop h.
struct KHopResult {
  std::vector<std::vector<PaperId>> levels;

  /// Flattens all levels (seeds first) preserving level order.
  std::vector<PaperId> AllNodes() const;
  size_t TotalCount() const;
};

/// Reusable BFS state: a |V|-sized visit map that is lazily grown and
/// reset in O(touched) between calls, so repeated traversals of a big
/// graph stop paying an O(|V|) allocation + clear per query. Treat as an
/// opaque token: default-construct once per worker and pass to
/// KHopNeighborhood.
class TraversalScratch {
 public:
  TraversalScratch() = default;

 private:
  friend void KHopNeighborhood(const CitationGraph& g,
                               const std::vector<PaperId>& seeds, int max_hops,
                               Direction direction, TraversalScratch* scratch,
                               KHopResult* out);
  std::vector<uint8_t> visited_;   // lazily sized to g.num_nodes()
  std::vector<PaperId> touched_;   // entries of visited_ set by last call
};

/// BFS from `seeds` up to `max_hops` hops following `direction`.
/// Duplicate seeds are collapsed; invalid ids are skipped.
KHopResult KHopNeighborhood(const CitationGraph& g,
                            const std::vector<PaperId>& seeds, int max_hops,
                            Direction direction);

/// Scratch-reusing variant: identical output, but the visit map lives in
/// `scratch` and `out->levels` inner vectors are reused (cleared, not
/// reallocated) across calls. `scratch` and `out` must be distinct
/// objects per concurrent caller.
void KHopNeighborhood(const CitationGraph& g,
                      const std::vector<PaperId>& seeds, int max_hops,
                      Direction direction, TraversalScratch* scratch,
                      KHopResult* out);

/// Connected components treating the graph as undirected. Returns a
/// component id per node (dense, 0-based) and sets *num_components.
std::vector<uint32_t> ConnectedComponents(const CitationGraph& g,
                                          size_t* num_components);

/// Size of the largest undirected connected component.
size_t LargestComponentSize(const CitationGraph& g);

}  // namespace rpg::graph

#endif  // RPG_GRAPH_TRAVERSAL_H_
