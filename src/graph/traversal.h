#ifndef RPG_GRAPH_TRAVERSAL_H_
#define RPG_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/citation_graph.h"

namespace rpg::graph {

/// Which edge directions a traversal follows.
enum class Direction {
  kOut,        ///< follow references (u -> papers u cites)
  kIn,         ///< follow citers (v -> papers citing v)
  kUndirected  ///< both
};

/// Result of a bounded BFS: nodes grouped by hop distance from the seed
/// set. `levels[0]` is the (deduplicated) seed set itself, `levels[h]` the
/// nodes first reached at hop h.
struct KHopResult {
  std::vector<std::vector<PaperId>> levels;

  /// Flattens all levels (seeds first) preserving level order.
  std::vector<PaperId> AllNodes() const;
  size_t TotalCount() const;
};

/// BFS from `seeds` up to `max_hops` hops following `direction`.
/// Duplicate seeds are collapsed; invalid ids are skipped.
KHopResult KHopNeighborhood(const CitationGraph& g,
                            const std::vector<PaperId>& seeds, int max_hops,
                            Direction direction);

/// Connected components treating the graph as undirected. Returns a
/// component id per node (dense, 0-based) and sets *num_components.
std::vector<uint32_t> ConnectedComponents(const CitationGraph& g,
                                          size_t* num_components);

/// Size of the largest undirected connected component.
size_t LargestComponentSize(const CitationGraph& g);

}  // namespace rpg::graph

#endif  // RPG_GRAPH_TRAVERSAL_H_
