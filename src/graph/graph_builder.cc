#include "graph/graph_builder.h"

#include <algorithm>

#include "common/string_util.h"

namespace rpg::graph {

Result<CitationGraph> GraphBuilder::Build() {
  for (const auto& [u, v] : edges_) {
    if (u >= num_nodes_ || v >= num_nodes_) {
      return Status::InvalidArgument(StrFormat(
          "edge (%u, %u) out of range for %zu nodes", u, v, num_nodes_));
    }
  }
  // Drop self-loops, sort, dedup.
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const auto& e) { return e.first == e.second; }),
               edges_.end());
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  CitationGraph g;
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_targets_.resize(edges_.size());
  g.in_targets_.resize(edges_.size());
  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.out_targets_[out_cursor[u]++] = v;
    g.in_targets_[in_cursor[v]++] = u;
  }
  // Out-adjacency is sorted already (edges_ sorted by (u, v)); in-adjacency
  // is sorted because edges were processed in ascending u per fixed v.
  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace rpg::graph
