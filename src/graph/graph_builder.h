#ifndef RPG_GRAPH_GRAPH_BUILDER_H_
#define RPG_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/citation_graph.h"

namespace rpg::graph {

/// Accumulates citation edges and produces an immutable CitationGraph.
/// Duplicate edges and self-loops are dropped during Build.
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id space [0, num_nodes).
  explicit GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Records "citer cites cited". Ids must be < num_nodes (checked at
  /// Build time).
  void AddCitation(PaperId citer, PaperId cited) {
    edges_.emplace_back(citer, cited);
  }

  size_t num_pending_edges() const { return edges_.size(); }

  /// Validates ids, dedups, sorts adjacency, and builds both CSR
  /// directions. The builder is left empty afterwards.
  Result<CitationGraph> Build();

 private:
  size_t num_nodes_;
  std::vector<std::pair<PaperId, PaperId>> edges_;
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_GRAPH_BUILDER_H_
