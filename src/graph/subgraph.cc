#include "graph/subgraph.h"

#include <algorithm>
#include <numeric>

namespace rpg::graph {

Subgraph::Subgraph(const CitationGraph& g, const std::vector<PaperId>& nodes) {
  SubgraphScratch scratch;
  Assign(g, nodes, &scratch);
}

Subgraph::Subgraph(const CitationGraph& g, const std::vector<PaperId>& nodes,
                   SubgraphScratch* scratch) {
  Assign(g, nodes, scratch);
}

void Subgraph::Assign(const CitationGraph& g, const std::vector<PaperId>& nodes,
                      SubgraphScratch* scratch) {
  const size_t n = g.num_nodes();
  std::vector<uint32_t>& map = scratch->global_to_local_;
  if (map.size() < n) map.resize(n, UINT32_MAX);

  // Restore the map's all-UINT32_MAX invariant on every exit path
  // (including a bad_alloc mid-build), so a shared scratch can never
  // poison a later Assign. O(k), not O(n): exactly the mapped globals
  // are in locals_to_global_.
  locals_to_global_.clear();
  struct MapResetGuard {
    std::vector<uint32_t>& map;
    const std::vector<PaperId>& touched;
    ~MapResetGuard() {
      for (PaperId p : touched) map[p] = UINT32_MAX;
    }
  } guard{map, locals_to_global_};

  // Dedup + local id assignment in first-appearance order. push_back
  // before map[] so a throwing push never leaves an unrecorded entry.
  for (PaperId p : nodes) {
    if (p >= n || map[p] != UINT32_MAX) continue;
    locals_to_global_.push_back(p);
    map[p] = static_cast<uint32_t>(locals_to_global_.size() - 1);
  }
  const size_t k = locals_to_global_.size();

  // Counting pass over induced out-edges.
  num_edges_ = 0;
  out_offsets_.assign(k + 1, 0);
  in_offsets_.assign(k + 1, 0);
  for (uint32_t local = 0; local < k; ++local) {
    for (PaperId cited : g.OutNeighbors(locals_to_global_[local])) {
      uint32_t target = map[cited];
      if (target == UINT32_MAX) continue;
      ++out_offsets_[local + 1];
      ++in_offsets_[target + 1];
      ++num_edges_;
    }
  }
  std::partial_sum(out_offsets_.begin(), out_offsets_.end(),
                   out_offsets_.begin());
  std::partial_sum(in_offsets_.begin(), in_offsets_.end(), in_offsets_.begin());

  // Fill pass. In-spans come out sorted for free (the outer loop visits
  // citing locals in ascending order); out-spans are ordered by the cited
  // paper's *global* id and need a per-span sort to be ascending in local
  // ids.
  out_targets_.resize(num_edges_);
  in_targets_.resize(num_edges_);
  scratch->out_cursor_.assign(out_offsets_.begin(), out_offsets_.end() - 1);
  scratch->in_cursor_.assign(in_offsets_.begin(), in_offsets_.end() - 1);
  for (uint32_t local = 0; local < k; ++local) {
    for (PaperId cited : g.OutNeighbors(locals_to_global_[local])) {
      uint32_t target = map[cited];
      if (target == UINT32_MAX) continue;
      out_targets_[scratch->out_cursor_[local]++] = target;
      in_targets_[scratch->in_cursor_[target]++] = local;
    }
  }
  for (uint32_t local = 0; local < k; ++local) {
    std::sort(out_targets_.begin() + out_offsets_[local],
              out_targets_.begin() + out_offsets_[local + 1]);
  }

  // Sorted index for ToLocal.
  sorted_locals_.resize(k);
  std::iota(sorted_locals_.begin(), sorted_locals_.end(), 0u);
  std::sort(sorted_locals_.begin(), sorted_locals_.end(),
            [&](uint32_t a, uint32_t b) {
              return locals_to_global_[a] < locals_to_global_[b];
            });
  sorted_globals_.resize(k);
  for (size_t i = 0; i < k; ++i) {
    sorted_globals_[i] = locals_to_global_[sorted_locals_[i]];
  }
  // MapResetGuard leaves the scratch map clean for the next Assign.
}

uint32_t Subgraph::ToLocal(PaperId global) const {
  auto it = std::lower_bound(sorted_globals_.begin(), sorted_globals_.end(),
                             global);
  if (it == sorted_globals_.end() || *it != global) return UINT32_MAX;
  return sorted_locals_[static_cast<size_t>(it - sorted_globals_.begin())];
}

std::vector<uint32_t> Subgraph::UndirectedNeighbors(uint32_t local) const {
  std::span<const uint32_t> out = OutNeighbors(local);
  std::span<const uint32_t> in = InNeighbors(local);
  std::vector<uint32_t> merged;
  merged.reserve(out.size() + in.size());
  std::merge(out.begin(), out.end(), in.begin(), in.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace rpg::graph
