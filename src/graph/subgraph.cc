#include "graph/subgraph.h"

#include <algorithm>

namespace rpg::graph {

Subgraph::Subgraph(const CitationGraph& g, const std::vector<PaperId>& nodes) {
  const size_t n = g.num_nodes();
  for (PaperId p : nodes) {
    if (p >= n) continue;
    if (global_to_local_.contains(p)) continue;
    uint32_t local = static_cast<uint32_t>(locals_to_global_.size());
    global_to_local_.emplace(p, local);
    locals_to_global_.push_back(p);
  }
  out_.resize(locals_to_global_.size());
  in_.resize(locals_to_global_.size());
  for (uint32_t local = 0; local < locals_to_global_.size(); ++local) {
    PaperId global = locals_to_global_[local];
    for (PaperId cited : g.OutNeighbors(global)) {
      auto it = global_to_local_.find(cited);
      if (it != global_to_local_.end()) {
        out_[local].push_back(it->second);
        in_[it->second].push_back(local);
        ++num_edges_;
      }
    }
  }
  for (auto& v : out_) std::sort(v.begin(), v.end());
  for (auto& v : in_) std::sort(v.begin(), v.end());
}

uint32_t Subgraph::ToLocal(PaperId global) const {
  auto it = global_to_local_.find(global);
  return it == global_to_local_.end() ? UINT32_MAX : it->second;
}

std::vector<uint32_t> Subgraph::UndirectedNeighbors(uint32_t local) const {
  std::vector<uint32_t> merged;
  merged.reserve(out_[local].size() + in_[local].size());
  std::merge(out_[local].begin(), out_[local].end(), in_[local].begin(),
             in_[local].end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace rpg::graph
