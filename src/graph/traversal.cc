#include "graph/traversal.h"

#include <algorithm>
#include <deque>

namespace rpg::graph {

std::vector<PaperId> KHopResult::AllNodes() const {
  std::vector<PaperId> all;
  all.reserve(TotalCount());
  for (const auto& level : levels) {
    all.insert(all.end(), level.begin(), level.end());
  }
  return all;
}

size_t KHopResult::TotalCount() const {
  size_t n = 0;
  for (const auto& level : levels) n += level.size();
  return n;
}

KHopResult KHopNeighborhood(const CitationGraph& g,
                            const std::vector<PaperId>& seeds, int max_hops,
                            Direction direction) {
  KHopResult result;
  const size_t n = g.num_nodes();
  std::vector<bool> visited(n, false);

  std::vector<PaperId> frontier;
  for (PaperId s : seeds) {
    if (s < n && !visited[s]) {
      visited[s] = true;
      frontier.push_back(s);
    }
  }
  result.levels.push_back(frontier);

  for (int hop = 1; hop <= max_hops && !frontier.empty(); ++hop) {
    std::vector<PaperId> next;
    for (PaperId u : frontier) {
      auto visit = [&](std::span<const PaperId> nbrs) {
        for (PaperId v : nbrs) {
          if (!visited[v]) {
            visited[v] = true;
            next.push_back(v);
          }
        }
      };
      if (direction == Direction::kOut || direction == Direction::kUndirected)
        visit(g.OutNeighbors(u));
      if (direction == Direction::kIn || direction == Direction::kUndirected)
        visit(g.InNeighbors(u));
    }
    std::sort(next.begin(), next.end());
    result.levels.push_back(next);
    frontier = std::move(next);
  }
  return result;
}

std::vector<uint32_t> ConnectedComponents(const CitationGraph& g,
                                          size_t* num_components) {
  const size_t n = g.num_nodes();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  uint32_t next_comp = 0;
  std::deque<PaperId> queue;
  for (PaperId start = 0; start < n; ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next_comp;
    queue.push_back(start);
    while (!queue.empty()) {
      PaperId u = queue.front();
      queue.pop_front();
      auto visit = [&](std::span<const PaperId> nbrs) {
        for (PaperId v : nbrs) {
          if (comp[v] == UINT32_MAX) {
            comp[v] = next_comp;
            queue.push_back(v);
          }
        }
      };
      visit(g.OutNeighbors(u));
      visit(g.InNeighbors(u));
    }
    ++next_comp;
  }
  if (num_components != nullptr) *num_components = next_comp;
  return comp;
}

size_t LargestComponentSize(const CitationGraph& g) {
  size_t num_components = 0;
  std::vector<uint32_t> comp = ConnectedComponents(g, &num_components);
  std::vector<size_t> sizes(num_components, 0);
  for (uint32_t c : comp) ++sizes[c];
  size_t best = 0;
  for (size_t s : sizes) best = std::max(best, s);
  return best;
}

}  // namespace rpg::graph
