#include "graph/traversal.h"

#include <algorithm>
#include <deque>

namespace rpg::graph {

std::vector<PaperId> KHopResult::AllNodes() const {
  std::vector<PaperId> all;
  all.reserve(TotalCount());
  for (const auto& level : levels) {
    all.insert(all.end(), level.begin(), level.end());
  }
  return all;
}

size_t KHopResult::TotalCount() const {
  size_t n = 0;
  for (const auto& level : levels) n += level.size();
  return n;
}

KHopResult KHopNeighborhood(const CitationGraph& g,
                            const std::vector<PaperId>& seeds, int max_hops,
                            Direction direction) {
  TraversalScratch scratch;
  KHopResult result;
  KHopNeighborhood(g, seeds, max_hops, direction, &scratch, &result);
  return result;
}

void KHopNeighborhood(const CitationGraph& g,
                      const std::vector<PaperId>& seeds, int max_hops,
                      Direction direction, TraversalScratch* scratch,
                      KHopResult* out) {
  const size_t n = g.num_nodes();
  // Grow the visit map lazily; reset only what the previous call touched.
  if (scratch->visited_.size() < n) scratch->visited_.resize(n, 0);
  std::vector<uint8_t>& visited = scratch->visited_;
  std::vector<PaperId>& touched = scratch->touched_;
  for (PaperId p : touched) visited[p] = 0;
  touched.clear();

  // Reuse the inner level vectors (clear keeps capacity); the outer
  // vector may reallocate, so frontier is tracked by index, not pointer.
  std::vector<std::vector<PaperId>>& levels = out->levels;
  size_t used = 0;
  auto begin_level = [&]() {
    if (used == levels.size()) levels.emplace_back();
    levels[used].clear();
    return used++;
  };

  size_t frontier = begin_level();
  for (PaperId s : seeds) {
    if (s < n && !visited[s]) {
      // Record in touched before marking: a throwing push_back must not
      // leave a mark the next call's reset loop would miss.
      touched.push_back(s);
      visited[s] = 1;
      levels[frontier].push_back(s);
    }
  }

  for (int hop = 1; hop <= max_hops && !levels[frontier].empty(); ++hop) {
    size_t next = begin_level();
    for (size_t i = 0; i < levels[frontier].size(); ++i) {
      PaperId u = levels[frontier][i];
      auto visit = [&](std::span<const PaperId> nbrs) {
        for (PaperId v : nbrs) {
          if (!visited[v]) {
            touched.push_back(v);  // before marking; see seed loop
            visited[v] = 1;
            levels[next].push_back(v);
          }
        }
      };
      if (direction == Direction::kOut || direction == Direction::kUndirected)
        visit(g.OutNeighbors(u));
      if (direction == Direction::kIn || direction == Direction::kUndirected)
        visit(g.InNeighbors(u));
    }
    std::sort(levels[next].begin(), levels[next].end());
    frontier = next;
  }
  levels.resize(used);
}

std::vector<uint32_t> ConnectedComponents(const CitationGraph& g,
                                          size_t* num_components) {
  const size_t n = g.num_nodes();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  uint32_t next_comp = 0;
  std::deque<PaperId> queue;
  for (PaperId start = 0; start < n; ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next_comp;
    queue.push_back(start);
    while (!queue.empty()) {
      PaperId u = queue.front();
      queue.pop_front();
      auto visit = [&](std::span<const PaperId> nbrs) {
        for (PaperId v : nbrs) {
          if (comp[v] == UINT32_MAX) {
            comp[v] = next_comp;
            queue.push_back(v);
          }
        }
      };
      visit(g.OutNeighbors(u));
      visit(g.InNeighbors(u));
    }
    ++next_comp;
  }
  if (num_components != nullptr) *num_components = next_comp;
  return comp;
}

size_t LargestComponentSize(const CitationGraph& g) {
  size_t num_components = 0;
  std::vector<uint32_t> comp = ConnectedComponents(g, &num_components);
  std::vector<size_t> sizes(num_components, 0);
  for (uint32_t c : comp) ++sizes[c];
  size_t best = 0;
  for (size_t s : sizes) best = std::max(best, s);
  return best;
}

}  // namespace rpg::graph
