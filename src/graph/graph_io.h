#ifndef RPG_GRAPH_GRAPH_IO_H_
#define RPG_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/citation_graph.h"

namespace rpg::graph {

/// Binary (de)serialization and DOT export for citation graphs.
class GraphIo {
 public:
  /// Writes the CSR arrays with a magic header + version.
  static Status WriteBinary(const CitationGraph& g, const std::string& path);

  /// Reads a graph written by WriteBinary. Fails with IoError on missing
  /// files and InvalidArgument on corrupt/mismatched headers.
  static Result<CitationGraph> ReadBinary(const std::string& path);

  /// Reads a graph from an already-open binary stream; `context` names
  /// the source in error messages. The seam ReadBinary delegates to,
  /// exposed so the fuzz harness and tests can feed arbitrary bytes
  /// without touching the filesystem. Length prefixes are never trusted
  /// to size an allocation (a lying header fails on its first short
  /// read instead of OOMing), and the CSR structure is validated —
  /// monotonic offsets starting at 0, offsets.back() == target count,
  /// every target < num_nodes — so a corrupt or hostile file fails with
  /// InvalidArgument instead of producing a graph whose accessors read
  /// out of bounds.
  static Result<CitationGraph> ReadBinaryFromStream(std::istream& is,
                                                    const std::string& context);

  /// Snapshot support — read access to the out-direction CSR arrays.
  static const std::vector<uint64_t>& OutOffsets(const CitationGraph& g) {
    return g.out_offsets_;
  }
  static const std::vector<PaperId>& OutTargets(const CitationGraph& g) {
    return g.out_targets_;
  }

  /// Snapshot support — builds a graph from out-direction CSR arrays
  /// alone. The out CSR is validated exactly like ReadBinary's; the
  /// in-direction is rebuilt as the transpose (counting sort over
  /// sources, which leaves every in-span sorted ascending), so the two
  /// directions cannot disagree no matter what the file claimed.
  static Result<CitationGraph> FromOutCsr(std::vector<uint64_t> out_offsets,
                                          std::vector<PaperId> out_targets);

  /// Renders a node-induced sample as Graphviz DOT (edge u->v drawn as the
  /// citation direction). `labels` is optional (empty = use node ids);
  /// used for the Fig. 5 citation-graph visualization.
  static std::string ToDot(const CitationGraph& g,
                           const std::vector<PaperId>& nodes,
                           const std::vector<std::string>& labels = {});
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_GRAPH_IO_H_
