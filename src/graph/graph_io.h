#ifndef RPG_GRAPH_GRAPH_IO_H_
#define RPG_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/citation_graph.h"

namespace rpg::graph {

/// Binary (de)serialization and DOT export for citation graphs.
class GraphIo {
 public:
  /// Writes the CSR arrays with a magic header + version.
  static Status WriteBinary(const CitationGraph& g, const std::string& path);

  /// Reads a graph written by WriteBinary. Fails with IoError on missing
  /// files and InvalidArgument on corrupt/mismatched headers.
  static Result<CitationGraph> ReadBinary(const std::string& path);

  /// Reads a graph from an already-open binary stream; `context` names
  /// the source in error messages. The seam ReadBinary delegates to,
  /// exposed so the fuzz harness and tests can feed arbitrary bytes
  /// without touching the filesystem. Length prefixes are never trusted
  /// to size an allocation (a lying header fails on its first short
  /// read instead of OOMing), and the CSR structure is validated —
  /// monotonic offsets starting at 0, offsets.back() == target count,
  /// every target < num_nodes — so a corrupt or hostile file fails with
  /// InvalidArgument instead of producing a graph whose accessors read
  /// out of bounds.
  static Result<CitationGraph> ReadBinaryFromStream(std::istream& is,
                                                    const std::string& context);

  /// Renders a node-induced sample as Graphviz DOT (edge u->v drawn as the
  /// citation direction). `labels` is optional (empty = use node ids);
  /// used for the Fig. 5 citation-graph visualization.
  static std::string ToDot(const CitationGraph& g,
                           const std::vector<PaperId>& nodes,
                           const std::vector<std::string>& labels = {});
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_GRAPH_IO_H_
