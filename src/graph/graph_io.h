#ifndef RPG_GRAPH_GRAPH_IO_H_
#define RPG_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/citation_graph.h"

namespace rpg::graph {

/// Binary (de)serialization and DOT export for citation graphs.
class GraphIo {
 public:
  /// Writes the CSR arrays with a magic header + version.
  static Status WriteBinary(const CitationGraph& g, const std::string& path);

  /// Reads a graph written by WriteBinary. Fails with IoError on missing
  /// files and InvalidArgument on corrupt/mismatched headers.
  static Result<CitationGraph> ReadBinary(const std::string& path);

  /// Renders a node-induced sample as Graphviz DOT (edge u->v drawn as the
  /// citation direction). `labels` is optional (empty = use node ids);
  /// used for the Fig. 5 citation-graph visualization.
  static std::string ToDot(const CitationGraph& g,
                           const std::vector<PaperId>& nodes,
                           const std::vector<std::string>& labels = {});
};

}  // namespace rpg::graph

#endif  // RPG_GRAPH_GRAPH_IO_H_
