#include "graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <limits>
#include <unordered_set>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace rpg::graph {

namespace {

constexpr uint64_t kMagic = 0x5250475f47524146ULL;  // "RPG_GRAF"
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteVec(std::ofstream& os, const std::vector<T>& v) {
  uint64_t n = v.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
bool ReadVec(std::istream& is, std::vector<T>* v) {
  uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) return false;
  if (n > std::numeric_limits<uint64_t>::max() / sizeof(T)) return false;
  // The length prefix is attacker-controlled: growing in bounded chunks
  // instead of resize(n) means a lying header fails at its first short
  // read, not with a multi-GB allocation (the old resize-bomb).
  constexpr uint64_t kChunkElems = 1u << 16;
  v->clear();
  uint64_t remaining = n;
  while (remaining > 0) {
    const uint64_t take = std::min(remaining, kChunkElems);
    const size_t old_size = v->size();
    v->resize(old_size + static_cast<size_t>(take));
    is.read(reinterpret_cast<char*>(v->data() + old_size),
            static_cast<std::streamsize>(take * sizeof(T)));
    if (!is) return false;
    remaining -= take;
  }
  return true;
}

/// One direction's CSR arrays must describe `num_nodes` valid spans:
/// anything less and OutNeighbors/InNeighbors index out of bounds.
Status ValidateCsr(const std::vector<uint64_t>& offsets,
                   const std::vector<PaperId>& targets, size_t num_nodes,
                   const char* which, const std::string& context) {
  if (offsets.size() != num_nodes + 1) {
    return Status::InvalidArgument(
        StrFormat("%s offsets size mismatch: %s", which, context.c_str()));
  }
  if (offsets.front() != 0) {
    return Status::InvalidArgument(
        StrFormat("%s offsets do not start at 0: %s", which, context.c_str()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument(StrFormat(
          "%s offsets not monotonic at %zu: %s", which, i, context.c_str()));
    }
  }
  if (offsets.back() != targets.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s offsets/targets length mismatch: %s", which, context.c_str()));
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] >= num_nodes) {
      return Status::InvalidArgument(StrFormat(
          "%s target out of range at %zu: %s", which, i, context.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Status GraphIo::WriteBinary(const CitationGraph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open for write: " + path);
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  WriteVec(os, g.out_offsets_);
  WriteVec(os, g.out_targets_);
  WriteVec(os, g.in_offsets_);
  WriteVec(os, g.in_targets_);
  if (!os) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<CitationGraph> GraphIo::ReadBinary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  return ReadBinaryFromStream(is, path);
}

Result<CitationGraph> GraphIo::ReadBinaryFromStream(
    std::istream& is, const std::string& context) {
  uint64_t magic = 0;
  uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || magic != kMagic) {
    return Status::InvalidArgument("bad graph file header: " + context);
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported graph version %u", version));
  }
  CitationGraph g;
  if (!ReadVec(is, &g.out_offsets_) || !ReadVec(is, &g.out_targets_) ||
      !ReadVec(is, &g.in_offsets_) || !ReadVec(is, &g.in_targets_)) {
    return Status::InvalidArgument("truncated graph file: " + context);
  }
  if (g.out_offsets_.empty() ||
      g.in_offsets_.size() != g.out_offsets_.size()) {
    return Status::InvalidArgument("inconsistent graph file: " + context);
  }
  // Node count must fit PaperId: a graph bigger than that cannot be
  // addressed by the 32-bit ids the rest of the pipeline uses.
  const size_t num_nodes = g.out_offsets_.size() - 1;
  if (num_nodes > std::numeric_limits<PaperId>::max()) {
    return Status::InvalidArgument("graph too large for PaperId: " + context);
  }
  RPG_RETURN_NOT_OK(
      ValidateCsr(g.out_offsets_, g.out_targets_, num_nodes, "out", context));
  RPG_RETURN_NOT_OK(
      ValidateCsr(g.in_offsets_, g.in_targets_, num_nodes, "in", context));
  return g;
}

Result<CitationGraph> GraphIo::FromOutCsr(std::vector<uint64_t> out_offsets,
                                          std::vector<PaperId> out_targets) {
  if (out_offsets.empty()) {
    return Status::InvalidArgument("FromOutCsr: empty offsets");
  }
  const size_t num_nodes = out_offsets.size() - 1;
  if (num_nodes > std::numeric_limits<PaperId>::max()) {
    return Status::InvalidArgument("FromOutCsr: graph too large for PaperId");
  }
  RPG_RETURN_NOT_OK(ValidateCsr(out_offsets, out_targets, num_nodes, "out",
                                "FromOutCsr"));
  CitationGraph g;
  g.out_offsets_ = std::move(out_offsets);
  g.out_targets_ = std::move(out_targets);
  // Transpose: count in-degrees, prefix-sum, then scatter sources in
  // ascending order so every in-span comes out sorted.
  g.in_offsets_.assign(num_nodes + 1, 0);
  for (PaperId v : g.out_targets_) ++g.in_offsets_[v + 1];
  for (size_t i = 1; i <= num_nodes; ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.in_targets_.resize(g.out_targets_.size());
  std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                               g.in_offsets_.end() - 1);
  for (PaperId u = 0; u < num_nodes; ++u) {
    for (uint64_t i = g.out_offsets_[u]; i < g.out_offsets_[u + 1]; ++i) {
      g.in_targets_[cursor[g.out_targets_[i]]++] = u;
    }
  }
  return g;
}

std::string GraphIo::ToDot(const CitationGraph& g,
                           const std::vector<PaperId>& nodes,
                           const std::vector<std::string>& labels) {
  std::unordered_set<PaperId> keep(nodes.begin(), nodes.end());
  std::string out = "digraph citations {\n  rankdir=TB;\n";
  for (PaperId u : nodes) {
    std::string label = (u < labels.size() && !labels[u].empty())
                            ? labels[u]
                            : ("p" + std::to_string(u));
    out += StrFormat("  n%u [label=\"%s\"];\n", u,
                     JsonWriter::Escape(label).c_str());
  }
  for (PaperId u : nodes) {
    for (PaperId v : g.OutNeighbors(u)) {
      if (keep.contains(v)) {
        out += StrFormat("  n%u -> n%u;\n", u, v);
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rpg::graph
