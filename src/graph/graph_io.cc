#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace rpg::graph {

namespace {

constexpr uint64_t kMagic = 0x5250475f47524146ULL;  // "RPG_GRAF"
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteVec(std::ofstream& os, const std::vector<T>& v) {
  uint64_t n = v.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
bool ReadVec(std::ifstream& is, std::vector<T>* v) {
  uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) return false;
  v->resize(n);
  is.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(is);
}

}  // namespace

Status GraphIo::WriteBinary(const CitationGraph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open for write: " + path);
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  WriteVec(os, g.out_offsets_);
  WriteVec(os, g.out_targets_);
  WriteVec(os, g.in_offsets_);
  WriteVec(os, g.in_targets_);
  if (!os) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<CitationGraph> GraphIo::ReadBinary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  uint64_t magic = 0;
  uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || magic != kMagic) {
    return Status::InvalidArgument("bad graph file header: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported graph version %u", version));
  }
  CitationGraph g;
  if (!ReadVec(is, &g.out_offsets_) || !ReadVec(is, &g.out_targets_) ||
      !ReadVec(is, &g.in_offsets_) || !ReadVec(is, &g.in_targets_)) {
    return Status::InvalidArgument("truncated graph file: " + path);
  }
  if (g.out_offsets_.empty() || g.in_offsets_.size() != g.out_offsets_.size()) {
    return Status::InvalidArgument("inconsistent graph file: " + path);
  }
  return g;
}

std::string GraphIo::ToDot(const CitationGraph& g,
                           const std::vector<PaperId>& nodes,
                           const std::vector<std::string>& labels) {
  std::unordered_set<PaperId> keep(nodes.begin(), nodes.end());
  std::string out = "digraph citations {\n  rankdir=TB;\n";
  for (PaperId u : nodes) {
    std::string label = (u < labels.size() && !labels[u].empty())
                            ? labels[u]
                            : ("p" + std::to_string(u));
    out += StrFormat("  n%u [label=\"%s\"];\n", u,
                     JsonWriter::Escape(label).c_str());
  }
  for (PaperId u : nodes) {
    for (PaperId v : g.OutNeighbors(u)) {
      if (keep.contains(v)) {
        out += StrFormat("  n%u -> n%u;\n", u, v);
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rpg::graph
