#ifndef RPG_SNAPSHOT_CODEC_H_
#define RPG_SNAPSHOT_CODEC_H_

/// \file
/// The varint/delta adjacency codec behind the snapshot's kGraphOut
/// section, exposed standalone so the round-trip property tests and the
/// fuzz harness can drive it without a full snapshot around it.
///
/// Encoding, per node in id order:
///   varint(degree)
///   varint(first target)           — absolute
///   varint(target[i] - target[i-1]) for the rest — non-negative deltas,
///                                    because CSR spans are sorted
/// The decoder never trusts a decoded count to size an allocation: node
/// and edge totals are bounded by the section byte count (every varint
/// is at least one byte) before any reserve, and every decoded target is
/// range-checked. Any violation is a typed InvalidArgument.

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/citation_graph.h"

namespace rpg::snapshot {

/// Appends the encoded adjacency of a valid CSR (offsets/targets as in
/// CitationGraph, spans sorted ascending) to `out`.
void EncodeAdjacency(const std::vector<uint64_t>& offsets,
                     const std::vector<graph::PaperId>& targets,
                     std::vector<uint8_t>* out);

/// Decodes a kGraphOut section. `num_nodes`/`num_edges` come from the
/// (already validated) snapshot header and must match exactly what the
/// bytes describe. On success fills CSR arrays with sorted spans and
/// every target < num_nodes; on any structural lie returns
/// InvalidArgument and leaves the outputs unspecified.
Status DecodeAdjacency(std::span<const uint8_t> bytes, uint64_t num_nodes,
                       uint64_t num_edges, std::vector<uint64_t>* offsets,
                       std::vector<graph::PaperId>* targets);

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_CODEC_H_
