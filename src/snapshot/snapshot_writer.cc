#include "snapshot/snapshot_writer.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <numeric>

#include "common/string_util.h"
#include "graph/graph_io.h"
#include "search/inverted_index.h"
#include "snapshot/byte_io.h"
#include "snapshot/checksum.h"
#include "snapshot/codec.h"
#include "snapshot/format.h"

namespace rpg::snapshot {

namespace {

using graph::PaperId;

/// Streams sections to the file with 8-byte alignment, accumulating TOC
/// entries; Finish() appends the TOC and back-patches the header.
class SnapshotFile {
 public:
  explicit SnapshotFile(const std::string& path)
      : os_(path, std::ios::binary | std::ios::trunc) {
    // Reserve the header slot; Finish() rewrites it with real contents.
    const char zeros[kHeaderSize] = {};
    os_.write(zeros, sizeof(zeros));
    pos_ = kHeaderSize;
  }

  bool ok() const { return static_cast<bool>(os_); }

  void AddSection(SectionId id, const void* data, size_t size) {
    PadTo8();
    SectionEntry entry;
    entry.id = static_cast<uint32_t>(id);
    entry.offset = pos_;
    entry.size = size;
    entry.checksum = Fnv1a64(data, size);
    toc_.push_back(entry);
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    pos_ += size;
  }

  void AddSection(SectionId id, const std::vector<uint8_t>& bytes) {
    AddSection(id, bytes.data(), bytes.size());
  }

  Status Finish(uint64_t num_papers, uint64_t num_edges, uint32_t flags,
                uint64_t corpus_seed) {
    PadTo8();
    SnapshotHeader header;
    header.flags = flags;
    header.num_papers = num_papers;
    header.num_edges = num_edges;
    header.corpus_seed = corpus_seed;
    header.section_count = static_cast<uint32_t>(toc_.size());
    header.toc_offset = pos_;
    header.toc_size = toc_.size() * sizeof(SectionEntry);
    os_.write(reinterpret_cast<const char*>(toc_.data()),
              static_cast<std::streamsize>(header.toc_size));
    header.toc_checksum = Fnv1a64(toc_.data(), header.toc_size);
    header.header_checksum =
        Fnv1a64(&header, offsetof(SnapshotHeader, header_checksum));
    os_.seekp(0);
    os_.write(reinterpret_cast<const char*>(&header), sizeof(header));
    os_.flush();
    if (!os_) return Status::IoError("snapshot: short write");
    return Status::OK();
  }

 private:
  void PadTo8() {
    static const char zeros[8] = {};
    if (pos_ % 8 != 0) {
      const size_t pad = 8 - pos_ % 8;
      os_.write(zeros, static_cast<std::streamsize>(pad));
      pos_ += pad;
    }
  }

  std::ofstream os_;
  uint64_t pos_ = 0;
  std::vector<SectionEntry> toc_;
};

/// new-id order applied to one per-paper array (new[i] = old[perm[i]]).
template <typename T>
std::vector<T> Permute(const std::vector<T>& v,
                       const std::vector<PaperId>& perm) {
  std::vector<T> out;
  out.reserve(v.size());
  for (PaperId old_id : perm) out.push_back(v[old_id]);
  return out;
}

std::vector<uint8_t> EncodeTitles(const std::vector<std::string>& titles,
                                  const std::vector<PaperId>& perm) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.Put<uint64_t>(titles.size());
  uint64_t offset = 0;
  for (PaperId old_id : perm) {
    w.Put<uint64_t>(offset);
    offset += titles[old_id].size();
  }
  w.Put<uint64_t>(offset);  // end sentinel == blob size
  for (PaperId old_id : perm) {
    w.PutBytes(titles[old_id].data(), titles[old_id].size());
  }
  return buf;
}

std::vector<uint8_t> EncodeVocab(const text::Vocabulary& vocab) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.Put<uint64_t>(vocab.size());
  for (text::TermId id = 0; id < vocab.size(); ++id) {
    w.PutString(vocab.TermOf(id));
  }
  return buf;
}

std::vector<uint8_t> EncodePostings(
    const std::vector<std::vector<search::Posting>>& postings,
    const std::vector<PaperId>& inv, bool relabel) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  std::vector<search::Posting> scratch;
  for (const auto& plist : postings) {
    const std::vector<search::Posting>* list = &plist;
    if (relabel) {
      scratch.assign(plist.begin(), plist.end());
      for (auto& p : scratch) p.doc = inv[p.doc];
      std::sort(scratch.begin(), scratch.end(),
                [](const search::Posting& a, const search::Posting& b) {
                  return a.doc < b.doc;
                });
      list = &scratch;
    }
    w.PutVarint(list->size());
    uint32_t prev = 0;
    for (size_t i = 0; i < list->size(); ++i) {
      const search::Posting& p = (*list)[i];
      w.PutVarint(i == 0 ? p.doc : p.doc - prev);
      w.Put<float>(p.weighted_tf);
      prev = p.doc;
    }
  }
  return buf;
}

}  // namespace

std::vector<PaperId> BfsRelabelOrder(const graph::CitationGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<PaperId> roots(n);
  std::iota(roots.begin(), roots.end(), 0);
  std::sort(roots.begin(), roots.end(), [&](PaperId a, PaperId b) {
    const size_t da = g.InDegree(a), db = g.InDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<PaperId> order;
  order.reserve(n);
  std::vector<uint8_t> visited(n, 0);
  size_t head = 0;  // `order` doubles as the BFS queue
  for (PaperId root : roots) {
    if (visited[root]) continue;
    visited[root] = 1;
    order.push_back(root);
    while (head < order.size()) {
      const PaperId u = order[head++];
      for (PaperId v : g.OutNeighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          order.push_back(v);
        }
      }
      for (PaperId v : g.InNeighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          order.push_back(v);
        }
      }
    }
  }
  return order;
}

Status WriteSnapshot(const SnapshotInput& input, const std::string& path,
                     const SnapshotWriterOptions& options) {
  if (input.graph == nullptr || input.titles == nullptr ||
      input.years == nullptr || input.pagerank == nullptr ||
      input.venue_scores == nullptr || input.engine == nullptr ||
      input.matcher == nullptr) {
    return Status::InvalidArgument("snapshot: null input substrate");
  }
  const size_t n = input.graph->num_nodes();
  const search::InvertedIndex& index = input.engine->index();
  const size_t dim = static_cast<size_t>(input.matcher->embedder().dim());
  if (input.titles->size() != n || input.years->size() != n ||
      input.pagerank->size() != n || input.venue_scores->size() != n ||
      input.engine->num_documents() != n ||
      input.matcher->num_docs() != n ||
      index.doc_lengths().size() != n ||
      input.matcher->embeddings().size() != n * dim) {
    return Status::InvalidArgument(
        StrFormat("snapshot: substrate sizes disagree (graph has %zu "
                  "papers)",
                  n));
  }

  // perm[new] = old, inv[old] = new. Identity when not relabeling.
  std::vector<PaperId> perm;
  if (options.relabel) {
    perm = BfsRelabelOrder(*input.graph);
  } else {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), 0);
  }
  std::vector<PaperId> inv(n);
  for (size_t i = 0; i < n; ++i) inv[perm[i]] = static_cast<PaperId>(i);

  SnapshotFile file(path);
  if (!file.ok()) return Status::IoError("snapshot: cannot open " + path);

  // Graph (out-direction only; the reader rebuilds the transpose).
  {
    std::vector<uint8_t> buf;
    if (options.relabel) {
      std::vector<uint64_t> offsets;
      std::vector<PaperId> targets;
      offsets.reserve(n + 1);
      targets.reserve(input.graph->num_edges());
      offsets.push_back(0);
      std::vector<PaperId> span;
      for (size_t u = 0; u < n; ++u) {
        span.clear();
        for (PaperId v : input.graph->OutNeighbors(perm[u])) {
          span.push_back(inv[v]);
        }
        std::sort(span.begin(), span.end());
        targets.insert(targets.end(), span.begin(), span.end());
        offsets.push_back(targets.size());
      }
      EncodeAdjacency(offsets, targets, &buf);
    } else {
      EncodeAdjacency(graph::GraphIo::OutOffsets(*input.graph),
                      graph::GraphIo::OutTargets(*input.graph), &buf);
    }
    file.AddSection(SectionId::kGraphOut, buf);
  }

  file.AddSection(SectionId::kTitles, EncodeTitles(*input.titles, perm));
  {
    const std::vector<uint16_t> years = Permute(*input.years, perm);
    file.AddSection(SectionId::kYears, years.data(),
                    years.size() * sizeof(uint16_t));
    const std::vector<double> venue = Permute(*input.venue_scores, perm);
    file.AddSection(SectionId::kVenueScores, venue.data(),
                    venue.size() * sizeof(double));
    const std::vector<double> pagerank = Permute(*input.pagerank, perm);
    file.AddSection(SectionId::kPagerank, pagerank.data(),
                    pagerank.size() * sizeof(double));
  }

  // Inverted index + engine.
  file.AddSection(SectionId::kVocab, EncodeVocab(index.vocab()));
  file.AddSection(SectionId::kPostings,
                  EncodePostings(index.postings(), inv, options.relabel));
  {
    const std::vector<float> doc_lengths = Permute(index.doc_lengths(), perm);
    file.AddSection(SectionId::kDocLengths, doc_lengths.data(),
                    doc_lengths.size() * sizeof(float));
  }
  {
    std::vector<uint8_t> buf;
    ByteWriter w(&buf);
    w.Put<double>(index.average_doc_length());
    w.Put<double>(index.options().title_weight);
    file.AddSection(SectionId::kIndexMeta, buf);
  }
  {
    const search::EngineProfile& profile = input.engine->profile();
    std::vector<uint8_t> buf;
    ByteWriter w(&buf);
    w.Put<uint64_t>(input.engine->max_citations());
    w.Put<int32_t>(input.engine->min_year());
    w.Put<int32_t>(input.engine->max_year());
    w.Put<double>(profile.bm25.k1);
    w.Put<double>(profile.bm25.b);
    w.Put<double>(profile.citation_boost);
    w.Put<double>(profile.recency_boost);
    w.PutString(profile.name);
    file.AddSection(SectionId::kEngineMeta, buf);
  }

  // Embeddings: the dominant section, written raw so the reader can
  // serve it zero-copy out of the mapping.
  {
    const match::HashedEmbedderOptions& eo =
        input.matcher->embedder().options();
    std::vector<uint8_t> buf;
    ByteWriter w(&buf);
    w.Put<uint32_t>(static_cast<uint32_t>(eo.dim));
    w.Put<uint32_t>(eo.use_bigrams ? 1 : 0);
    w.Put<double>(eo.title_weight);
    file.AddSection(SectionId::kEmbedMeta, buf);

    const std::span<const float> flat = input.matcher->embeddings();
    if (options.relabel) {
      std::vector<float> permuted(flat.size());
      for (size_t u = 0; u < n; ++u) {
        std::memcpy(permuted.data() + u * dim, flat.data() + perm[u] * dim,
                    dim * sizeof(float));
      }
      file.AddSection(SectionId::kEmbeddings, permuted.data(),
                      permuted.size() * sizeof(float));
    } else {
      file.AddSection(SectionId::kEmbeddings, flat.data(),
                      flat.size() * sizeof(float));
    }
  }

  {
    const double params[5] = {input.params.alpha, input.params.beta,
                              input.params.gamma, input.params.a,
                              input.params.b};
    file.AddSection(SectionId::kParams, params, sizeof(params));
  }
  if (options.relabel) {
    file.AddSection(SectionId::kIdMap, perm.data(),
                    perm.size() * sizeof(PaperId));
  }

  return file.Finish(n, input.graph->num_edges(),
                     options.relabel ? kFlagRelabeled : 0, input.corpus_seed);
}

}  // namespace rpg::snapshot
