#ifndef RPG_SNAPSHOT_SERVING_STATE_H_
#define RPG_SNAPSHOT_SERVING_STATE_H_

/// \file
/// Boots the complete serving substrate out of a snapshot file: the CSR
/// citation graph (out-edges decoded, in-edges rebuilt as the exact
/// transpose), the restored BM25 engine, the weight model, a
/// zero-copy-backed semantic matcher, and a RePaGer wired over all of
/// them — the snapshot-side twin of eval::Workbench, minus the synthetic
/// corpus and survey bank. Everything decoded is validated; the
/// embeddings matrix is the one section served straight out of the
/// mapping (lazy page-in), which the owned SnapshotReader keeps alive.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/repager.h"
#include "graph/citation_graph.h"
#include "match/semantic_matcher.h"
#include "rank/weight_model.h"
#include "search/search_engine.h"
#include "snapshot/snapshot_reader.h"

namespace rpg::snapshot {

class ServingState {
 public:
  static Result<std::unique_ptr<ServingState>> Load(
      const std::string& path, const SnapshotReaderOptions& options = {});

  /// Test/fuzz seam: same pipeline over an in-memory snapshot image.
  static Result<std::unique_ptr<ServingState>> LoadFromBuffer(
      std::vector<uint8_t> bytes, const SnapshotReaderOptions& options = {});

  ServingState(const ServingState&) = delete;
  ServingState& operator=(const ServingState&) = delete;

  const graph::CitationGraph& graph() const { return graph_; }
  const std::vector<std::string>& titles() const { return titles_; }
  const std::vector<uint16_t>& years() const { return years_; }
  const std::vector<double>& pagerank() const { return pagerank_; }
  const std::vector<double>& venue_scores() const { return venue_scores_; }
  const search::SearchEngine& engine() const { return *engine_; }
  const match::SemanticMatcher& matcher() const { return *matcher_; }
  const rank::WeightModel& weights() const { return *weights_; }
  const core::RePaGer& repager() const { return *repager_; }
  const rank::NewstParams& params() const { return params_; }

  /// new-id -> original-id map; empty when the snapshot is not
  /// relabeled. Lets callers translate results back to pre-relabel ids.
  const std::vector<graph::PaperId>& new_to_old() const { return new_to_old_; }
  bool relabeled() const { return reader_->relabeled(); }
  uint64_t corpus_seed() const { return reader_->corpus_seed(); }
  const SnapshotReader& reader() const { return *reader_; }

 private:
  ServingState() = default;

  /// Decodes every section and wires the substrate together.
  Status Build();

  std::unique_ptr<SnapshotReader> reader_;  ///< keeps the mapping alive
  graph::CitationGraph graph_;
  std::vector<std::string> titles_;
  std::vector<uint16_t> years_;
  std::vector<double> pagerank_;
  std::vector<double> venue_scores_;
  rank::NewstParams params_;
  std::vector<graph::PaperId> new_to_old_;
  std::unique_ptr<search::SearchEngine> engine_;
  std::unique_ptr<match::SemanticMatcher> matcher_;
  std::unique_ptr<rank::WeightModel> weights_;
  std::unique_ptr<core::RePaGer> repager_;
};

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_SERVING_STATE_H_
