#ifndef RPG_SNAPSHOT_SNAPSHOT_WRITER_H_
#define RPG_SNAPSHOT_SNAPSHOT_WRITER_H_

/// \file
/// Offline snapshot writer: serializes the complete immutable serving
/// state (CSR citation graph, inverted index, embeddings, per-paper
/// metadata, NEWST params) into one section-table file (format.h) that
/// SnapshotReader/ServingState can boot from via mmap. "Write once
/// offline, read many at serve time": build-side cost (varint/delta
/// compression, optional BFS relabeling for cache-friendly node order)
/// is spent to make the read side cheap.

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/citation_graph.h"
#include "match/semantic_matcher.h"
#include "rank/weight_model.h"
#include "search/search_engine.h"

namespace rpg::snapshot {

/// Borrowed views of everything that goes into a snapshot. All pointers
/// must stay valid for the duration of WriteSnapshot. The arrays are
/// parallel per-paper; `engine` is the serving (Google-profile) engine
/// whose index is persisted.
struct SnapshotInput {
  const graph::CitationGraph* graph = nullptr;
  const std::vector<std::string>* titles = nullptr;
  const std::vector<uint16_t>* years = nullptr;
  const std::vector<double>* pagerank = nullptr;
  const std::vector<double>* venue_scores = nullptr;
  const search::SearchEngine* engine = nullptr;
  const match::SemanticMatcher* matcher = nullptr;
  rank::NewstParams params;
  /// Provenance recorded in the header (0 = unknown).
  uint64_t corpus_seed = 0;
};

struct SnapshotWriterOptions {
  /// Renumber papers in BFS order from the highest-in-degree roots so
  /// neighborhoods that are traversed together sit together on disk and
  /// in page cache. The kIdMap section maps new ids back to the
  /// original ones; all per-paper sections are stored permuted.
  bool relabel = false;
};

/// Writes the snapshot file at `path` (overwriting). Validates that all
/// per-paper arrays agree on the paper count first.
Status WriteSnapshot(const SnapshotInput& input, const std::string& path,
                     const SnapshotWriterOptions& options = {});

/// The BFS/degree relabel order used by WriteSnapshot when `relabel` is
/// set: returns new-id -> old-id. Deterministic: roots are taken in
/// descending in-degree (ties by old id ascending) and neighbors are
/// visited in span order, out-edges before in-edges. Exposed for tests.
std::vector<graph::PaperId> BfsRelabelOrder(const graph::CitationGraph& g);

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_SNAPSHOT_WRITER_H_
