#include "snapshot/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>

#include "common/string_util.h"
#include "snapshot/checksum.h"

namespace rpg::snapshot {

namespace {

const char* SectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kGraphOut: return "graph_out";
    case SectionId::kTitles: return "titles";
    case SectionId::kYears: return "years";
    case SectionId::kVenueScores: return "venue_scores";
    case SectionId::kPagerank: return "pagerank";
    case SectionId::kVocab: return "vocab";
    case SectionId::kPostings: return "postings";
    case SectionId::kDocLengths: return "doc_lengths";
    case SectionId::kIndexMeta: return "index_meta";
    case SectionId::kEngineMeta: return "engine_meta";
    case SectionId::kEmbedMeta: return "embed_meta";
    case SectionId::kEmbeddings: return "embeddings";
    case SectionId::kParams: return "params";
    case SectionId::kIdMap: return "id_map";
  }
  return "unknown";
}

}  // namespace

SnapshotReader::~SnapshotReader() {
  if (mmap_base_ != nullptr) {
    ::munmap(mmap_base_, mmap_size_);
  }
}

Result<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path, const SnapshotReaderOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("snapshot: cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("snapshot: fstat failed: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("snapshot: empty file: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return Status::IoError("snapshot: mmap failed: " + path);
  }
  auto reader = std::unique_ptr<SnapshotReader>(new SnapshotReader());
  reader->mmap_base_ = base;
  reader->mmap_size_ = size;
  reader->data_ = {static_cast<const uint8_t*>(base), size};
  RPG_RETURN_NOT_OK(reader->Validate(options, path));
  return reader;
}

Result<std::unique_ptr<SnapshotReader>> SnapshotReader::FromBuffer(
    std::vector<uint8_t> bytes, const SnapshotReaderOptions& options) {
  auto reader = std::unique_ptr<SnapshotReader>(new SnapshotReader());
  reader->owned_ = std::move(bytes);
  reader->data_ = reader->owned_;
  RPG_RETURN_NOT_OK(reader->Validate(options, "<buffer>"));
  return reader;
}

Status SnapshotReader::Validate(const SnapshotReaderOptions& options,
                                const std::string& context) {
  // 1. Header present, magic, version, header checksum.
  if (data_.size() < kHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("snapshot: file too small (%zu bytes): %s", data_.size(),
                  context.c_str()));
  }
  std::memcpy(&header_, data_.data(), sizeof(header_));
  if (header_.magic != kMagic) {
    return Status::InvalidArgument("snapshot: bad magic: " + context);
  }
  if (header_.version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("snapshot: unsupported version %u (want %u): %s",
                  header_.version, kVersion, context.c_str()));
  }
  const uint64_t want_header =
      Fnv1a64(data_.data(), offsetof(SnapshotHeader, header_checksum));
  if (header_.header_checksum != want_header) {
    return Status::InvalidArgument("snapshot: header checksum mismatch: " +
                                   context);
  }

  // 2. TOC bounds and checksum. All arithmetic overflow-safe: sizes are
  // compared against the known file size, never added blindly.
  if (header_.section_count > kMaxSections) {
    return Status::InvalidArgument(
        StrFormat("snapshot: section count %u exceeds cap: %s",
                  header_.section_count, context.c_str()));
  }
  const uint64_t file_size = data_.size();
  if (header_.toc_size !=
      static_cast<uint64_t>(header_.section_count) * sizeof(SectionEntry)) {
    return Status::InvalidArgument("snapshot: TOC size mismatch: " + context);
  }
  if (header_.toc_offset < kHeaderSize || header_.toc_offset > file_size ||
      header_.toc_size > file_size - header_.toc_offset) {
    return Status::InvalidArgument("snapshot: TOC out of bounds: " + context);
  }
  const uint8_t* toc_bytes = data_.data() + header_.toc_offset;
  if (Fnv1a64(toc_bytes, header_.toc_size) != header_.toc_checksum) {
    return Status::InvalidArgument("snapshot: TOC checksum mismatch: " +
                                   context);
  }
  sections_.resize(header_.section_count);
  std::memcpy(sections_.data(), toc_bytes, header_.toc_size);

  // 3. Per-entry bounds: aligned, inside the file, no duplicate ids.
  for (size_t i = 0; i < sections_.size(); ++i) {
    const SectionEntry& e = sections_[i];
    if (e.offset < kHeaderSize || e.offset % 8 != 0 ||
        e.offset > file_size || e.size > file_size - e.offset) {
      return Status::InvalidArgument(
          StrFormat("snapshot: section %s out of bounds: %s",
                    SectionName(e.id), context.c_str()));
    }
    for (size_t j = 0; j < i; ++j) {
      if (sections_[j].id == e.id) {
        return Status::InvalidArgument(
            StrFormat("snapshot: duplicate section %s: %s", SectionName(e.id),
                      context.c_str()));
      }
    }
  }

  // 4. Required sections present (kIdMap required iff relabeled).
  static constexpr SectionId kRequired[] = {
      SectionId::kGraphOut,   SectionId::kTitles,     SectionId::kYears,
      SectionId::kVenueScores, SectionId::kPagerank,  SectionId::kVocab,
      SectionId::kPostings,   SectionId::kDocLengths, SectionId::kIndexMeta,
      SectionId::kEngineMeta, SectionId::kEmbedMeta,  SectionId::kEmbeddings,
      SectionId::kParams,
  };
  for (SectionId id : kRequired) {
    if (!HasSection(id)) {
      return Status::InvalidArgument(
          StrFormat("snapshot: missing section %s: %s",
                    SectionName(static_cast<uint32_t>(id)), context.c_str()));
    }
  }
  if (relabeled() && !HasSection(SectionId::kIdMap)) {
    return Status::InvalidArgument(
        "snapshot: relabeled flag set but id_map missing: " + context);
  }

  // 5. Section checksums — everything except the embeddings matrix,
  // which stays lazy (VerifyAllChecksums covers it).
  if (options.verify_checksums) {
    for (const SectionEntry& e : sections_) {
      if (e.id == static_cast<uint32_t>(SectionId::kEmbeddings)) continue;
      if (Fnv1a64(data_.data() + e.offset, e.size) != e.checksum) {
        return Status::InvalidArgument(
            StrFormat("snapshot: section %s checksum mismatch: %s",
                      SectionName(e.id), context.c_str()));
      }
    }
  }
  return Status::OK();
}

bool SnapshotReader::HasSection(SectionId id) const {
  for (const SectionEntry& e : sections_) {
    if (e.id == static_cast<uint32_t>(id)) return true;
  }
  return false;
}

Result<std::span<const uint8_t>> SnapshotReader::Section(SectionId id) const {
  for (const SectionEntry& e : sections_) {
    if (e.id == static_cast<uint32_t>(id)) {
      return std::span<const uint8_t>(data_.data() + e.offset, e.size);
    }
  }
  return Status::InvalidArgument(
      StrFormat("snapshot: missing section %s",
                SectionName(static_cast<uint32_t>(id))));
}

Status SnapshotReader::VerifyAllChecksums() const {
  for (const SectionEntry& e : sections_) {
    if (Fnv1a64(data_.data() + e.offset, e.size) != e.checksum) {
      return Status::InvalidArgument(StrFormat(
          "snapshot: section %s checksum mismatch", SectionName(e.id)));
    }
  }
  return Status::OK();
}

}  // namespace rpg::snapshot
