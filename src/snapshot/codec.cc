#include "snapshot/codec.h"

#include <limits>

#include "common/string_util.h"
#include "snapshot/byte_io.h"

namespace rpg::snapshot {

void EncodeAdjacency(const std::vector<uint64_t>& offsets,
                     const std::vector<graph::PaperId>& targets,
                     std::vector<uint8_t>* out) {
  ByteWriter w(out);
  const size_t num_nodes = offsets.empty() ? 0 : offsets.size() - 1;
  for (size_t u = 0; u < num_nodes; ++u) {
    const uint64_t begin = offsets[u], end = offsets[u + 1];
    w.PutVarint(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      w.PutVarint(i == begin ? targets[i]
                             : static_cast<uint64_t>(targets[i]) -
                                   targets[i - 1]);
    }
  }
}

Status DecodeAdjacency(std::span<const uint8_t> bytes, uint64_t num_nodes,
                       uint64_t num_edges, std::vector<uint64_t>* offsets,
                       std::vector<graph::PaperId>* targets) {
  // Node ids must fit PaperId, and every node and edge costs at least
  // one encoded byte — so the header-claimed totals are bounded by the
  // section size before anything is allocated (no resize bombs).
  if (num_nodes > std::numeric_limits<graph::PaperId>::max()) {
    return Status::InvalidArgument("adjacency: node count exceeds PaperId");
  }
  if (num_nodes > bytes.size() || num_edges > bytes.size()) {
    return Status::InvalidArgument(
        StrFormat("adjacency: %llu nodes / %llu edges cannot fit in %zu "
                  "bytes",
                  static_cast<unsigned long long>(num_nodes),
                  static_cast<unsigned long long>(num_edges), bytes.size()));
  }
  offsets->clear();
  targets->clear();
  offsets->reserve(static_cast<size_t>(num_nodes) + 1);
  targets->reserve(static_cast<size_t>(num_edges));

  ByteReader r(bytes);
  offsets->push_back(0);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint64_t degree = 0;
    if (!r.GetVarint(&degree)) {
      return Status::InvalidArgument("adjacency: truncated degree");
    }
    if (degree > r.remaining() ||
        degree > num_edges - targets->size()) {
      return Status::InvalidArgument("adjacency: degree overruns section");
    }
    uint64_t prev = 0;
    for (uint64_t i = 0; i < degree; ++i) {
      uint64_t delta = 0;
      if (!r.GetVarint(&delta)) {
        return Status::InvalidArgument("adjacency: truncated target");
      }
      const uint64_t target = (i == 0) ? delta : prev + delta;
      if (target >= num_nodes) {
        return Status::InvalidArgument("adjacency: target out of range");
      }
      targets->push_back(static_cast<graph::PaperId>(target));
      prev = target;
    }
    offsets->push_back(targets->size());
  }
  if (targets->size() != num_edges) {
    return Status::InvalidArgument(
        "adjacency: edge count does not match header");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("adjacency: trailing bytes in section");
  }
  return Status::OK();
}

}  // namespace rpg::snapshot
