#include "snapshot/serving_state.h"

#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "graph/graph_io.h"
#include "snapshot/byte_io.h"
#include "snapshot/codec.h"

namespace rpg::snapshot {

namespace {

using graph::PaperId;

Status Malformed(const char* what) {
  return Status::InvalidArgument(
      StrFormat("snapshot: malformed %s section", what));
}

/// A fixed-width per-paper array section must be exactly n elements.
template <typename T>
Result<std::vector<T>> DecodeArray(std::span<const uint8_t> bytes, size_t n,
                                   const char* what) {
  if (bytes.size() != n * sizeof(T)) return Malformed(what);
  std::vector<T> out(n);
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

Result<std::vector<std::string>> DecodeTitles(std::span<const uint8_t> bytes,
                                              size_t n) {
  ByteReader r(bytes);
  uint64_t count = 0;
  if (!r.Get(&count) || count != n) return Malformed("titles");
  if ((count + 1) * sizeof(uint64_t) > r.remaining()) {
    return Malformed("titles");
  }
  std::vector<uint64_t> offsets(count + 1);
  if (!r.GetBytes(offsets.data(), offsets.size() * sizeof(uint64_t))) {
    return Malformed("titles");
  }
  const size_t blob_size = r.remaining();
  if (offsets.front() != 0 || offsets.back() != blob_size) {
    return Malformed("titles");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) return Malformed("titles");
  }
  std::vector<std::string> titles;
  titles.reserve(n);
  const char* blob =
      reinterpret_cast<const char*>(bytes.data() + (bytes.size() - blob_size));
  for (size_t i = 0; i < n; ++i) {
    titles.emplace_back(blob + offsets[i], offsets[i + 1] - offsets[i]);
  }
  return titles;
}

Result<text::Vocabulary> DecodeVocab(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  uint64_t count = 0;
  // Each term costs at least one length byte, so a claimed count larger
  // than the section itself is a lie — reject before reserving.
  if (!r.Get(&count) || count > r.remaining()) return Malformed("vocab");
  std::vector<std::string> terms;
  terms.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string term;
    if (!r.GetString(&term)) return Malformed("vocab");
    terms.push_back(std::move(term));
  }
  if (!r.AtEnd()) return Malformed("vocab");
  return text::Vocabulary::FromTerms(std::move(terms));
}

Result<std::vector<std::vector<search::Posting>>> DecodePostings(
    std::span<const uint8_t> bytes, size_t num_terms, size_t num_docs) {
  ByteReader r(bytes);
  std::vector<std::vector<search::Posting>> postings(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    uint64_t count = 0;
    if (!r.GetVarint(&count)) return Malformed("postings");
    // A posting is at least one delta byte plus a 4-byte tf.
    if (count > r.remaining() / 5) return Malformed("postings");
    auto& list = postings[t];
    list.reserve(static_cast<size_t>(count));
    uint64_t doc = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t delta = 0;
      float tf = 0.0f;
      if (!r.GetVarint(&delta) || !r.Get(&tf)) return Malformed("postings");
      doc = (i == 0) ? delta : doc + delta;
      if (doc >= num_docs) return Malformed("postings");
      list.push_back({static_cast<search::DocId>(doc), tf});
    }
  }
  if (!r.AtEnd()) return Malformed("postings");
  return postings;
}

}  // namespace

Result<std::unique_ptr<ServingState>> ServingState::Load(
    const std::string& path, const SnapshotReaderOptions& options) {
  auto state = std::unique_ptr<ServingState>(new ServingState());
  RPG_ASSIGN_OR_RETURN(state->reader_, SnapshotReader::Open(path, options));
  RPG_RETURN_NOT_OK(state->Build());
  return state;
}

Result<std::unique_ptr<ServingState>> ServingState::LoadFromBuffer(
    std::vector<uint8_t> bytes, const SnapshotReaderOptions& options) {
  auto state = std::unique_ptr<ServingState>(new ServingState());
  RPG_ASSIGN_OR_RETURN(state->reader_,
                       SnapshotReader::FromBuffer(std::move(bytes), options));
  RPG_RETURN_NOT_OK(state->Build());
  return state;
}

Status ServingState::Build() {
  const SnapshotReader& reader = *reader_;
  const uint64_t num_papers = reader.num_papers();
  if (num_papers > std::numeric_limits<PaperId>::max()) {
    return Status::InvalidArgument("snapshot: paper count exceeds PaperId");
  }
  const size_t n = static_cast<size_t>(num_papers);

  // Graph: decode out-adjacency, rebuild in-adjacency as the transpose.
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kGraphOut));
    std::vector<uint64_t> offsets;
    std::vector<PaperId> targets;
    RPG_RETURN_NOT_OK(DecodeAdjacency(bytes, num_papers, reader.num_edges(),
                                      &offsets, &targets));
    RPG_ASSIGN_OR_RETURN(
        graph_, graph::GraphIo::FromOutCsr(std::move(offsets),
                                           std::move(targets)));
  }

  // Per-paper arrays.
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kTitles));
    RPG_ASSIGN_OR_RETURN(titles_, DecodeTitles(bytes, n));
  }
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kYears));
    RPG_ASSIGN_OR_RETURN(years_, DecodeArray<uint16_t>(bytes, n, "years"));
  }
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kVenueScores));
    RPG_ASSIGN_OR_RETURN(venue_scores_,
                         DecodeArray<double>(bytes, n, "venue_scores"));
  }
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kPagerank));
    RPG_ASSIGN_OR_RETURN(pagerank_, DecodeArray<double>(bytes, n, "pagerank"));
  }

  // Inverted index + engine.
  text::Vocabulary vocab;
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kVocab));
    RPG_ASSIGN_OR_RETURN(vocab, DecodeVocab(bytes));
  }
  std::vector<std::vector<search::Posting>> postings;
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kPostings));
    RPG_ASSIGN_OR_RETURN(postings, DecodePostings(bytes, vocab.size(), n));
  }
  std::vector<float> doc_lengths;
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kDocLengths));
    RPG_ASSIGN_OR_RETURN(doc_lengths,
                         DecodeArray<float>(bytes, n, "doc_lengths"));
  }
  search::InvertedIndexOptions index_options;
  double avg_doc_length = 0.0;
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kIndexMeta));
    ByteReader r(bytes);
    if (!r.Get(&avg_doc_length) || !r.Get(&index_options.title_weight) ||
        !r.AtEnd()) {
      return Malformed("index_meta");
    }
  }
  search::EngineProfile profile;
  uint64_t max_citations = 0;
  int32_t min_year = 0, max_year = 0;
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kEngineMeta));
    ByteReader r(bytes);
    if (!r.Get(&max_citations) || !r.Get(&min_year) || !r.Get(&max_year) ||
        !r.Get(&profile.bm25.k1) || !r.Get(&profile.bm25.b) ||
        !r.Get(&profile.citation_boost) || !r.Get(&profile.recency_boost) ||
        !r.GetString(&profile.name) || !r.AtEnd()) {
      return Malformed("engine_meta");
    }
  }

  // Embeddings: options + the zero-copy matrix view.
  match::HashedEmbedderOptions embed_options;
  std::span<const float> embeddings;
  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kEmbedMeta));
    ByteReader r(bytes);
    uint32_t dim = 0, use_bigrams = 0;
    if (!r.Get(&dim) || !r.Get(&use_bigrams) ||
        !r.Get(&embed_options.title_weight) || !r.AtEnd()) {
      return Malformed("embed_meta");
    }
    if (dim == 0 || dim > (1u << 20)) return Malformed("embed_meta");
    embed_options.dim = static_cast<int>(dim);
    embed_options.use_bigrams = use_bigrams != 0;
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> matrix,
                         reader.Section(SectionId::kEmbeddings));
    if (matrix.size() != n * static_cast<size_t>(dim) * sizeof(float)) {
      return Malformed("embeddings");
    }
    embeddings = {reinterpret_cast<const float*>(matrix.data()),
                  matrix.size() / sizeof(float)};
  }

  {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kParams));
    ByteReader r(bytes);
    if (!r.Get(&params_.alpha) || !r.Get(&params_.beta) ||
        !r.Get(&params_.gamma) || !r.Get(&params_.a) || !r.Get(&params_.b) ||
        !r.AtEnd()) {
      return Malformed("params");
    }
  }

  if (reader.relabeled()) {
    RPG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                         reader.Section(SectionId::kIdMap));
    RPG_ASSIGN_OR_RETURN(new_to_old_, DecodeArray<PaperId>(bytes, n, "id_map"));
    // Must be a permutation of [0, n): anything else silently corrupts
    // every mapped-back result.
    std::vector<uint8_t> seen(n, 0);
    for (PaperId old_id : new_to_old_) {
      if (old_id >= n || seen[old_id]) return Malformed("id_map");
      seen[old_id] = 1;
    }
  }

  // Wire the substrate together. Per-doc metadata the engine consults at
  // query time: year from kYears, citation count = in-degree (the
  // CitationGraph::CitationCount identity the build side also uses).
  std::vector<search::EngineDocument> docs(n);
  for (size_t i = 0; i < n; ++i) {
    docs[i].year = years_[i];
    docs[i].citations = graph_.InDegree(static_cast<PaperId>(i));
  }
  RPG_ASSIGN_OR_RETURN(
      search::InvertedIndex index,
      search::InvertedIndex::Restore(index_options, std::move(vocab),
                                     std::move(postings),
                                     std::move(doc_lengths), avg_doc_length));
  RPG_ASSIGN_OR_RETURN(
      engine_, search::SearchEngine::Restore(std::move(docs), profile,
                                             std::move(index), max_citations,
                                             min_year, max_year));
  matcher_ = match::SemanticMatcher::FromPrecomputed(embeddings, n,
                                                     embed_options);
  weights_ = std::make_unique<rank::WeightModel>(&graph_, pagerank_,
                                                 venue_scores_, params_);
  repager_ = std::make_unique<core::RePaGer>(&graph_, engine_.get(),
                                             weights_.get(), &years_);
  return Status::OK();
}

}  // namespace rpg::snapshot
