#ifndef RPG_SNAPSHOT_CHECKSUM_H_
#define RPG_SNAPSHOT_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace rpg::snapshot {

/// FNV-1a 64-bit over a byte range — the same stable, dependency-free
/// hash the embedder uses for feature hashing. Fast enough to checksum
/// every decoded snapshot section at load time; the multi-hundred-MB
/// embedding section is only verified on demand (see SnapshotReader).
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_CHECKSUM_H_
