#ifndef RPG_SNAPSHOT_FORMAT_H_
#define RPG_SNAPSHOT_FORMAT_H_

/// \file
/// On-disk layout of the serving snapshot (docs/snapshot.md has the
/// diagram). One file holds the complete immutable serving state:
///
///   [header 80 B][section]...[section][TOC]
///
/// The fixed-size little-endian header names a section table (TOC) at
/// the end of the file; each 32-byte TOC entry carries a section id, its
/// absolute offset (8-byte aligned), size, and FNV-1a checksum. Readers
/// validate header magic/version/checksum, then the TOC checksum and
/// every entry's bounds, before touching any section — a truncated or
/// bit-flipped file fails closed with a typed InvalidArgument.
///
/// Versioning rules: readers accept exactly kVersion. Any layout change
/// (new required section, changed encoding) bumps kVersion; adding an
/// OPTIONAL section id does not, because unknown ids are ignored by
/// readers (forward-compatible for additive features).

#include <cstdint>

namespace rpg::snapshot {

/// "RPGSNAP1" as little-endian u64.
inline constexpr uint64_t kMagic = 0x3150414E53475052ULL;
inline constexpr uint32_t kVersion = 1;

/// Header flag bits.
inline constexpr uint32_t kFlagRelabeled = 1u << 0;

/// Fixed 80-byte file header. `header_checksum` covers the first 72
/// bytes (everything before itself).
struct SnapshotHeader {
  uint64_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t flags = 0;
  uint64_t num_papers = 0;
  uint64_t num_edges = 0;
  /// Provenance only: the corpus generator seed (0 when unknown).
  uint64_t corpus_seed = 0;
  uint32_t section_count = 0;
  uint32_t pad0 = 0;
  uint64_t toc_offset = 0;
  uint64_t toc_size = 0;
  uint64_t toc_checksum = 0;
  uint64_t header_checksum = 0;
};
static_assert(sizeof(SnapshotHeader) == 80);
inline constexpr uint64_t kHeaderSize = sizeof(SnapshotHeader);

/// Section identifiers. Required sections must all be present; optional
/// ones depend on header flags. Unknown ids are skipped by readers.
enum class SectionId : uint32_t {
  /// Varint/delta-encoded out-adjacency (codec.h). In-edges are the
  /// exact transpose, rebuilt at load via a counting sort — storing one
  /// direction halves the graph bytes and makes inconsistency
  /// impossible by construction.
  kGraphOut = 1,
  /// u64 count, (count+1) u64 blob offsets, then the UTF-8 title blob.
  kTitles = 2,
  kYears = 3,        ///< u16[n] publication years
  kVenueScores = 4,  ///< f64[n] venue scores in [0, 1]
  kPagerank = 5,     ///< f64[n] max-normalized global PageRank
  kVocab = 6,        ///< u64 count, then per term varint len + bytes
  /// Per term: varint posting count, then doc-id delta varints (first
  /// absolute) each followed by a raw f32 weighted term frequency.
  kPostings = 7,
  kDocLengths = 8,   ///< f32[n] weighted document lengths
  kIndexMeta = 9,    ///< f64 avg_doc_length, f64 title_weight
  /// Engine scalars: u64 max_citations, i32 min/max year, f64 bm25 k1,
  /// f64 bm25 b, f64 citation_boost, f64 recency_boost, varint-string
  /// profile name. Per-doc years come from kYears; per-doc citation
  /// counts are the graph's in-degrees.
  kEngineMeta = 10,
  /// u32 dim, u32 use_bigrams, f64 title_weight (embedder options).
  kEmbedMeta = 11,
  /// Raw f32[n * dim] row-major document embeddings. 8-byte aligned and
  /// served zero-copy straight out of the mapping (lazy page-in); its
  /// checksum is verified only by VerifyAllChecksums(), not at load.
  kEmbeddings = 12,
  kParams = 13,      ///< f64[5] NEWST {alpha, beta, gamma, a, b}
  /// u32[n] new-id -> original-id map; present iff kFlagRelabeled.
  kIdMap = 14,
};

/// One TOC entry. `offset` is absolute from file start, 8-byte aligned;
/// `checksum` is FNV-1a over the section's `size` bytes.
struct SectionEntry {
  uint32_t id = 0;
  uint32_t pad0 = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == 32);

/// Defensive cap: no valid snapshot has more sections than ids exist
/// (with margin for future optional ids).
inline constexpr uint32_t kMaxSections = 64;

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_FORMAT_H_
