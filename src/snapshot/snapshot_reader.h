#ifndef RPG_SNAPSHOT_SNAPSHOT_READER_H_
#define RPG_SNAPSHOT_SNAPSHOT_READER_H_

/// \file
/// mmap-based zero-copy snapshot reader. Open() maps the file read-only
/// and validates header magic/version/checksum, the TOC, every entry's
/// bounds, and (by default) every section checksum except the large
/// embeddings matrix — that one stays lazy so opening a multi-GB
/// snapshot does not fault every page in; VerifyAllChecksums() does the
/// full pass on demand. Any inconsistency fails closed with a typed
/// InvalidArgument before a single section byte is interpreted.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "snapshot/format.h"

namespace rpg::snapshot {

struct SnapshotReaderOptions {
  /// Verify per-section checksums at open (all sections except
  /// kEmbeddings, which is always deferred to VerifyAllChecksums so
  /// lazy page-in survives). Header and TOC checksums are always
  /// verified regardless.
  bool verify_checksums = true;
};

/// Validated view over one snapshot file (or an in-memory buffer for
/// tests and the fuzz harness). Sections are raw byte spans into the
/// mapping; decoding them is the caller's job (ServingState).
class SnapshotReader {
 public:
  static Result<std::unique_ptr<SnapshotReader>> Open(
      const std::string& path, const SnapshotReaderOptions& options = {});

  /// Same validation over an owned buffer — no filesystem involved.
  static Result<std::unique_ptr<SnapshotReader>> FromBuffer(
      std::vector<uint8_t> bytes, const SnapshotReaderOptions& options = {});

  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  uint64_t num_papers() const { return header_.num_papers; }
  uint64_t num_edges() const { return header_.num_edges; }
  uint64_t corpus_seed() const { return header_.corpus_seed; }
  uint32_t flags() const { return header_.flags; }
  bool relabeled() const { return (header_.flags & kFlagRelabeled) != 0; }
  uint64_t file_size() const { return data_.size(); }

  bool HasSection(SectionId id) const;

  /// The section's bytes, or InvalidArgument when absent.
  Result<std::span<const uint8_t>> Section(SectionId id) const;

  /// Verifies every section checksum, including kEmbeddings (faults in
  /// the whole file). InvalidArgument names the first bad section.
  Status VerifyAllChecksums() const;

 private:
  SnapshotReader() = default;

  /// Runs the full validation ladder over `data_`.
  Status Validate(const SnapshotReaderOptions& options,
                  const std::string& context);

  std::span<const uint8_t> data_;
  SnapshotHeader header_;
  std::vector<SectionEntry> sections_;

  /// Exactly one of these backs `data_`.
  void* mmap_base_ = nullptr;
  size_t mmap_size_ = 0;
  std::vector<uint8_t> owned_;
};

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_SNAPSHOT_READER_H_
