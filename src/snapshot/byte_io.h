#ifndef RPG_SNAPSHOT_BYTE_IO_H_
#define RPG_SNAPSHOT_BYTE_IO_H_

/// \file
/// Bounds-checked little-endian primitives shared by the snapshot writer
/// and reader. The reader side never trusts a length it just decoded:
/// every Get* checks the remaining byte count first and fails by
/// returning false, so a truncated or hostile section runs out of input
/// instead of reading out of bounds (the graph_io resize-bomb lesson,
/// applied from the start).

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace rpg::snapshot {

static_assert(std::endian::native == std::endian::little,
              "snapshot format assumes a little-endian host");

/// Appends fixed-width scalars and varints to a growing byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutBytes(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutBytes(&value, sizeof(value));
  }

  /// LEB128-style base-128 varint, low 7 bits first.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->push_back(static_cast<uint8_t>(v));
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    PutBytes(s.data(), s.size());
  }

  size_t size() const { return out_->size(); }

 private:
  std::vector<uint8_t>* out_;
};

/// Sequential reader over an immutable byte span. Every accessor
/// bounds-checks; on failure the reader stays usable but `ok()` callers
/// should bail with InvalidArgument.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool GetBytes(void* out, size_t size) {
    if (size > remaining()) return false;
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return GetBytes(out, sizeof(T));
  }

  /// Decodes a varint; rejects truncation and encodings longer than 10
  /// bytes (no 64-bit value needs more).
  bool GetVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return false;
      uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // The tenth byte may only contribute the top bit of the value.
        if (shift == 63 && byte > 1) return false;
        *out = v;
        return true;
      }
    }
    return false;  // unterminated after 10 bytes
  }

  /// Reads a varint-length-prefixed string; the claimed length is
  /// checked against the remaining bytes before any allocation.
  bool GetString(std::string* out) {
    uint64_t len = 0;
    if (!GetVarint(&len) || len > remaining()) return false;
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace rpg::snapshot

#endif  // RPG_SNAPSHOT_BYTE_IO_H_
