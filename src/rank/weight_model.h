#ifndef RPG_RANK_WEIGHT_MODEL_H_
#define RPG_RANK_WEIGHT_MODEL_H_

#include <vector>

#include "graph/citation_graph.h"

namespace rpg::rank {

/// The NEWST constants of Eq. (2) and Eq. (3); defaults are the paper's
/// experimental setting {α, β, γ, a, b} = {3, 2, 5, 0.7, 0.3} (§VI-A).
struct NewstParams {
  double alpha = 3.0;
  double beta = 2.0;
  double gamma = 5.0;
  double a = 0.7;
  double b = 0.3;
};

/// Node and edge weights for the weighted citation graph (§IV-A step 2).
///
///   w(i)    = γ / (a · pgscore(i) + b · venue(i))          (Eq. 3)
///   c(i, j) = α / con(i, j)^β                              (Eq. 2)
///
/// pgscore is the max-normalized PageRank over the full citation network
/// and venue(i) the CCF/AMiner venue score in [0, 1]. The paper measures
/// con(i, j) as the number of times paper j is mentioned in paper i's
/// full text (or inversely); full text is not modeled here, so con is
/// derived from the citation structure: 1 for the citation itself plus
/// the number of common graph neighbors (a standard co-citation /
/// bibliographic-coupling relatedness proxy — see DESIGN.md §2).
class WeightModel {
 public:
  /// `pagerank_norm` and `venue_scores` are per-paper arrays (same size
  /// as g.num_nodes()), both on a [0, 1] scale. The graph must outlive
  /// the model.
  WeightModel(const graph::CitationGraph* g, std::vector<double> pagerank_norm,
              std::vector<double> venue_scores, const NewstParams& params = {});

  /// Eq. (3). The denominator is floored so papers with no venue and
  /// negligible PageRank keep a finite weight.
  double NodeWeight(graph::PaperId i) const;

  /// Relatedness count used by Eq. (2): 1 + common neighbors (capped).
  int Con(graph::PaperId i, graph::PaperId j) const;

  /// Eq. (2).
  double EdgeCost(graph::PaperId i, graph::PaperId j) const;

  const NewstParams& params() const { return params_; }

  /// Maximum possible node weight (γ / floor); handy for tests.
  double MaxNodeWeight() const;

 private:
  const graph::CitationGraph* g_;
  std::vector<double> pagerank_norm_;
  std::vector<double> venue_scores_;
  NewstParams params_;

  static constexpr double kDenomFloor = 0.02;
  static constexpr int kConCap = 7;
};

}  // namespace rpg::rank

#endif  // RPG_RANK_WEIGHT_MODEL_H_
