#ifndef RPG_RANK_WEIGHT_MODEL_H_
#define RPG_RANK_WEIGHT_MODEL_H_

#include <vector>

#include "common/intersect.h"
#include "graph/citation_graph.h"

namespace rpg::rank {

/// The NEWST constants of Eq. (2) and Eq. (3); defaults are the paper's
/// experimental setting {α, β, γ, a, b} = {3, 2, 5, 0.7, 0.3} (§VI-A).
struct NewstParams {
  double alpha = 3.0;
  double beta = 2.0;
  double gamma = 5.0;
  double a = 0.7;
  double b = 0.3;
};

class WeightModel;

/// Reusable per-query scratch for the dense-bitmap Con() path.
///
/// Edge-cost assignment evaluates Con(i, j) for every neighbor j of one
/// source row i before moving to the next row (core::BuildWeightedSubgraph).
/// When row i is high-degree, re-merging i's adjacency for every j is the
/// dominant cost of the whole pipeline; the scratch instead stamps i's
/// out- and in-lists into two dense bitmaps ONCE per source and answers
/// each Con(i, j) by probing j's (typically short) lists in O(|adj(j)|).
/// Switching sources unstamps the previous lists (O(degree), not
/// O(universe)), so a long-lived scratch — one per core::QueryScratch —
/// never pays a full clear and is allocation-free after warm-up.
///
/// Low-degree sources skip the stamping and fall through to the adaptive
/// merge/gallop kernels, so Con(i, j, &scratch) is never slower than
/// Con(i, j) — and, by the shared min(|a ∩ b|, cap) kernel contract,
/// always returns the identical count (pinned edge-for-edge by
/// tests/core/golden_fingerprint_test.cc).
class ConScratch {
 public:
  ConScratch() = default;
  ConScratch(const ConScratch&) = delete;
  ConScratch& operator=(const ConScratch&) = delete;

 private:
  friend class WeightModel;

  static constexpr graph::PaperId kNoSource = 0xFFFFFFFFu;

  /// Stamp source i's adjacency if it is dense enough to pay off;
  /// no-op when (graph, i) is already the stamped source.
  void SetSource(const graph::CitationGraph& g, graph::PaperId i);

  intersect::NeighborBitmap out_bits_;
  intersect::NeighborBitmap in_bits_;
  const graph::CitationGraph* g_ = nullptr;
  graph::PaperId source_ = kNoSource;
  bool stamped_ = false;
};

/// Node and edge weights for the weighted citation graph (§IV-A step 2).
///
///   w(i)    = γ / (a · pgscore(i) + b · venue(i))          (Eq. 3)
///   c(i, j) = α / con(i, j)^β                              (Eq. 2)
///
/// pgscore is the max-normalized PageRank over the full citation network
/// and venue(i) the CCF/AMiner venue score in [0, 1]. The paper measures
/// con(i, j) as the number of times paper j is mentioned in paper i's
/// full text (or inversely); full text is not modeled here, so con is
/// derived from the citation structure: 1 for the citation itself plus
/// the number of common graph neighbors (a standard co-citation /
/// bibliographic-coupling relatedness proxy — see DESIGN.md §2).
class WeightModel {
 public:
  /// `pagerank_norm` and `venue_scores` are per-paper arrays (same size
  /// as g.num_nodes()), both on a [0, 1] scale. The graph must outlive
  /// the model.
  WeightModel(const graph::CitationGraph* g, std::vector<double> pagerank_norm,
              std::vector<double> venue_scores, const NewstParams& params = {});

  /// Eq. (3). The denominator is floored so papers with no venue and
  /// negligible PageRank keep a finite weight.
  double NodeWeight(graph::PaperId i) const;

  /// Relatedness count used by Eq. (2): 1 + common neighbors, capped.
  ///
  /// Cap semantics, spelled out because every intersection kernel and
  /// both call paths must honor them identically:
  ///  1. shared references (out ∩ out) are counted first, clamped to
  ///     kConCap — i.e. exactly min(|out_i ∩ out_j|, kConCap);
  ///  2. shared citers (in ∩ in) are counted only if budget remains,
  ///     clamped to the remainder kConCap - (phase-1 count);
  ///  3. the result is 1 + min(phase1 + phase2, kConCap - 1), so Con is
  ///     always in [1, kConCap] and the kernels may early-exit the
  ///     instant a phase's clamp is reached.
  /// Because each phase's clamp is a semantic min() (not a scan cutoff),
  /// the result is independent of kernel choice and of evaluation
  /// order within a phase; Con(i, j) == Con(j, i) by the symmetry of
  /// both intersections (regression-tested in tests/rank/rank_test.cc).
  int Con(graph::PaperId i, graph::PaperId j) const;

  /// Same count via `scratch`'s dense-bitmap fast path (stamped once per
  /// source i); identical result by construction, cheaper when many j
  /// are evaluated against one high-degree i.
  int Con(graph::PaperId i, graph::PaperId j, ConScratch* scratch) const;

  /// Eq. (2).
  double EdgeCost(graph::PaperId i, graph::PaperId j) const;

  /// Eq. (2) through the scratch fast path; same value, same clamp.
  double EdgeCost(graph::PaperId i, graph::PaperId j,
                  ConScratch* scratch) const;

  const NewstParams& params() const { return params_; }

  /// Maximum possible node weight (γ / floor); handy for tests.
  double MaxNodeWeight() const;

 private:
  const graph::CitationGraph* g_;
  std::vector<double> pagerank_norm_;
  std::vector<double> venue_scores_;
  NewstParams params_;

  static constexpr double kDenomFloor = 0.02;
  static constexpr int kConCap = 7;
};

}  // namespace rpg::rank

#endif  // RPG_RANK_WEIGHT_MODEL_H_
