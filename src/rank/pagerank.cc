#include "rank/pagerank.h"

#include <algorithm>
#include <cmath>

namespace rpg::rank {

namespace {

/// Shared power iteration. `out_degree(u)` and `in_neighbors(v, fn)` are
/// provided by the caller so the same loop serves full graphs and
/// subgraphs.
template <typename OutDegreeFn, typename ForEachInNeighborFn>
std::vector<double> PowerIterate(size_t n, OutDegreeFn out_degree,
                                 ForEachInNeighborFn for_each_in_neighbor,
                                 const PageRankOptions& options) {
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double base = (1.0 - options.damping) / static_cast<double>(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (size_t u = 0; u < n; ++u) {
      if (out_degree(u) == 0) dangling += rank[u];
    }
    double dangling_share =
        options.damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for_each_in_neighbor(v, [&](size_t u) {
        sum += rank[u] / static_cast<double>(out_degree(u));
      });
      next[v] = base + dangling_share + options.damping * sum;
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace

std::vector<double> PageRank(const graph::CitationGraph& g,
                             const PageRankOptions& options) {
  return PowerIterate(
      g.num_nodes(),
      [&](size_t u) { return g.OutDegree(static_cast<graph::PaperId>(u)); },
      [&](size_t v, auto&& fn) {
        for (graph::PaperId u : g.InNeighbors(static_cast<graph::PaperId>(v)))
          fn(u);
      },
      options);
}

std::vector<double> PageRankOnSubgraph(const graph::Subgraph& sg,
                                       const PageRankOptions& options) {
  return PowerIterate(
      sg.num_nodes(),
      [&](size_t u) {
        return sg.OutNeighbors(static_cast<uint32_t>(u)).size();
      },
      [&](size_t v, auto&& fn) {
        for (uint32_t u : sg.InNeighbors(static_cast<uint32_t>(v))) fn(u);
      },
      options);
}

std::vector<double> NormalizeByMax(std::vector<double> scores) {
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  if (max_score > 0.0) {
    for (double& s : scores) s /= max_score;
  }
  return scores;
}

}  // namespace rpg::rank
