#include "rank/weight_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpg::rank {

WeightModel::WeightModel(const graph::CitationGraph* g,
                         std::vector<double> pagerank_norm,
                         std::vector<double> venue_scores,
                         const NewstParams& params)
    : g_(g),
      pagerank_norm_(std::move(pagerank_norm)),
      venue_scores_(std::move(venue_scores)),
      params_(params) {
  RPG_CHECK(g_ != nullptr);
  RPG_CHECK(pagerank_norm_.size() == g_->num_nodes());
  RPG_CHECK(venue_scores_.size() == g_->num_nodes());
}

double WeightModel::NodeWeight(graph::PaperId i) const {
  double denom =
      params_.a * pagerank_norm_[i] + params_.b * venue_scores_[i];
  denom = std::max(denom, kDenomFloor);
  return params_.gamma / denom;
}

namespace {

/// Count of common elements between two sorted spans, early-exits at cap.
int CountCommonSorted(std::span<const graph::PaperId> a,
                      std::span<const graph::PaperId> b, int cap) {
  int count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size() && count < cap) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace

int WeightModel::Con(graph::PaperId i, graph::PaperId j) const {
  // 1 for the citation relation itself + bibliographic coupling (shared
  // references) + co-citation (shared citers), capped.
  int common = CountCommonSorted(g_->OutNeighbors(i), g_->OutNeighbors(j),
                                 kConCap);
  if (common < kConCap) {
    common += CountCommonSorted(g_->InNeighbors(i), g_->InNeighbors(j),
                                kConCap - common);
  }
  return 1 + std::min(common, kConCap - 1);
}

double WeightModel::EdgeCost(graph::PaperId i, graph::PaperId j) const {
  double con = static_cast<double>(Con(i, j));
  return params_.alpha / std::pow(con, params_.beta);
}

double WeightModel::MaxNodeWeight() const { return params_.gamma / kDenomFloor; }

}  // namespace rpg::rank
