#include "rank/weight_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpg::rank {

namespace {

/// Stamp-worthiness threshold: below this combined degree the O(degree)
/// stamp/unstamp churn costs more than the adaptive kernels save. 64 ids
/// is one bitmap word's worth per list on average and matches the
/// kernels' block size; bench/bench_intersect.cpp covers both regimes.
constexpr size_t kBitmapMinDegree = 64;

}  // namespace

void ConScratch::SetSource(const graph::CitationGraph& g, graph::PaperId i) {
  if (g_ == &g && source_ == i) return;
  if (stamped_) {
    // O(degree) unstamp of the previous source — never a full clear.
    out_bits_.Unstamp(g_->OutNeighbors(source_));
    in_bits_.Unstamp(g_->InNeighbors(source_));
    stamped_ = false;
  }
  if (g_ != &g) {
    // Scratch moved to a different graph: the stamped lists are no
    // longer addressable, so fall back to the O(universe) recovery.
    out_bits_.Clear();
    in_bits_.Clear();
    g_ = &g;
  }
  source_ = i;
  auto out = g.OutNeighbors(i);
  auto in = g.InNeighbors(i);
  if (out.size() + in.size() >= kBitmapMinDegree) {
    out_bits_.EnsureUniverse(g.num_nodes());
    in_bits_.EnsureUniverse(g.num_nodes());
    out_bits_.Stamp(out);
    in_bits_.Stamp(in);
    stamped_ = true;
  }
}

WeightModel::WeightModel(const graph::CitationGraph* g,
                         std::vector<double> pagerank_norm,
                         std::vector<double> venue_scores,
                         const NewstParams& params)
    : g_(g),
      pagerank_norm_(std::move(pagerank_norm)),
      venue_scores_(std::move(venue_scores)),
      params_(params) {
  RPG_CHECK(g_ != nullptr);
  RPG_CHECK(pagerank_norm_.size() == g_->num_nodes());
  RPG_CHECK(venue_scores_.size() == g_->num_nodes());
}

double WeightModel::NodeWeight(graph::PaperId i) const {
  double denom =
      params_.a * pagerank_norm_[i] + params_.b * venue_scores_[i];
  denom = std::max(denom, kDenomFloor);
  return params_.gamma / denom;
}

int WeightModel::Con(graph::PaperId i, graph::PaperId j) const {
  // 1 for the citation relation itself + bibliographic coupling (shared
  // references) + co-citation (shared citers); see the header for the
  // exact two-phase cap contract.
  int common = static_cast<int>(intersect::CountCommon(
      g_->OutNeighbors(i), g_->OutNeighbors(j),
      static_cast<size_t>(kConCap)));
  if (common < kConCap) {
    common += static_cast<int>(intersect::CountCommon(
        g_->InNeighbors(i), g_->InNeighbors(j),
        static_cast<size_t>(kConCap - common)));
  }
  return 1 + std::min(common, kConCap - 1);
}

int WeightModel::Con(graph::PaperId i, graph::PaperId j,
                     ConScratch* scratch) const {
  if (scratch == nullptr) return Con(i, j);
  scratch->SetSource(*g_, i);
  if (!scratch->stamped_) return Con(i, j);
  int common = static_cast<int>(scratch->out_bits_.CountCommon(
      g_->OutNeighbors(j), static_cast<size_t>(kConCap)));
  if (common < kConCap) {
    common += static_cast<int>(scratch->in_bits_.CountCommon(
        g_->InNeighbors(j), static_cast<size_t>(kConCap - common)));
  }
  return 1 + std::min(common, kConCap - 1);
}

double WeightModel::EdgeCost(graph::PaperId i, graph::PaperId j) const {
  double con = static_cast<double>(Con(i, j));
  return params_.alpha / std::pow(con, params_.beta);
}

double WeightModel::EdgeCost(graph::PaperId i, graph::PaperId j,
                             ConScratch* scratch) const {
  double con = static_cast<double>(Con(i, j, scratch));
  return params_.alpha / std::pow(con, params_.beta);
}

double WeightModel::MaxNodeWeight() const { return params_.gamma / kDenomFloor; }

}  // namespace rpg::rank
