#ifndef RPG_RANK_PAGERANK_H_
#define RPG_RANK_PAGERANK_H_

#include <vector>

#include "graph/citation_graph.h"
#include "graph/subgraph.h"

namespace rpg::rank {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// Stop when the L1 change between iterations drops below this.
  double tolerance = 1e-9;
};

/// PageRank over the citation graph: importance flows from a citing paper
/// to the papers it cites (a citation is an endorsement), with dangling
/// mass redistributed uniformly. Returns one score per node; scores sum
/// to 1.
std::vector<double> PageRank(const graph::CitationGraph& g,
                             const PageRankOptions& options = {});

/// PageRank restricted to a subgraph (local ids).
std::vector<double> PageRankOnSubgraph(const graph::Subgraph& sg,
                                       const PageRankOptions& options = {});

/// Divides by the max so the top paper scores 1 (used by the node-weight
/// formula so pgscore and venue score share a scale). No-op on empty
/// input; all-zero input stays all-zero.
std::vector<double> NormalizeByMax(std::vector<double> scores);

}  // namespace rpg::rank

#endif  // RPG_RANK_PAGERANK_H_
