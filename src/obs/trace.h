#ifndef RPG_OBS_TRACE_H_
#define RPG_OBS_TRACE_H_

/// \file
/// Request-scoped tracing and stage timing for the serving path
/// (docs/observability.md). Two cooperating layers:
///
///  - A pipeline trace lives inside core::QueryScratch: RePaGer::Generate
///    records one span per pipeline stage (search, khop, subgraph, ...)
///    into a preallocated SpanSet and copies it onto the RePagerResult,
///    where it is cached together with the result. This is what feeds
///    per-stage latency histograms, the BENCH_table4 stage breakdown, and
///    the `stages` block of /api/path?debug=1.
///  - A request trace (TraceContext) is created per request by the
///    ui::HttpServer reactor and carried by shared_ptr through
///    RePagerService -> ServeEngine -> MicroBatcher -> BatchEngine, each
///    recording its serving-side span (cache lookup, single-flight wait,
///    batch queue, solve). The BatchEngine worker splices the pipeline
///    spans into the request trace (rebased onto the solve span), so a
///    slow-query log line shows the full life of the request.
///
/// Thread-safety model: a TraceContext is NOT internally synchronized.
/// It is touched strictly along the request's causal chain — poller
/// thread at dispatch, batcher dispatcher at batch assembly, pool worker
/// during the solve, completion-delivering thread at the end — and every
/// handoff on that chain already carries a happens-before edge (batcher
/// mutex, thread-pool queue, flight mutex, completion queue). Never share
/// one context between concurrent requests.
///
/// Cost model: span recording is two steady_clock reads and a bounded
/// array write; the per-request TraceContext is one allocation. The whole
/// layer compiles out with -DRPG_TRACING_DISABLED (CMake -DRPG_TRACING=OFF)
/// and can be switched off at runtime with SetTracingEnabled(false) or
/// RPG_TRACING=0 in the environment; measured overhead on the cache-miss
/// path is gated < 2% by scripts/check_bench_regression.py.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "steiner/stats.h"

namespace rpg {
class JsonWriter;
}

namespace rpg::obs {

/// Every stage a request can spend time in. Pipeline stages come first
/// (in execution order inside RePaGer::Generate); serving-layer stages
/// follow.
enum class Stage : uint8_t {
  kSearch = 0,       ///< engine seed retrieval (BM25 + semantic scoring)
  kKhop,             ///< 1st/2nd-order citation-neighborhood expansion
  kSubgraph,         ///< candidate filtering + CSR subgraph assembly
  kSeedRealloc,      ///< seed reallocation + co-occurrence evidence
  kEdgeCost,         ///< weighted-graph build (Eq. 2 edge costs)
  kSteiner,          ///< NEWST Steiner solve
  kReadingPath,      ///< tree -> reading-path construction
  kRank,             ///< ranked candidate-list assembly
  kCacheLookup,      ///< serve: QueryCache probe
  kSingleFlightWait, ///< serve: joined an identical in-flight compute
  kBatchQueue,       ///< serve: waited in the micro-batcher queue
  kSolve,            ///< serve: BatchEngine worker ran Generate
};

inline constexpr size_t kNumPipelineStages = 8;
inline constexpr size_t kNumStages = 12;

/// Stable lowercase identifier ("search", "khop", ...) used in JSON,
/// metric names, and the slow-query log.
const char* StageName(Stage stage);

/// The pipeline stages in execution order, for iteration.
inline constexpr Stage kPipelineStages[kNumPipelineStages] = {
    Stage::kSearch,   Stage::kKhop,    Stage::kSubgraph,
    Stage::kSeedRealloc, Stage::kEdgeCost, Stage::kSteiner,
    Stage::kReadingPath, Stage::kRank,
};

#if defined(RPG_TRACING_DISABLED)
inline constexpr bool kTracingCompiledIn = false;
inline bool TracingEnabled() { return false; }
inline void SetTracingEnabled(bool) {}
#else
inline constexpr bool kTracingCompiledIn = true;
/// Runtime kill switch, default on. First read honors the RPG_TRACING
/// environment variable ("0"/"off"/"false" disable). With tracing off no
/// contexts are created and no spans are recorded anywhere.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);
#endif

/// One timed span. Times are nanoseconds relative to the owning
/// context's origin (steady clock), so records stay meaningful when a
/// SpanSet is copied or rebased.
struct SpanRecord {
  Stage stage = Stage::kSearch;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Stage-specific counter: engine hits for search, visited nodes for
  /// khop, settled nodes for steiner, 1/0 hit flag for cache_lookup, ...
  uint64_t value = 0;
};

/// Fixed-capacity, trivially copyable span storage. Lives preallocated
/// inside QueryScratch (pipeline spans) and inside each TraceContext
/// (request spans); copying it onto a RePagerResult is a memcpy.
struct SpanSet {
  static constexpr uint32_t kCapacity = 24;

  SpanRecord spans[kCapacity];
  uint32_t count = 0;
  /// Spans that did not fit (never expected; a debugging tripwire).
  uint32_t dropped = 0;

  void Clear() { count = 0; dropped = 0; }

  void Add(Stage stage, uint64_t start_ns, uint64_t dur_ns, uint64_t value) {
    if (count >= kCapacity) {
      ++dropped;
      return;
    }
    spans[count++] = SpanRecord{stage, start_ns, dur_ns, value};
  }

  /// Sum of span durations for one stage, in milliseconds.
  double StageMs(Stage stage) const;
  /// Sum of all span durations, in milliseconds.
  double TotalMs() const;
};

/// The trace of one request (or of one pipeline run, when embedded in
/// QueryScratch): a 64-bit request id, a monotonic-clock origin, the
/// span records, the canonical query key (set by ServeEngine), and the
/// SteinerStats counters attached to the Steiner span's solve.
class TraceContext {
 public:
  using Clock = std::chrono::steady_clock;

  TraceContext() : origin_(Clock::now()) {}

  /// Process-wide monotonically increasing request ids (atomic counter,
  /// starts at 1).
  static uint64_t NextRequestId();

  /// Rewinds the context for reuse (QueryScratch keeps one across
  /// queries): clears spans, restarts the clock origin, sets the id.
  void Reset(uint64_t request_id);

  uint64_t request_id() const { return request_id_; }
  void set_request_id(uint64_t id) { request_id_ = id; }

  /// Nanoseconds since this context's origin.
  uint64_t NowNs() const;

  void AddSpan(Stage stage, uint64_t start_ns, uint64_t dur_ns,
               uint64_t value = 0) {
    spans_.Add(stage, start_ns, dur_ns, value);
  }

  /// Records a span from two absolute steady-clock points (used by the
  /// micro-batcher, whose queue timestamps predate its access to the
  /// context). Points before the origin clamp to 0.
  void AddSpanBetween(Stage stage, Clock::time_point start,
                      Clock::time_point end, uint64_t value = 0);

  /// Splices another span set in, shifting every span by `base_ns` —
  /// how a solve's pipeline spans (clocked from the solve's own start)
  /// land at the right offset inside the request trace.
  void AppendRebased(const SpanSet& set, uint64_t base_ns);

  const SpanSet& spans() const { return spans_; }

  void set_query_key(const std::string& key) { query_key_ = key; }
  const std::string& query_key() const { return query_key_; }

  void AttachSteinerStats(const steiner::SteinerStats& stats) {
    steiner_ = stats;
    has_steiner_ = true;
  }
  bool has_steiner_stats() const { return has_steiner_; }
  const steiner::SteinerStats& steiner_stats() const { return steiner_; }

 private:
  SpanSet spans_;
  Clock::time_point origin_;
  uint64_t request_id_ = 0;
  std::string query_key_;
  steiner::SteinerStats steiner_{};
  bool has_steiner_ = false;
};

/// RAII span: records [construction, destruction) into `ctx`. A null
/// context makes it a no-op (and skips the clock reads entirely).
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, Stage stage) : ctx_(ctx), stage_(stage) {
    if (ctx_ != nullptr) start_ = ctx_->NowNs();
  }
  ~ScopedSpan() {
    if (ctx_ != nullptr) {
      ctx_->AddSpan(stage_, start_, ctx_->NowNs() - start_, value_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_value(uint64_t value) { value_ = value; }

 private:
  TraceContext* ctx_;
  Stage stage_;
  uint64_t start_ = 0;
  uint64_t value_ = 0;
};

/// Emits the spans of `set` as a JSON array value
/// ([{"stage","start_ms","dur_ms","value"},...]) into `w`, which must be
/// in value position.
void AppendSpansJson(const SpanSet& set, JsonWriter* w);

/// One structured slow-query log line (without trailing newline):
///   {"slow_query":{"request_id":...,"query_key":"...","total_ms":...,
///    "threshold_ms":...,"spans":[...],"steiner":{...}?}}
std::string SlowQueryLogLine(const TraceContext& trace, double total_ms,
                             double threshold_ms);

/// Renders SlowQueryLogLine and writes it to stderr in one atomic
/// write(2) (via the logging layer), so concurrent slow-query lines and
/// ordinary log lines never shear into each other.
void EmitSlowQueryLog(const TraceContext& trace, double total_ms,
                      double threshold_ms);

}  // namespace rpg::obs

#endif  // RPG_OBS_TRACE_H_
