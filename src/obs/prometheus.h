#ifndef RPG_OBS_PROMETHEUS_H_
#define RPG_OBS_PROMETHEUS_H_

/// \file
/// Prometheus text exposition format (version 0.0.4) rendering helpers
/// for the `GET /metrics` endpoint (docs/observability.md). The format:
///
///   # TYPE rpg_requests_total counter
///   rpg_requests_total 42
///   # TYPE rpg_e2e_ms histogram
///   rpg_e2e_ms_bucket{le="0.01"} 0
///   ...
///   rpg_e2e_ms_bucket{le="+Inf"} 17
///   rpg_e2e_ms_sum 123.4
///   rpg_e2e_ms_count 17
///
/// Bucket lines are cumulative and monotone non-decreasing in `le`;
/// the +Inf bucket equals _count. serve::MetricsRegistry::ToPrometheus
/// composes these per-instrument appenders over its instrument maps.

#include <string>

#include "common/histogram.h"

namespace rpg::obs {

/// Maps an arbitrary instrument name onto the Prometheus metric-name
/// charset [a-zA-Z_:][a-zA-Z0-9_:]* (invalid characters become '_'; a
/// leading digit gets a '_' prefix; empty becomes "_").
std::string SanitizeMetricName(const std::string& name);

/// Escapes a label value for `{le="..."}` position: backslash, double
/// quote, and newline are escaped per the exposition format.
std::string EscapeLabelValue(const std::string& value);

/// Renders a sample value: integers without decimals, doubles with
/// enough precision to round-trip, "+Inf"/"-Inf"/"NaN" for non-finites.
std::string FormatMetricValue(double value);

/// Appends "# TYPE name counter" + one sample line.
void AppendCounter(const std::string& name, uint64_t value, std::string* out);

/// Appends "# TYPE name gauge" + one sample line.
void AppendGauge(const std::string& name, double value, std::string* out);

/// Appends a full histogram family: TYPE header, one cumulative
/// `_bucket{le="..."}` line per edge (the first edge's bucket carries
/// the underflow mass; `le` is read as <= while rpg buckets are
/// half-open [lo, hi), an off-by-one-sample approximation standard for
/// fixed-bucket exports), the +Inf bucket, `_sum`, and `_count`.
void AppendHistogram(const std::string& name, const Histogram& h,
                     std::string* out);

}  // namespace rpg::obs

#endif  // RPG_OBS_PROMETHEUS_H_
