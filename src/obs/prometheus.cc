#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>

namespace rpg::obs {

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) return "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

void AppendCounter(const std::string& name, uint64_t value,
                   std::string* out) {
  std::string n = SanitizeMetricName(name);
  out->append("# TYPE ").append(n).append(" counter\n");
  out->append(n).append(" ").append(std::to_string(value)).append("\n");
}

void AppendGauge(const std::string& name, double value, std::string* out) {
  std::string n = SanitizeMetricName(name);
  out->append("# TYPE ").append(n).append(" gauge\n");
  out->append(n).append(" ").append(FormatMetricValue(value)).append("\n");
}

void AppendHistogram(const std::string& name, const Histogram& h,
                     std::string* out) {
  std::string n = SanitizeMetricName(name);
  out->append("# TYPE ").append(n).append(" histogram\n");
  auto bucket_line = [&](const std::string& le, uint64_t cumulative) {
    out->append(n).append("_bucket{le=\"").append(le).append("\"} ");
    out->append(std::to_string(cumulative)).append("\n");
  };
  // Everything below the first edge is "<= first edge" as closely as a
  // fixed-bucket histogram can say.
  uint64_t cumulative = h.underflow();
  bucket_line(FormatMetricValue(h.bucket_lower_edge(0)), cumulative);
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    cumulative += h.bucket_count(i);
    bucket_line(FormatMetricValue(h.bucket_upper_edge(i)), cumulative);
  }
  bucket_line("+Inf", h.total());
  out->append(n).append("_sum ").append(FormatMetricValue(h.sum()));
  out->append("\n");
  out->append(n).append("_count ").append(std::to_string(h.total()));
  out->append("\n");
}

}  // namespace rpg::obs
