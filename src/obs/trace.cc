#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/json_writer.h"
#include "common/logging.h"

namespace rpg::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kSearch:
      return "search";
    case Stage::kKhop:
      return "khop";
    case Stage::kSubgraph:
      return "subgraph";
    case Stage::kSeedRealloc:
      return "seed_realloc";
    case Stage::kEdgeCost:
      return "edge_cost";
    case Stage::kSteiner:
      return "steiner";
    case Stage::kReadingPath:
      return "reading_path";
    case Stage::kRank:
      return "rank";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kSingleFlightWait:
      return "singleflight_wait";
    case Stage::kBatchQueue:
      return "batch_queue";
    case Stage::kSolve:
      return "solve";
  }
  return "unknown";
}

#if !defined(RPG_TRACING_DISABLED)
namespace {

bool InitialTracingEnabled() {
  const char* env = std::getenv("RPG_TRACING");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0 ||
           std::strcmp(env, "FALSE") == 0);
}

std::atomic<bool>& TracingFlag() {
  static std::atomic<bool> enabled{InitialTracingEnabled()};
  return enabled;
}

}  // namespace

bool TracingEnabled() {
  return TracingFlag().load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  TracingFlag().store(enabled, std::memory_order_relaxed);
}
#endif  // !RPG_TRACING_DISABLED

double SpanSet::StageMs(Stage stage) const {
  uint64_t ns = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (spans[i].stage == stage) ns += spans[i].dur_ns;
  }
  return static_cast<double>(ns) / 1e6;
}

double SpanSet::TotalMs() const {
  uint64_t ns = 0;
  for (uint32_t i = 0; i < count; ++i) ns += spans[i].dur_ns;
  return static_cast<double>(ns) / 1e6;
}

uint64_t TraceContext::NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void TraceContext::Reset(uint64_t request_id) {
  spans_.Clear();
  origin_ = Clock::now();
  request_id_ = request_id;
  query_key_.clear();
  has_steiner_ = false;
}

uint64_t TraceContext::NowNs() const {
  auto d = Clock::now() - origin_;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return ns < 0 ? 0 : static_cast<uint64_t>(ns);
}

void TraceContext::AddSpanBetween(Stage stage, Clock::time_point start,
                                  Clock::time_point end, uint64_t value) {
  auto rel = [this](Clock::time_point t) -> uint64_t {
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - origin_)
            .count();
    return ns < 0 ? 0 : static_cast<uint64_t>(ns);
  };
  uint64_t s = rel(start);
  uint64_t e = rel(end);
  spans_.Add(stage, s, e > s ? e - s : 0, value);
}

void TraceContext::AppendRebased(const SpanSet& set, uint64_t base_ns) {
  for (uint32_t i = 0; i < set.count; ++i) {
    const SpanRecord& r = set.spans[i];
    spans_.Add(r.stage, base_ns + r.start_ns, r.dur_ns, r.value);
  }
  spans_.dropped += set.dropped;
}

void AppendSpansJson(const SpanSet& set, JsonWriter* w) {
  w->BeginArray();
  for (uint32_t i = 0; i < set.count; ++i) {
    const SpanRecord& r = set.spans[i];
    w->BeginObject();
    w->Key("stage").String(StageName(r.stage));
    w->Key("start_ms").Double(static_cast<double>(r.start_ns) / 1e6);
    w->Key("dur_ms").Double(static_cast<double>(r.dur_ns) / 1e6);
    w->Key("value").UInt(r.value);
    w->EndObject();
  }
  w->EndArray();
}

std::string SlowQueryLogLine(const TraceContext& trace, double total_ms,
                             double threshold_ms) {
  JsonWriter w;
  w.BeginObject();
  w.Key("slow_query").BeginObject();
  w.Key("request_id").UInt(trace.request_id());
  w.Key("query_key").String(trace.query_key());
  w.Key("total_ms").Double(total_ms);
  w.Key("threshold_ms").Double(threshold_ms);
  w.Key("spans");
  AppendSpansJson(trace.spans(), &w);
  if (trace.has_steiner_stats()) {
    const steiner::SteinerStats& s = trace.steiner_stats();
    w.Key("steiner").BeginObject();
    w.Key("nodes_settled").UInt(s.nodes_settled);
    w.Key("heap_pushes").UInt(s.heap_pushes);
    w.Key("closure_edges").UInt(s.closure_edges);
    w.Key("dijkstra_runs").UInt(s.dijkstra_runs);
    w.Key("closure_seconds").Double(s.closure_seconds);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void EmitSlowQueryLog(const TraceContext& trace, double total_ms,
                      double threshold_ms) {
  internal::WriteLogLine(SlowQueryLogLine(trace, total_ms, threshold_ms));
}

}  // namespace rpg::obs
