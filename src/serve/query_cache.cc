#include "serve/query_cache.h"

#include <algorithm>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>

#include "common/string_util.h"

namespace rpg::serve {

namespace {

/// FNV-1a over the key; fast, stable across runs, and good enough to
/// spread keys over a handful of shards.
size_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string CanonicalQueryKey(const std::string& query, int num_seeds,
                              int year_cutoff) {
  core::RePagerOptions defaults;
  if (num_seeds <= 0) num_seeds = defaults.num_initial_seeds;
  if (year_cutoff <= 0) year_cutoff = defaults.year_cutoff;
  std::string normalized =
      Join(SplitWhitespace(ToLower(query)), " ");
  // '\x1f' (unit separator) cannot appear in the tokenized words, so the
  // three fields cannot alias each other.
  return normalized + '\x1f' + std::to_string(num_seeds) + '\x1f' +
         std::to_string(year_cutoff);
}

size_t EstimateResultBytes(const core::RePagerResult& result) {
  size_t bytes = sizeof(core::RePagerResult);
  bytes += result.ranked.capacity() * sizeof(graph::PaperId);
  bytes += result.initial_seeds.capacity() * sizeof(graph::PaperId);
  bytes += result.terminals.capacity() * sizeof(graph::PaperId);
  bytes += result.path.nodes().capacity() * sizeof(graph::PaperId);
  bytes += result.path.edges().capacity() *
           sizeof(std::pair<graph::PaperId, graph::PaperId>);
  return bytes;
}

struct QueryCache::Shard {
  struct Entry {
    std::string key;
    CachedResult result;           // nullptr for negative entries
    Status status = Status::OK();  // non-OK for negative entries
    size_t bytes = 0;
    uint64_t epoch_id = 0;  // stamp of the epoch the result was computed on
  };
  using LruList = std::list<Entry>;

  struct PerEpoch {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_evictions = 0;
  };

  mutable std::mutex mu;
  LruList lru;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index;
  size_t bytes = 0;
  size_t negative_entries = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t negative_hits = 0;
  uint64_t negative_insertions = 0;
  uint64_t stale_evictions = 0;
  /// Per-epoch counter split, keyed by epoch id. Epoch ids are
  /// monotonic, so bounding the map means dropping the oldest epochs.
  std::map<uint64_t, PerEpoch> by_epoch;

  PerEpoch& Epoch(uint64_t epoch_id) {
    auto it = by_epoch.try_emplace(epoch_id).first;
    // Keep the split bounded: a long-lived process flipping daily must
    // not grow stats without limit. 8 epochs is plenty for dashboards.
    while (by_epoch.size() > 8 && by_epoch.begin() != it) {
      by_epoch.erase(by_epoch.begin());
    }
    return it->second;
  }
};

QueryCache::QueryCache(QueryCacheOptions options)
    : shard_count_(RoundUpPowerOfTwo(
          options.num_shards == 0 ? 1 : options.num_shards)),
      cache_negative_(options.cache_negative) {
  shards_ = std::make_unique<Shard[]>(shard_count_);
  shard_max_bytes_ =
      options.max_bytes == 0 ? 0 : std::max<size_t>(1, options.max_bytes / shard_count_);
  shard_max_entries_ =
      options.max_entries == 0
          ? 0
          : std::max<size_t>(1, options.max_entries / shard_count_);
}

QueryCache::~QueryCache() = default;

size_t QueryCache::num_shards() const { return shard_count_; }

std::optional<CachedValue> QueryCache::Lookup(const std::string& key,
                                              uint64_t epoch_id, bool count) {
  Shard& shard = shards_[HashKey(key) & (shard_count_ - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (count) {
      ++shard.misses;
      ++shard.Epoch(epoch_id).misses;
    }
    return std::nullopt;
  }
  if (it->second->epoch_id != epoch_id) {
    // Stale stamp: the entry was computed on a different epoch. Evict it
    // now (this is the lazy half of flip invalidation — SwapEpoch never
    // scans the cache) and treat the lookup as a miss. The eviction is
    // counted even when `count` is false: the entry is really gone.
    ++shard.stale_evictions;
    ++shard.Epoch(it->second->epoch_id).stale_evictions;
    shard.bytes -= it->second->bytes;
    if (it->second->result == nullptr) --shard.negative_entries;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    if (count) {
      ++shard.misses;
      ++shard.Epoch(epoch_id).misses;
    }
    return std::nullopt;
  }
  if (count) {
    if (it->second->result == nullptr) {
      ++shard.negative_hits;
    } else {
      ++shard.hits;
      ++shard.Epoch(epoch_id).hits;
    }
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return CachedValue{it->second->result, it->second->status};
}

void QueryCache::Insert(const std::string& key, CachedResult result,
                        uint64_t epoch_id) {
  if (result == nullptr) return;
  size_t bytes = EstimateResultBytes(*result);
  InsertEntry(key, std::move(result), Status::OK(), bytes, epoch_id);
}

void QueryCache::InsertNegative(const std::string& key, const Status& status,
                                uint64_t epoch_id) {
  if (!cache_negative_ || status.ok()) return;
  // A negative entry is just its key and message; sizeof(Entry) covers
  // the list node payload.
  size_t bytes = sizeof(Shard::Entry) + key.size() + status.message().size();
  InsertEntry(key, nullptr, status, bytes, epoch_id);
}

void QueryCache::InsertEntry(const std::string& key, CachedResult result,
                             Status status, size_t bytes, uint64_t epoch_id) {
  Shard& shard = shards_[HashKey(key) & (shard_count_ - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  // Oversized entries would immediately evict themselves (plus the whole
  // shard); refuse them instead.
  if (shard_max_bytes_ != 0 && bytes > shard_max_bytes_) return;
  if (auto it = shard.index.find(key); it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    if (it->second->result == nullptr) --shard.negative_entries;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  const bool negative = result == nullptr;
  shard.lru.push_front(
      {key, std::move(result), std::move(status), bytes, epoch_id});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  if (negative) {
    ++shard.negative_entries;
    ++shard.negative_insertions;
  } else {
    ++shard.insertions;
  }
  while ((shard_max_bytes_ != 0 && shard.bytes > shard_max_bytes_) ||
         (shard_max_entries_ != 0 && shard.lru.size() > shard_max_entries_)) {
    const auto& tail = shard.lru.back();
    shard.bytes -= tail.bytes;
    if (tail.result == nullptr) --shard.negative_entries;
    shard.index.erase(tail.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void QueryCache::Clear() {
  for (size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.negative_entries = 0;
  }
}

QueryCacheStats QueryCache::Stats() const {
  QueryCacheStats stats;
  for (size_t i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.negative_hits += shard.negative_hits;
    stats.negative_insertions += shard.negative_insertions;
    stats.stale_evictions += shard.stale_evictions;
    stats.entries += shard.lru.size();
    stats.negative_entries += shard.negative_entries;
    stats.bytes += shard.bytes;
    for (const auto& [epoch, pe] : shard.by_epoch) {
      auto it = std::find_if(
          stats.by_epoch.begin(), stats.by_epoch.end(),
          [epoch](const EpochCacheStats& e) { return e.epoch == epoch; });
      if (it == stats.by_epoch.end()) {
        stats.by_epoch.push_back({epoch, 0, 0, 0});
        it = std::prev(stats.by_epoch.end());
      }
      it->hits += pe.hits;
      it->misses += pe.misses;
      it->stale_evictions += pe.stale_evictions;
    }
  }
  std::sort(stats.by_epoch.begin(), stats.by_epoch.end(),
            [](const EpochCacheStats& a, const EpochCacheStats& b) {
              return a.epoch < b.epoch;
            });
  return stats;
}

}  // namespace rpg::serve
