#ifndef RPG_SERVE_MICRO_BATCHER_H_
#define RPG_SERVE_MICRO_BATCHER_H_

/// \file
/// Micro-batching admission queue in front of core::BatchEngine.
/// Cache-miss requests that arrive within a small window are grouped
/// into one batch and executed together on the engine's worker pool, so
/// a burst of concurrent requests pays one scheduling round instead of
/// N, and per-worker QueryScratch reuse kicks in across the batch.
///
/// Flush policy: a batch is dispatched when it reaches
/// `max_batch_size`, or when the oldest queued request has waited
/// `flush_window` (default 2 ms), whichever comes first. A request
/// arriving at an idle batcher therefore sees at most `flush_window` of
/// added latency — negligible next to a multi-ms pipeline solve — and
/// under load batches fill before the deadline, so the window adds no
/// latency at all.
///
/// Ownership / thread-safety model:
///  - Submit() is safe from any thread and returns a future fulfilled by
///    the dispatcher thread after the batch completes.
///  - One internal dispatcher thread collects and executes batches (the
///    parallelism lives inside BatchEngine, not here).
///  - Shutdown() (or the destructor) drains everything already queued
///    before joining; no submitted request is dropped. Submitting after
///    Shutdown() returns a FailedPrecondition result.
///  - The BatchEngine is owned by the caller and must outlive the
///    batcher; the batcher is its only user while serving (BatchEngine
///    forbids concurrent Run() calls).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "core/batch_engine.h"

namespace rpg::serve {

struct MicroBatcherOptions {
  /// Dispatch as soon as this many requests are queued (>= 1).
  size_t max_batch_size = 16;
  /// Dispatch when the oldest queued request has waited this long.
  std::chrono::microseconds flush_window{2000};
  /// Overload bound: a submission arriving when this many requests are
  /// already waiting is rejected inline with Status::Unavailable (load
  /// shedding — the serving edge maps it to 429). The total backlog is
  /// bounded by max_queue_depth + the batch currently executing.
  /// 0 = unbounded (the pre-overload-control behavior).
  size_t max_queue_depth = 256;
  /// Per-request queue deadline: an entry that has already waited
  /// longer than this when the dispatcher assembles a batch is
  /// completed with Status::DeadlineExceeded instead of being solved —
  /// under sustained overload, work nobody is waiting for anymore is
  /// dropped before it wastes engine time. The status carries a
  /// Retry-After hint from the measured drain time (see Stats().
  /// ewma_item_seconds). 0 = disabled.
  std::chrono::milliseconds queue_deadline{0};
  /// Called on the dispatcher thread after every batch with (batch size,
  /// engine wall seconds) — the ServeEngine's metrics tap. May be empty.
  std::function<void(size_t, double)> on_batch;
};

/// Point-in-time dispatch counters.
struct MicroBatcherStats {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t flushes_on_size = 0;
  uint64_t flushes_on_deadline = 0;
  size_t max_batch_size_seen = 0;
  /// Submissions shed with Unavailable because the queue was full.
  uint64_t rejected_overload = 0;
  /// Queued requests expired with DeadlineExceeded (waited past
  /// queue_deadline before the dispatcher got to them).
  uint64_t deadline_expired = 0;
  /// Requests waiting right now (the overload gauge; excludes the batch
  /// currently executing on the engine).
  size_t queue_depth = 0;
  /// EWMA of per-item engine service time (seconds). queue_depth ×
  /// this, clamped to [1, 30] s, is the Retry-After hint attached to
  /// shed/expired statuses.
  double ewma_item_seconds = 0;
};

class MicroBatcher {
 public:
  /// `engine` must outlive the batcher. Starts the dispatcher thread.
  explicit MicroBatcher(core::BatchEngine* engine,
                        MicroBatcherOptions options = {});
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Completion callback for SubmitAsync: invoked exactly once on the
  /// dispatcher thread after the batch containing the query completes
  /// (or inline with FailedPrecondition after Shutdown()). Keep it
  /// cheap — it runs between batches.
  using Callback = std::function<void(Result<core::RePagerResult>)>;

  /// Enqueues one query; the future is fulfilled with the engine's
  /// per-query result (errors land in the Result, not as exceptions).
  std::future<Result<core::RePagerResult>> Submit(core::BatchQuery query);

  /// Callback flavour of Submit for the event-driven serving path: no
  /// thread blocks on a future, the completion is delivered where the
  /// batch finished. This is what lets epoll poller threads hand off
  /// compute without pinning themselves (docs/serving.md). When the
  /// queue is at max_queue_depth the callback fires inline with
  /// Status::Unavailable instead of queueing (overload shed).
  void SubmitAsync(core::BatchQuery query, Callback callback);

  /// Drains queued requests, then stops the dispatcher. Idempotent.
  void Shutdown();

  MicroBatcherStats Stats() const;

 private:
  struct Pending {
    core::BatchQuery query;
    Callback callback;
    std::chrono::steady_clock::time_point enqueued;
  };

  void DispatchLoop();
  /// Runs one batch on the engine and fulfills its promises.
  void RunBatch(std::deque<Pending> batch);
  /// Retry-After hint for a status completed right now: measured drain
  /// time (EWMA per-item service time × current queue depth) in whole
  /// seconds, clamped to [1, 30]. Requires mu_.
  int RetryAfterSecondsLocked() const;

  core::BatchEngine* engine_;
  MicroBatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool shutdown_ = false;
  MicroBatcherStats stats_;
  /// EWMA of per-item engine wall time (seconds); 0 until the first
  /// batch completes. Guarded by mu_.
  double ewma_item_seconds_ = 0;

  std::thread dispatcher_;
};

}  // namespace rpg::serve

#endif  // RPG_SERVE_MICRO_BATCHER_H_
