#include "serve/micro_batcher.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace rpg::serve {

namespace {
/// EWMA smoothing for per-item service time: ~0.2 weights the last
/// dozen-ish batches, enough to track load shifts without flapping the
/// Retry-After hint on every outlier batch.
constexpr double kEwmaAlpha = 0.2;
}  // namespace

MicroBatcher::MicroBatcher(core::BatchEngine* engine,
                           MicroBatcherOptions options)
    : engine_(engine), options_(options) {
  RPG_CHECK(engine_ != nullptr);
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<Result<core::RePagerResult>> MicroBatcher::Submit(
    core::BatchQuery query) {
  auto promise = std::make_shared<std::promise<Result<core::RePagerResult>>>();
  std::future<Result<core::RePagerResult>> future = promise->get_future();
  SubmitAsync(std::move(query),
              [promise](Result<core::RePagerResult> result) {
                promise->set_value(std::move(result));
              });
  return future;
}

void MicroBatcher::SubmitAsync(core::BatchQuery query, Callback callback) {
  Pending p;
  p.query = std::move(query);
  p.callback = std::move(callback);
  p.enqueued = std::chrono::steady_clock::now();
  Status rejected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      rejected = Status::FailedPrecondition("MicroBatcher is shut down");
    } else if (options_.max_queue_depth > 0 &&
               pending_.size() >= options_.max_queue_depth) {
      // Overload shed: beyond this point queueing only grows latency
      // for everyone; better to fail fast and let the client retry.
      // The Retry-After hint is the measured time to drain what is
      // already queued, so well-behaved clients come back when a slot
      // is actually likely to exist.
      ++stats_.rejected_overload;
      rejected = Status::Unavailable(
                     "micro-batch queue full (" +
                     std::to_string(options_.max_queue_depth) + " waiting)")
                     .WithRetryAfter(RetryAfterSecondsLocked());
    } else {
      pending_.push_back(std::move(p));
      ++stats_.requests;
      cv_.notify_all();
      return;
    }
  }
  // Rejected: complete inline on the caller (never under mu_).
  p.callback(std::move(rejected));
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

MicroBatcherStats MicroBatcher::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MicroBatcherStats stats = stats_;
  stats.queue_depth = pending_.size();
  stats.ewma_item_seconds = ewma_item_seconds_;
  return stats;
}

int MicroBatcher::RetryAfterSecondsLocked() const {
  const double drain =
      ewma_item_seconds_ * static_cast<double>(pending_.size());
  return static_cast<int>(std::clamp(std::ceil(drain), 1.0, 30.0));
}

void MicroBatcher::DispatchLoop() {
  for (;;) {
    std::deque<Pending> batch;
    std::vector<Callback> expired;
    int expired_retry_after = 1;
    bool flushed_on_size = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !pending_.empty() || shutdown_; });
      if (pending_.empty() && shutdown_) return;
      // Wait until the batch fills or the oldest request's deadline
      // passes. Shutdown flushes immediately (drain semantics).
      auto deadline = pending_.front().enqueued + options_.flush_window;
      while (pending_.size() < options_.max_batch_size && !shutdown_) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      // Queue deadline: entries that waited past queue_deadline are
      // expired, not solved — their callers have given up (or will, by
      // the time the engine would finish). The deque is FIFO, so the
      // expired prefix is exactly the over-age set.
      if (options_.queue_deadline.count() > 0) {
        const auto now = std::chrono::steady_clock::now();
        while (!pending_.empty() &&
               now - pending_.front().enqueued > options_.queue_deadline) {
          expired.push_back(std::move(pending_.front().callback));
          pending_.pop_front();
          ++stats_.deadline_expired;
        }
        if (!expired.empty()) {
          expired_retry_after = RetryAfterSecondsLocked();
        }
      }
      flushed_on_size = pending_.size() >= options_.max_batch_size;
      size_t take = std::min(pending_.size(), options_.max_batch_size);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      if (!batch.empty()) {
        ++stats_.batches;
        if (flushed_on_size) {
          ++stats_.flushes_on_size;
        } else {
          ++stats_.flushes_on_deadline;
        }
        stats_.max_batch_size_seen =
            std::max(stats_.max_batch_size_seen, batch.size());
      }
    }
    // Expired completions fire outside mu_, like every other callback.
    for (Callback& callback : expired) {
      callback(Status::DeadlineExceeded(
                   "request expired in micro-batch queue")
                   .WithRetryAfter(expired_retry_after));
    }
    if (!batch.empty()) RunBatch(std::move(batch));
  }
}

void MicroBatcher::RunBatch(std::deque<Pending> batch) {
  std::vector<core::BatchQuery> queries;
  queries.reserve(batch.size());
  const auto dispatched = std::chrono::steady_clock::now();
  for (const Pending& p : batch) {
    // Queue-time span: enqueue (any submitter thread) -> batch assembly
    // (this dispatcher thread); the handoff through mu_ orders the
    // submitter's earlier trace writes before ours.
    if (p.query.trace) {
      p.query.trace->AddSpanBetween(obs::Stage::kBatchQueue, p.enqueued,
                                    dispatched);
    }
    queries.push_back(p.query);
  }
  core::BatchResult result = engine_->Run(queries);
  RPG_CHECK(result.results.size() == batch.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double per_item =
        result.wall_seconds / static_cast<double>(batch.size());
    ewma_item_seconds_ = ewma_item_seconds_ == 0
                             ? per_item
                             : kEwmaAlpha * per_item +
                                   (1 - kEwmaAlpha) * ewma_item_seconds_;
  }
  if (options_.on_batch) options_.on_batch(batch.size(), result.wall_seconds);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].callback(std::move(result.results[i]));
  }
}

}  // namespace rpg::serve
