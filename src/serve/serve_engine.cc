#include "serve/serve_engine.h"

#include <utility>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/timer.h"

namespace rpg::serve {

/// Single-flight slot: the first requester (owner) computes; duplicates
/// wait on `future`. The slot outlives its table entry via shared_ptr,
/// so the owner can fulfill the promise after erasing the entry.
struct ServeEngine::Flight {
  std::promise<Result<CachedResult>> promise;
  std::shared_future<Result<CachedResult>> future;
};

namespace {

core::BatchEngineOptions MakeBatchOptions(const ServeEngineOptions& options) {
  core::BatchEngineOptions be;
  be.num_threads = options.num_threads;
  return be;
}

MicroBatcherOptions MakeBatcherOptions(const ServeEngineOptions& options,
                                       MetricHistogram* batch_size,
                                       MetricHistogram* solve_ms) {
  MicroBatcherOptions mb = options.batcher;
  mb.on_batch = [batch_size, solve_ms](size_t size, double wall_seconds) {
    batch_size->Observe(static_cast<double>(size));
    solve_ms->Observe(wall_seconds * 1e3);
  };
  return mb;
}

}  // namespace

ServeEngine::ServeEngine(const core::RePaGer* repager,
                         ServeEngineOptions options)
    : repager_(repager),
      options_(options),
      batch_engine_(repager, MakeBatchOptions(options)),
      cache_(options.cache),
      batcher_(&batch_engine_,
               MakeBatcherOptions(
                   options,
                   metrics_.GetHistogram("batch_size",
                                         SizeBucketEdges(
                                             options.batcher.max_batch_size)),
                   metrics_.GetHistogram("solve_ms", LatencyBucketEdgesMs()))),
      requests_total_(metrics_.GetCounter("requests_total")),
      cache_hits_(metrics_.GetCounter("cache_hits")),
      cache_misses_(metrics_.GetCounter("cache_misses")),
      coalesced_hits_(metrics_.GetCounter("coalesced_hits")),
      errors_total_(metrics_.GetCounter("errors_total")),
      e2e_ms_(metrics_.GetHistogram("e2e_ms", LatencyBucketEdgesMs())),
      hit_ms_(metrics_.GetHistogram("cache_hit_ms", LatencyBucketEdgesMs())) {
  RPG_CHECK(repager_ != nullptr);
}

ServeEngine::~ServeEngine() { batcher_.Shutdown(); }

Result<ServeResponse> ServeEngine::Generate(const std::string& query,
                                            int num_seeds, int year_cutoff) {
  Timer e2e;
  requests_total_->Increment();
  const std::string key = CanonicalQueryKey(query, num_seeds, year_cutoff);

  if (options_.enable_cache) {
    if (CachedResult hit = cache_.Lookup(key)) {
      cache_hits_->Increment();
      ServeResponse response;
      response.result = std::move(hit);
      response.cache_hit = true;
      response.e2e_seconds = e2e.ElapsedSeconds();
      hit_ms_->Observe(response.e2e_seconds * 1e3);
      e2e_ms_->Observe(response.e2e_seconds * 1e3);
      return response;
    }
    cache_misses_->Increment();
  }

  // Single-flight admission: exactly one requester per canonical key
  // computes; everyone else joins its future.
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      flights_.emplace(key, flight);
      owner = true;
    }
  }

  // Post-claim double-check: if another owner inserted the entry between
  // our miss and our claim (insert happens-before flight retirement,
  // which happens-before our claim), serve it instead of recomputing —
  // single-flight stays airtight even across flight generations.
  bool raced_hit = false;
  Result<CachedResult> outcome = [&]() -> Result<CachedResult> {
    if (!owner) {
      coalesced_hits_->Increment();
      return flight->future.get();
    }
    if (options_.enable_cache) {
      if (CachedResult hit = cache_.Lookup(key, /*count=*/false)) {
        raced_hit = true;
        Result<CachedResult> resolved(std::move(hit));
        {
          std::lock_guard<std::mutex> lock(flights_mu_);
          flights_.erase(key);
        }
        flight->promise.set_value(resolved);
        return resolved;
      }
    }
    return ComputeAndPublish(flight, key, query, num_seeds, year_cutoff);
  }();

  double seconds = e2e.ElapsedSeconds();
  e2e_ms_->Observe(seconds * 1e3);
  if (!outcome.ok()) {
    errors_total_->Increment();
    return outcome.status();
  }
  ServeResponse response;
  response.result = std::move(outcome).value();
  response.cache_hit = raced_hit;
  response.coalesced = !owner;
  response.e2e_seconds = seconds;
  return response;
}

Result<CachedResult> ServeEngine::ComputeAndPublish(
    const std::shared_ptr<Flight>& flight, const std::string& key,
    const std::string& query, int num_seeds, int year_cutoff) {
  core::BatchQuery bq;
  bq.query = query;
  if (num_seeds > 0) bq.options.num_initial_seeds = num_seeds;
  if (year_cutoff > 0) bq.options.year_cutoff = year_cutoff;
  Result<core::RePagerResult> computed = batcher_.Submit(std::move(bq)).get();

  Result<CachedResult> outcome =
      computed.ok()
          ? Result<CachedResult>(std::make_shared<const core::RePagerResult>(
                std::move(computed).value()))
          : Result<CachedResult>(computed.status());
  // Publish to the cache BEFORE retiring the flight: a request arriving
  // in between sees either the cache entry or the in-flight future —
  // never a gap that would trigger a duplicate computation.
  if (outcome.ok() && options_.enable_cache) {
    cache_.Insert(key, outcome.value());
  }
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    flights_.erase(key);
  }
  // Wake the coalesced waiters last; they re-read nothing, the outcome
  // is baked into the future.
  flight->promise.set_value(outcome);
  return outcome;
}

size_t ServeEngine::ClearCache() {
  size_t entries = cache_.Stats().entries;
  cache_.Clear();
  return entries;
}

std::string ServeEngine::StatsJson() const {
  QueryCacheStats cs = cache_.Stats();
  MicroBatcherStats bs = batcher_.Stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(options_.enable_cache);
  w.Key("entries").UInt(cs.entries);
  w.Key("bytes").UInt(cs.bytes);
  w.Key("hits").UInt(cs.hits);
  w.Key("misses").UInt(cs.misses);
  w.Key("insertions").UInt(cs.insertions);
  w.Key("evictions").UInt(cs.evictions);
  w.EndObject();
  w.Key("batcher").BeginObject();
  w.Key("requests").UInt(bs.requests);
  w.Key("batches").UInt(bs.batches);
  w.Key("flushes_on_size").UInt(bs.flushes_on_size);
  w.Key("flushes_on_deadline").UInt(bs.flushes_on_deadline);
  w.Key("max_batch_size_seen").UInt(bs.max_batch_size_seen);
  w.Key("threads").UInt(batch_engine_.num_threads());
  w.EndObject();
  w.Key("metrics").Raw(metrics_.ToJson());
  w.EndObject();
  return w.str();
}

}  // namespace rpg::serve
