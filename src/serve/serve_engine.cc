#include "serve/serve_engine.h"

#include <future>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/logging.h"

namespace rpg::serve {

/// Single-flight slot: the first requester (owner) computes; duplicates
/// register a completion waiter. The slot outlives its table entry via
/// shared_ptr, so the owner can deliver waiters after erasing the entry.
struct ServeEngine::Flight {
  using Waiter = std::function<void(const Result<CachedResult>&)>;

  std::mutex mu;
  bool done = false;
  /// Valid once `done`; late joiners that find the flight already done
  /// complete inline from this copy.
  Result<CachedResult> outcome{Status::Internal("flight not finished")};
  std::vector<Waiter> waiters;
};

namespace {

core::BatchEngineOptions MakeBatchOptions(const ServeEngineOptions& options) {
  core::BatchEngineOptions be;
  be.num_threads = options.num_threads;
  return be;
}

MicroBatcherOptions MakeBatcherOptions(const ServeEngineOptions& options,
                                       MetricHistogram* batch_size,
                                       MetricHistogram* solve_ms) {
  MicroBatcherOptions mb = options.batcher;
  mb.on_batch = [batch_size, solve_ms](size_t size, double wall_seconds) {
    batch_size->Observe(static_cast<double>(size));
    solve_ms->Observe(wall_seconds * 1e3);
  };
  return mb;
}

/// Deterministic pipeline failures (no hits for the query, bad
/// arguments) are cacheable: the immutable corpus guarantees the same
/// query fails the same way tomorrow. Transient statuses (shutdown,
/// internal) must retry.
bool IsCacheableError(const Status& status) {
  return status.IsNotFound() || status.IsInvalidArgument();
}

}  // namespace

ServeEngine::ServeEngine(EpochHandle epoch, ServeEngineOptions options)
    : options_(options),
      // The BatchEngine's engine-level default stays null: every query
      // carries its own epoch-pinned substrate handle, which is the
      // whole point of the refactor.
      batch_engine_(nullptr, MakeBatchOptions(options)),
      cache_(options.cache),
      batcher_(&batch_engine_,
               MakeBatcherOptions(
                   options,
                   metrics_.GetHistogram("batch_size",
                                         SizeBucketEdges(
                                             options.batcher.max_batch_size)),
                   metrics_.GetHistogram("solve_ms", LatencyBucketEdgesMs()))),
      epoch_(std::move(epoch)),
      requests_total_(metrics_.GetCounter("requests_total")),
      cache_hits_(metrics_.GetCounter("cache_hits")),
      cache_misses_(metrics_.GetCounter("cache_misses")),
      negative_hits_(metrics_.GetCounter("negative_hits")),
      coalesced_hits_(metrics_.GetCounter("coalesced_hits")),
      errors_total_(metrics_.GetCounter("errors_total")),
      shed_total_(metrics_.GetCounter("shed_total")),
      deadline_exceeded_total_(metrics_.GetCounter("deadline_exceeded_total")),
      inflight_requests_(metrics_.GetGauge("inflight_requests")),
      epoch_id_gauge_(metrics_.GetGauge("epoch_id")),
      epoch_flips_total_(metrics_.GetCounter("epoch_flips_total")),
      epoch_last_reload_unix_seconds_(
          metrics_.GetGauge("epoch_last_reload_unix_seconds")),
      e2e_ms_(metrics_.GetHistogram("e2e_ms", LatencyBucketEdgesMs())),
      hit_ms_(metrics_.GetHistogram("cache_hit_ms", LatencyBucketEdgesMs())),
      pipeline_total_ms_(
          metrics_.GetHistogram("pipeline_total_ms", LatencyBucketEdgesMs())) {
  RPG_CHECK(epoch_ != nullptr);
  epoch_id_gauge_->Set(static_cast<int64_t>(epoch_->id()));
  for (size_t i = 0; i < obs::kNumPipelineStages; ++i) {
    stage_ms_[i] = metrics_.GetHistogram(
        std::string("stage_") + obs::StageName(obs::kPipelineStages[i]) + "_ms",
        LatencyBucketEdgesMs());
  }
}

ServeEngine::ServeEngine(const core::RePaGer* repager,
                         ServeEngineOptions options)
    : ServeEngine(Epoch::Borrowed(repager), options) {}

ServeEngine::~ServeEngine() { batcher_.Shutdown(); }

Result<ServeResponse> ServeEngine::Generate(const std::string& query,
                                            int num_seeds, int year_cutoff) {
  std::promise<Result<ServeResponse>> promise;
  std::future<Result<ServeResponse>> future = promise.get_future();
  GenerateAsync(query, num_seeds, year_cutoff,
                [&promise](Result<ServeResponse> response) {
                  promise.set_value(std::move(response));
                });
  return future.get();
}

void ServeEngine::GenerateAsync(const std::string& query, int num_seeds,
                                int year_cutoff, GenerateCallback callback) {
  GenerateAsync(query, num_seeds, year_cutoff, nullptr, std::move(callback));
}

void ServeEngine::GenerateAsync(const std::string& query, int num_seeds,
                                int year_cutoff,
                                std::shared_ptr<obs::TraceContext> trace,
                                GenerateCallback callback) {
  Timer e2e;
  requests_total_->Increment();
  inflight_requests_->Add(1);
  // The RCU read: acquire the serving epoch exactly once. Everything
  // below — cache stamp, flight key, substrate handle, response — uses
  // this copy, so a concurrent SwapEpoch cannot split the request
  // across two generations.
  EpochHandle epoch = CurrentEpoch();
  const uint64_t eid = epoch->id();
  const std::string key = CanonicalQueryKey(query, num_seeds, year_cutoff);
  if (trace) trace->set_query_key(key);

  if (options_.enable_cache) {
    uint64_t lookup_start = trace ? trace->NowNs() : 0;
    std::optional<CachedValue> hit = cache_.Lookup(key, eid);
    if (trace) {
      trace->AddSpan(obs::Stage::kCacheLookup, lookup_start,
                     trace->NowNs() - lookup_start, hit ? 1 : 0);
    }
    if (hit) {
      if (hit->negative()) {
        negative_hits_->Increment();
        FinishRequest(callback, e2e, epoch, Result<CachedResult>(hit->status),
                      /*cache_hit=*/true, /*coalesced=*/false);
        return;
      }
      cache_hits_->Increment();
      hit_ms_->Observe(e2e.ElapsedSeconds() * 1e3);
      FinishRequest(callback, e2e, epoch,
                    Result<CachedResult>(std::move(hit->result)),
                    /*cache_hit=*/true, /*coalesced=*/false);
      return;
    }
    cache_misses_->Increment();
  }

  // Single-flight admission: exactly one requester per (epoch,
  // canonical key) computes; everyone else registers a waiter on its
  // flight. The epoch qualifier keeps a post-flip request from joining
  // a pre-flip computation whose result would come from the old graph.
  const std::string flight_key = std::to_string(eid) + '\x1f' + key;
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(flight_key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      flights_.emplace(flight_key, flight);
      owner = true;
    }
  }

  if (!owner) {
    coalesced_hits_->Increment();
    // The waiter fires on whichever thread retires the flight (owner's
    // continuation) — that thread is the tail of this request's causal
    // chain, so writing the wait span there is race-free.
    uint64_t wait_start = trace ? trace->NowNs() : 0;
    auto waiter = [this, callback = std::move(callback), e2e, epoch,
                   trace = std::move(trace),
                   wait_start](const Result<CachedResult>& outcome) {
      if (trace) {
        trace->AddSpan(obs::Stage::kSingleFlightWait, wait_start,
                       trace->NowNs() - wait_start, outcome.ok() ? 1 : 0);
      }
      FinishRequest(callback, e2e, epoch, outcome, /*cache_hit=*/false,
                    /*coalesced=*/true);
    };
    bool already_done = false;
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      if (flight->done) {
        already_done = true;
      } else {
        flight->waiters.push_back(waiter);
      }
    }
    // The flight finished between our table lookup and the registration:
    // complete inline from its stored outcome (never under flight->mu —
    // the callback is arbitrary user code).
    if (already_done) waiter(flight->outcome);
    return;
  }

  // Post-claim double-check: if another owner inserted the entry between
  // our miss and our claim (insert happens-before flight retirement,
  // which happens-before our claim), serve it instead of recomputing —
  // single-flight stays airtight even across flight generations.
  if (options_.enable_cache) {
    if (std::optional<CachedValue> hit =
            cache_.Lookup(key, eid, /*count=*/false)) {
      Result<CachedResult> resolved =
          hit->negative() ? Result<CachedResult>(hit->status)
                          : Result<CachedResult>(std::move(hit->result));
      PublishOutcome(key, flight_key, eid, flight, resolved);
      FinishRequest(callback, e2e, epoch, resolved, /*cache_hit=*/true,
                    /*coalesced=*/false);
      return;
    }
  }

  core::BatchQuery bq;
  bq.query = query;
  if (num_seeds > 0) bq.options.num_initial_seeds = num_seeds;
  if (year_cutoff > 0) bq.options.year_cutoff = year_cutoff;
  bq.trace = trace;
  // Pin the substrate: the worker solves on THIS request's epoch no
  // matter how many flips happen while the query sits in the batch
  // queue, and the aliasing handle keeps the epoch alive through the
  // solve.
  bq.repager = Epoch::RepagerHandle(epoch);
  // No thread blocks here: the continuation runs on the batcher's
  // dispatcher thread once the batch containing this query completes.
  batcher_.SubmitAsync(
      std::move(bq),
      [this, key, flight_key, eid, epoch = std::move(epoch), flight,
       callback = std::move(callback),
       e2e](Result<core::RePagerResult> computed) {
        if (!computed.ok() && computed.status().IsUnavailable()) {
          shed_total_->Increment();
        }
        if (!computed.ok() && computed.status().IsDeadlineExceeded()) {
          deadline_exceeded_total_->Increment();
        }
        if (computed.ok()) ObserveStages(*computed);
        Result<CachedResult> outcome =
            computed.ok()
                ? Result<CachedResult>(
                      std::make_shared<const core::RePagerResult>(
                          std::move(computed).value()))
                : Result<CachedResult>(computed.status());
        PublishOutcome(key, flight_key, eid, flight, outcome);
        FinishRequest(callback, e2e, epoch, outcome, /*cache_hit=*/false,
                      /*coalesced=*/false);
      });
}

void ServeEngine::ObserveStages(const core::RePagerResult& result) {
  const obs::SpanSet& stages = result.stages;
  if (stages.count == 0) return;
  for (uint32_t i = 0; i < stages.count; ++i) {
    const obs::SpanRecord& s = stages.spans[i];
    const auto idx = static_cast<size_t>(s.stage);
    if (idx < obs::kNumPipelineStages) {
      stage_ms_[idx]->Observe(static_cast<double>(s.dur_ns) / 1e6);
    }
  }
  pipeline_total_ms_->Observe(result.total_seconds * 1e3);
}

void ServeEngine::PublishOutcome(const std::string& cache_key,
                                 const std::string& flight_key,
                                 uint64_t epoch_id,
                                 const std::shared_ptr<Flight>& flight,
                                 const Result<CachedResult>& outcome) {
  // Publish to the cache BEFORE retiring the flight: a request arriving
  // in between sees either the cache entry or the in-flight flight —
  // never a gap that would trigger a duplicate computation. The entry
  // is stamped with the epoch it was computed on; if a flip landed
  // while we were computing, the stamp is already stale and the first
  // post-flip lookup evicts it.
  if (options_.enable_cache) {
    if (outcome.ok()) {
      cache_.Insert(cache_key, outcome.value(), epoch_id);
    } else if (IsCacheableError(outcome.status())) {
      cache_.InsertNegative(cache_key, outcome.status(), epoch_id);
    }
  }
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    flights_.erase(flight_key);
  }
  std::vector<Flight::Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->outcome = outcome;
    waiters.swap(flight->waiters);
  }
  for (const Flight::Waiter& waiter : waiters) waiter(outcome);
}

void ServeEngine::FinishRequest(const GenerateCallback& callback,
                                const Timer& e2e, const EpochHandle& epoch,
                                const Result<CachedResult>& outcome,
                                bool cache_hit, bool coalesced) {
  double seconds = e2e.ElapsedSeconds();
  e2e_ms_->Observe(seconds * 1e3);
  inflight_requests_->Add(-1);
  if (!outcome.ok()) {
    errors_total_->Increment();
    callback(outcome.status());
    return;
  }
  ServeResponse response;
  response.result = outcome.value();
  response.epoch = epoch;
  response.cache_hit = cache_hit;
  response.coalesced = coalesced;
  response.e2e_seconds = seconds;
  callback(std::move(response));
}

EpochHandle ServeEngine::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

uint64_t ServeEngine::epoch_flips() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_flips_;
}

void ServeEngine::SwapEpoch(EpochHandle next) {
  RPG_CHECK(next != nullptr);
  const int64_t now_ms = next->info().loaded_unix_ms;
  EpochHandle previous;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    previous = std::move(epoch_);  // destroyed outside the lock
    epoch_ = std::move(next);
    ++epoch_flips_;
    last_reload_unix_ms_ = now_ms;
    epoch_id_gauge_->Set(static_cast<int64_t>(epoch_->id()));
    epoch_last_reload_unix_seconds_->Set(now_ms / 1000);
  }
  epoch_flips_total_->Increment();
  RPG_LOG(Info) << "epoch flip -> id " << CurrentEpoch()->id()
                << " (in-flight requests drain on their own epoch)";
  // `previous` drops here. If this was the last reference the old
  // substrate frees now; otherwise the final in-flight request's
  // response destroys it. Either way: never under epoch_mu_.
}

size_t ServeEngine::ClearCache() {
  size_t entries = cache_.Stats().entries;
  cache_.Clear();
  return entries;
}

std::string ServeEngine::StatsJson() const {
  QueryCacheStats cs = cache_.Stats();
  MicroBatcherStats bs = batcher_.Stats();
  EpochHandle epoch;
  uint64_t flips = 0;
  int64_t last_reload_ms = 0;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch = epoch_;
    flips = epoch_flips_;
    last_reload_ms = last_reload_unix_ms_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("epoch").BeginObject();
  w.Key("id").UInt(epoch->id());
  w.Key("flips").UInt(flips);
  w.Key("last_reload_unix_ms").Int(last_reload_ms);
  w.Key("source").String(epoch->info().source);
  w.Key("loaded_unix_ms").Int(epoch->info().loaded_unix_ms);
  w.Key("load_seconds").Double(epoch->info().load_seconds);
  w.Key("num_papers").UInt(epoch->info().num_papers);
  w.Key("num_edges").UInt(epoch->info().num_edges);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(options_.enable_cache);
  w.Key("entries").UInt(cs.entries);
  w.Key("bytes").UInt(cs.bytes);
  w.Key("hits").UInt(cs.hits);
  w.Key("misses").UInt(cs.misses);
  w.Key("insertions").UInt(cs.insertions);
  w.Key("evictions").UInt(cs.evictions);
  w.Key("negative_entries").UInt(cs.negative_entries);
  w.Key("negative_hits").UInt(cs.negative_hits);
  w.Key("negative_insertions").UInt(cs.negative_insertions);
  w.Key("stale_evictions").UInt(cs.stale_evictions);
  // Hit/miss/stale split by epoch id: after a flip this shows the old
  // epoch's entries draining (stale_evictions) while the new epoch's
  // hit rate recovers — the lazy-invalidation story in one section.
  w.Key("by_epoch").BeginArray();
  for (const EpochCacheStats& e : cs.by_epoch) {
    w.BeginObject();
    w.Key("epoch").UInt(e.epoch);
    w.Key("hits").UInt(e.hits);
    w.Key("misses").UInt(e.misses);
    w.Key("stale_evictions").UInt(e.stale_evictions);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("batcher").BeginObject();
  w.Key("requests").UInt(bs.requests);
  w.Key("batches").UInt(bs.batches);
  w.Key("flushes_on_size").UInt(bs.flushes_on_size);
  w.Key("flushes_on_deadline").UInt(bs.flushes_on_deadline);
  w.Key("max_batch_size_seen").UInt(bs.max_batch_size_seen);
  w.Key("queue_depth").UInt(bs.queue_depth);
  w.Key("max_queue_depth").UInt(options_.batcher.max_queue_depth);
  w.Key("rejected_overload").UInt(bs.rejected_overload);
  w.Key("deadline_expired").UInt(bs.deadline_expired);
  w.Key("queue_deadline_ms")
      .UInt(static_cast<uint64_t>(
          options_.batcher.queue_deadline.count() < 0
              ? 0
              : options_.batcher.queue_deadline.count()));
  w.Key("ewma_item_seconds").Double(bs.ewma_item_seconds);
  w.Key("threads").UInt(batch_engine_.num_threads());
  w.EndObject();
  // Per-stage latency attribution over computed (non-cached) results.
  // attributed_fraction = stage-span time / pipeline wall time: how much
  // of the solve the spans account for (gated >= 0.9 by the bench suite).
  w.Key("stages").BeginObject();
  double stage_sum_ms = 0.0;
  for (size_t i = 0; i < obs::kNumPipelineStages; ++i) {
    Histogram h = stage_ms_[i]->Snapshot();
    stage_sum_ms += h.sum();
    w.Key(obs::StageName(obs::kPipelineStages[i])).BeginObject();
    w.Key("count").UInt(h.total());
    w.Key("total_ms").Double(h.sum());
    w.Key("mean_ms").Double(h.mean());
    w.Key("p50_ms").Double(h.Quantile(0.50));
    w.Key("p90_ms").Double(h.Quantile(0.90));
    w.Key("p99_ms").Double(h.Quantile(0.99));
    w.EndObject();
  }
  Histogram pipeline = pipeline_total_ms_->Snapshot();
  w.Key("pipeline").BeginObject();
  w.Key("count").UInt(pipeline.total());
  w.Key("total_ms").Double(pipeline.sum());
  w.Key("mean_ms").Double(pipeline.mean());
  w.Key("p50_ms").Double(pipeline.Quantile(0.50));
  w.Key("p90_ms").Double(pipeline.Quantile(0.90));
  w.Key("p99_ms").Double(pipeline.Quantile(0.99));
  w.EndObject();
  w.Key("attributed_fraction")
      .Double(pipeline.sum() > 0 ? stage_sum_ms / pipeline.sum() : 0.0);
  w.EndObject();
  w.Key("metrics").Raw(metrics_.ToJson());
  w.EndObject();
  return w.str();
}

}  // namespace rpg::serve
