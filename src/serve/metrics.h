#ifndef RPG_SERVE_METRICS_H_
#define RPG_SERVE_METRICS_H_

/// \file
/// Live metrics for the serving layer: named monotonic counters and
/// latency/value histograms, serializable to JSON for `GET /api/stats`.
///
/// Ownership / thread-safety model:
///  - Counter increments are lock-free (std::atomic, relaxed — the stats
///    endpoint needs freshness, not a consistent cross-counter snapshot).
///  - Histogram observations take a per-histogram mutex; observations are
///    ~ns next to the multi-ms requests they measure.
///  - GetCounter()/GetHistogram() return stable pointers (node-based
///    map, registry mutex only on first registration); hot paths resolve
///    their instruments once and keep the pointer.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace rpg::serve {

/// A named monotonic counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A named signed gauge (goes up AND down): open connections, in-flight
/// request backlog, queue depths.
class Gauge {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A mutex-guarded histogram with fixed bucket edges (common/histogram).
class MetricHistogram {
 public:
  explicit MetricHistogram(std::vector<double> edges)
      : histogram_(std::move(edges)) {}

  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
  }

  /// Copy of the underlying histogram for consistent reads.
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

/// Log-spaced bucket edges for latencies in milliseconds, 10 µs .. 100 s
/// (4 buckets per decade) — wide enough that p99 interpolation stays
/// inside the edges for both cache hits (~µs–ms) and full solves (~s).
std::vector<double> LatencyBucketEdgesMs();

/// Linear 1..cap edges for batch-size histograms.
std::vector<double> SizeBucketEdges(size_t cap);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it at 0 on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  /// Returns the gauge named `name`, creating it at 0 on first use.
  Gauge* GetGauge(const std::string& name);

  /// Returns the histogram named `name`, creating it with `edges` on
  /// first use (later calls ignore `edges`).
  MetricHistogram* GetHistogram(const std::string& name,
                                const std::vector<double>& edges);

  /// Serializes every instrument:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{"count","mean","p50","p90","p99",
  ///                        "underflow","overflow",
  ///                        "buckets":[{"le","label","count"},...]},...}}
  /// Each bucket entry carries its numeric upper edge (`le`), a
  /// human-readable "lo-hi" `label`, and its `count`; zero-count
  /// buckets are omitted to keep /api/stats compact. With
  /// underflow/overflow included the full distribution is
  /// reconstructable.
  std::string ToJson() const;

  /// Renders every instrument in Prometheus text exposition format
  /// (version 0.0.4) for `GET /metrics`: counters and gauges as single
  /// samples, histograms as cumulative `_bucket{le="..."}` series plus
  /// `_sum`/`_count` (see obs/prometheus.h for the line grammar). Every
  /// name is prefixed with `prefix` + '_' and sanitized to the
  /// Prometheus charset.
  std::string ToPrometheus(const std::string& prefix) const;

 private:
  mutable std::mutex mu_;
  // std::map: stable node addresses + deterministic JSON field order.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, MetricHistogram> histograms_;
};

}  // namespace rpg::serve

#endif  // RPG_SERVE_METRICS_H_
