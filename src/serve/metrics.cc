#include "serve/metrics.h"

#include <cmath>

#include "common/json_writer.h"
#include "obs/prometheus.h"

namespace rpg::serve {

std::vector<double> LatencyBucketEdgesMs() {
  // 0.01 ms .. 100000 ms, 4 buckets per decade (x ~1.78 per step).
  std::vector<double> edges;
  for (int i = 0; i <= 28; ++i) {
    edges.push_back(0.01 * std::pow(10.0, static_cast<double>(i) / 4.0));
  }
  return edges;
}

std::vector<double> SizeBucketEdges(size_t cap) {
  if (cap == 0) cap = 1;  // Histogram requires >= 2 edges
  std::vector<double> edges;
  edges.reserve(cap + 1);
  for (size_t i = 1; i <= cap + 1; ++i) edges.push_back(static_cast<double>(i));
  return edges;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

MetricHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& edges) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple(edges)).first;
  }
  return &it->second;
}

std::string MetricsRegistry::ToJson() const {
  // Snapshot the instrument sets under the registry lock, then read each
  // instrument through its own synchronization.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const MetricHistogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, &counter);
    }
    for (const auto& [name, gauge] : gauges_) {
      gauges.emplace_back(name, &gauge);
    }
    for (const auto& [name, histogram] : histograms_) {
      histograms.emplace_back(name, &histogram);
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters) {
    w.Key(name).UInt(counter->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges) {
    w.Key(name).Int(gauge->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms) {
    Histogram h = histogram->Snapshot();
    w.Key(name).BeginObject();
    w.Key("count").UInt(h.total());
    w.Key("mean").Double(h.mean());
    w.Key("p50").Double(h.Quantile(0.50));
    w.Key("p90").Double(h.Quantile(0.90));
    w.Key("p99").Double(h.Quantile(0.99));
    w.Key("underflow").UInt(h.underflow());
    w.Key("overflow").UInt(h.overflow());
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.num_buckets(); ++i) {
      if (h.bucket_count(i) == 0) continue;  // keep /api/stats compact
      w.BeginObject();
      w.Key("le").Double(h.bucket_upper_edge(i));
      w.Key("label").String(h.BucketLabel(i));
      w.Key("count").UInt(h.bucket_count(i));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsRegistry::ToPrometheus(const std::string& prefix) const {
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const MetricHistogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, &counter);
    }
    for (const auto& [name, gauge] : gauges_) {
      gauges.emplace_back(name, &gauge);
    }
    for (const auto& [name, histogram] : histograms_) {
      histograms.emplace_back(name, &histogram);
    }
  }
  std::string out;
  for (const auto& [name, counter] : counters) {
    obs::AppendCounter(prefix + "_" + name, counter->value(), &out);
  }
  for (const auto& [name, gauge] : gauges) {
    obs::AppendGauge(prefix + "_" + name,
                     static_cast<double>(gauge->value()), &out);
  }
  for (const auto& [name, histogram] : histograms) {
    obs::AppendHistogram(prefix + "_" + name, histogram->Snapshot(), &out);
  }
  return out;
}

}  // namespace rpg::serve
