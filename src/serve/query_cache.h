#ifndef RPG_SERVE_QUERY_CACHE_H_
#define RPG_SERVE_QUERY_CACHE_H_

/// \file
/// Sharded LRU cache over completed RePaGer results, the first line of
/// defence in the serving layer (docs/serving.md). Survey-generation
/// traffic is highly repetitive — popular topics dominate — over an
/// immutable citation graph, so a completed RePagerResult never goes
/// stale and can be shared verbatim between requests.
///
/// Negative caching: deterministic failures ("no hits", "empty query")
/// are just as repeatable as successes over the immutable corpus, so
/// the cache can also remember an error Status under the same canonical
/// key (InsertNegative). A negative entry costs a few hundred bytes and
/// spares a full KHop+NEWST attempt per repeat of a hopeless query.
/// Negative hits/insertions/entries are counted separately so
/// `/api/stats` can tell them apart.
///
/// Epoch stamping: "immutable" is per-epoch since the serving tier
/// learned to swap substrates (serve::Epoch). Every entry carries the
/// epoch id it was computed under; Lookup passes the requester's epoch
/// and a stamp mismatch is a miss that ALSO erases the stale entry on
/// the spot (lazy eviction). A flip therefore invalidates the whole
/// cache logically in O(1) — no global clear, no flip-time scan — and
/// the stale population pays for itself one lookup at a time while new
/// entries repopulate. `stale_evictions` plus per-epoch hit/miss splits
/// let /api/stats show a flip's cache cost directly.
///
/// Ownership / thread-safety model:
///  - Entries are std::shared_ptr<const core::RePagerResult>: the cache
///    and any number of in-flight responses share one immutable result;
///    eviction only drops the cache's reference.
///  - The key space is split across N shards (a power of two), each with
///    its own mutex + LRU list, so concurrent lookups on different keys
///    rarely contend. All public methods are safe from any thread.
///  - Capacity is bounded both by entries and by (estimated) bytes;
///    either limit evicts from the LRU tail of the owning shard. Byte
///    accounting is per shard (total/N each), so a single giant entry
///    can only displace its own shard's tail — the usual sharded-LRU
///    approximation.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/repager.h"

namespace rpg::serve {

/// A cached, immutable, shareable pipeline result.
using CachedResult = std::shared_ptr<const core::RePagerResult>;

/// One cached outcome: a shared result (positive entry) or the error
/// Status the same query produced last time (negative entry).
struct CachedValue {
  CachedResult result;           ///< nullptr for negative entries
  Status status = Status::OK();  ///< non-OK for negative entries
  bool negative() const { return result == nullptr; }
};

/// Canonical cache key for a serving request: the query text lowercased
/// with whitespace runs collapsed (the tokenizer is case-insensitive, so
/// "Graph  Neural" and "graph neural" produce bit-identical results —
/// asserted by tests/serve/query_cache_test.cc), joined with the resolved
/// num_seeds and year_cutoff. `num_seeds <= 0` and `year_cutoff <= 0`
/// mean "use the RePagerOptions default", so explicit and implicit
/// defaults share an entry.
std::string CanonicalQueryKey(const std::string& query, int num_seeds,
                              int year_cutoff);

/// Estimated heap footprint of one result (vectors + path), used for the
/// cache's byte accounting. An estimate, not an exact malloc census.
size_t EstimateResultBytes(const core::RePagerResult& result);

struct QueryCacheOptions {
  /// Total byte budget across all shards. 0 disables byte bounding.
  size_t max_bytes = 64ull << 20;
  /// Total entry budget across all shards. 0 disables entry bounding.
  size_t max_entries = 4096;
  /// Shard count; rounded up to a power of two, minimum 1.
  size_t num_shards = 8;
  /// Set false to make InsertNegative a no-op (errors always recompute).
  bool cache_negative = true;
};

/// Hit/miss/stale counters for one epoch id (the per-epoch split of the
/// global counters below). `stale_evictions` is keyed by the EVICTED
/// entry's epoch (whose result went stale), hits/misses by the
/// requesting epoch.
struct EpochCacheStats {
  uint64_t epoch = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale_evictions = 0;
};

/// Point-in-time counters (sums over all shards). `hits` counts positive
/// hits only; negative hits/insertions have their own counters.
/// `entries`/`bytes` include negative entries; `negative_entries` says
/// how many of them are negative. A stale eviction (epoch-mismatched
/// entry dropped on lookup) counts as both a miss and a stale_eviction,
/// never as an `evictions` (capacity) event.
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t negative_hits = 0;
  uint64_t negative_insertions = 0;
  uint64_t stale_evictions = 0;
  size_t entries = 0;
  size_t negative_entries = 0;
  size_t bytes = 0;
  /// Per-epoch split, ascending by epoch id. Bounded: each shard keeps
  /// the counters of the most recent few epochs only.
  std::vector<EpochCacheStats> by_epoch;
};

class QueryCache {
 public:
  explicit QueryCache(QueryCacheOptions options = {});
  ~QueryCache();

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the cached outcome (positive or negative) and refreshes its
  /// LRU position, or nullopt on miss. An entry whose stamp differs from
  /// `epoch_id` is stale: it is erased immediately (lazy eviction,
  /// counted in stale_evictions) and the lookup is a miss. Counts a hit
  /// or a miss unless `count` is false (used for the serving layer's
  /// post-claim double-check, which would otherwise count every real
  /// miss twice — stale eviction still happens regardless).
  std::optional<CachedValue> Lookup(const std::string& key,
                                    uint64_t epoch_id = 0, bool count = true);

  /// Inserts (or replaces) a positive entry stamped with `epoch_id`,
  /// then evicts from the shard's LRU tail until both capacity limits
  /// hold. An entry larger than a whole shard's byte budget is not
  /// cached at all.
  void Insert(const std::string& key, CachedResult result,
              uint64_t epoch_id = 0);

  /// Remembers a deterministic failure under `key` (no-op when
  /// `cache_negative` is off or `status` is OK). Shares the LRU and the
  /// capacity budgets with positive entries.
  void InsertNegative(const std::string& key, const Status& status,
                      uint64_t epoch_id = 0);

  /// Drops every entry (counters are preserved).
  void Clear();

  QueryCacheStats Stats() const;

  size_t num_shards() const;

 private:
  struct Shard;

  void InsertEntry(const std::string& key, CachedResult result,
                   Status status, size_t bytes, uint64_t epoch_id);

  std::unique_ptr<Shard[]> shards_;
  size_t shard_count_;
  size_t shard_max_bytes_;
  size_t shard_max_entries_;
  bool cache_negative_;
};

}  // namespace rpg::serve

#endif  // RPG_SERVE_QUERY_CACHE_H_
