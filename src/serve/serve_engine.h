#ifndef RPG_SERVE_SERVE_ENGINE_H_
#define RPG_SERVE_SERVE_ENGINE_H_

/// \file
/// The serving facade: sharded result cache + in-flight request
/// coalescing + micro-batched execution + live metrics, over an
/// atomically swappable serving epoch (serve::Epoch).
/// ui::RePagerService is a thin route layer on top of this class; see
/// docs/serving.md for the request lifecycle, the epoch lifecycle, and
/// tuning knobs.
///
/// Request lifecycle for Generate / GenerateAsync(query, num_seeds,
/// year_cutoff):
///   0. acquire the current epoch ONCE (one shared_ptr copy) — every
///      later step of this request reads that epoch, never the member
///   1. canonical key  = CanonicalQueryKey(...) — case/whitespace
///      normalized, defaults resolved
///   2. QueryCache::Lookup with the epoch id — a positive hit returns
///      the shared immutable result in microseconds; a negative hit
///      returns the remembered error Status without touching the
///      pipeline; a stamp from another epoch is lazily evicted
///   3. in-flight table (keyed by epoch id + canonical key) — an
///      identical same-epoch query already being computed is joined,
///      not recomputed (single-flight)
///   4. MicroBatcher::SubmitAsync — grouped with concurrent misses and
///      executed on the shared core::BatchEngine; the BatchQuery
///      carries the epoch's substrate handle, so the worker solves on
///      the request's epoch even if a flip happened meanwhile
///   5. completed results are inserted into the cache stamped with the
///      request's epoch (deterministic errors as negative entries);
///      every stage increments MetricsRegistry counters/histograms
///
/// Results are bit-identical to serial RePaGer::Generate on the same
/// epoch in every path (cache hit, coalesced, batched) — asserted by
/// tests/serve/serve_engine_test.cc and tests/epoch/epoch_test.cc.
///
/// Ownership / thread-safety model:
///  - The serving substrate is an EpochHandle
///    (shared_ptr<const Epoch>): the engine holds the current one,
///    every in-flight request holds its own, and SwapEpoch replaces the
///    engine's under a mutex. The old epoch frees itself when its last
///    in-flight request completes — RCU by refcount, no drain barrier.
///  - Generate()/GenerateAsync()/SwapEpoch() are safe from any number
///    of threads. Cached results are shared_ptr<const ...>: never
///    mutated, freely shared across responses.
///  - GenerateAsync never blocks on the solve: the callback fires inline
///    for cache hits and errors, and from the batcher's dispatcher
///    thread for computed misses. This is the API the epoll reactor
///    (ui::HttpServer) serves from — poller threads submit and return
///    to their event loop.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/timer.h"
#include "core/batch_engine.h"
#include "core/repager.h"
#include "serve/epoch.h"
#include "serve/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/query_cache.h"

namespace rpg::serve {

struct ServeEngineOptions {
  /// Worker threads for the underlying BatchEngine; <= 0 means
  /// hardware_concurrency.
  int num_threads = 0;
  /// Set false to bypass the result cache (every request computes).
  bool enable_cache = true;
  QueryCacheOptions cache;
  MicroBatcherOptions batcher;
};

/// One served response. `result` is immutable and shared with the cache.
struct ServeResponse {
  CachedResult result;
  /// The epoch this request was answered on. Holding the response keeps
  /// the epoch's whole substrate alive, so renderers may dereference
  /// epoch->titles()/years()/repager() without lifetime caveats.
  EpochHandle epoch;
  /// True when the result came straight from the cache.
  bool cache_hit = false;
  /// True when this request joined an identical in-flight computation.
  bool coalesced = false;
  /// End-to-end seconds inside the engine (queueing + solve, or the
  /// cache lookup time on a hit).
  double e2e_seconds = 0.0;
};

class ServeEngine {
 public:
  /// Completion callback for GenerateAsync. Invoked exactly once: inline
  /// on the calling thread for cache hits / negative hits / inline
  /// errors, or on the batcher's dispatcher thread after a computed
  /// miss. Must not block.
  using GenerateCallback = std::function<void(Result<ServeResponse>)>;

  /// The primary constructor: serves from `epoch` until SwapEpoch.
  explicit ServeEngine(EpochHandle epoch, ServeEngineOptions options = {});

  /// Compat wrapper over the pre-epoch API: wraps `repager` in a single
  /// static Borrowed epoch (id 0). The caller keeps `repager` alive for
  /// the engine's lifetime, exactly as before.
  explicit ServeEngine(const core::RePaGer* repager,
                       ServeEngineOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Serves one request, blocking until the response is ready (a thin
  /// wrapper over GenerateAsync). `num_seeds <= 0` / `year_cutoff <= 0`
  /// mean the pipeline defaults (same canonicalization as the cache
  /// key). Pipeline errors (no hits, empty query, ...) come back as the
  /// Result's status.
  Result<ServeResponse> Generate(const std::string& query, int num_seeds,
                                 int year_cutoff);

  /// Non-blocking flavour for event-driven callers: hand off the
  /// request, get the response via `callback`.
  void GenerateAsync(const std::string& query, int num_seeds,
                     int year_cutoff, GenerateCallback callback);

  /// Trace-aware flavour (the reactor's entry point): additionally
  /// records serving-side spans — cache_lookup, singleflight_wait,
  /// batch_queue, solve + the pipeline's stage spans — into `trace`
  /// along the request's causal chain, and stamps the canonical query
  /// key onto it. `trace` may be null (identical to the overload above).
  void GenerateAsync(const std::string& query, int num_seeds,
                     int year_cutoff,
                     std::shared_ptr<obs::TraceContext> trace,
                     GenerateCallback callback);

  /// Installs `next` as the serving epoch (RCU flip). New requests
  /// acquire it immediately; in-flight requests finish on the epoch they
  /// started with, and the old epoch frees itself when the last of them
  /// completes. Cache entries from older epochs are NOT cleared — their
  /// stale stamps are evicted lazily on lookup (QueryCache). Safe from
  /// any thread, including concurrently with serving traffic.
  void SwapEpoch(EpochHandle next);

  /// The epoch new requests would be served on right now (one
  /// shared_ptr copy; never null).
  EpochHandle CurrentEpoch() const;

  /// Number of SwapEpoch calls since construction.
  uint64_t epoch_flips() const;

  /// Drops every cached entry; returns the number of entries dropped.
  size_t ClearCache();

  /// Live stats document for GET /api/stats:
  ///   {"epoch":{...},"cache":{...},"batcher":{...},"stages":{...},
  ///    "metrics":{counters,gauges,histograms}}
  /// The "stages" section attributes solve time to pipeline stages
  /// (count / total_ms / mean_ms / p50..p99 per stage, plus an
  /// `attributed_fraction` of pipeline time covered by stage spans).
  std::string StatsJson() const;

  const QueryCache& cache() const { return cache_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  size_t num_threads() const { return batch_engine_.num_threads(); }

 private:
  struct Flight;

  /// Publishes the outcome: cache (positive entry, or negative for
  /// deterministic errors, stamped with the request's epoch), flight
  /// retirement, coalesced waiters. `cache_key` addresses the cache;
  /// `flight_key` (epoch-qualified) addresses the flights table.
  void PublishOutcome(const std::string& cache_key,
                      const std::string& flight_key, uint64_t epoch_id,
                      const std::shared_ptr<Flight>& flight,
                      const Result<CachedResult>& outcome);

  /// Final per-request bookkeeping (e2e histogram, error counter,
  /// in-flight gauge) + callback invocation. `epoch` is the epoch the
  /// request was served on; it rides out on the ServeResponse.
  void FinishRequest(const GenerateCallback& callback, const Timer& e2e,
                     const EpochHandle& epoch,
                     const Result<CachedResult>& outcome, bool cache_hit,
                     bool coalesced);

  /// Feeds a freshly computed result's stage spans into the per-stage
  /// latency histograms. No-op when the result carries no spans (tracing
  /// compiled out or disabled).
  void ObserveStages(const core::RePagerResult& result);

  ServeEngineOptions options_;
  core::BatchEngine batch_engine_;
  QueryCache cache_;
  // Declared before batcher_: the batcher's on_batch closure holds
  // pointers into the registry, so the registry must be built first (and
  // torn down last).
  MetricsRegistry metrics_;
  MicroBatcher batcher_;

  /// The serving epoch. Requests copy the handle once under the mutex
  /// (an uncontended lock + shared_ptr copy, nanoseconds) and never
  /// touch the member again; SwapEpoch replaces it. A mutex-guarded
  /// shared_ptr is the portable TSan-clean equivalent of
  /// std::atomic<std::shared_ptr> here, and this is nowhere near the
  /// per-request hot path's dominant cost.
  mutable std::mutex epoch_mu_;
  EpochHandle epoch_;
  /// Flip bookkeeping (guarded by epoch_mu_): count + wall-clock of the
  /// last SwapEpoch, rendered in /api/stats.
  uint64_t epoch_flips_ = 0;
  int64_t last_reload_unix_ms_ = 0;

  /// Single-flight table: epoch id + canonical key -> the flight every
  /// duplicate concurrent request registers a waiter on. The epoch
  /// qualifier keeps a post-flip request from joining a pre-flip
  /// computation of the same query (their results may differ). The owner
  /// (first requester) erases the entry once the cache is populated.
  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  // Hot-path instruments, resolved once. (solve_ms / batch_size are
  // observed by the batcher's on_batch closure, not through members.)
  Counter* requests_total_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* negative_hits_;
  Counter* coalesced_hits_;
  Counter* errors_total_;
  /// Requests shed by the batcher's queue bound (Status::Unavailable →
  /// HTTP 429 at the edge). Counted once per shed computation, not per
  /// coalesced waiter.
  Counter* shed_total_;
  /// Requests expired by the batcher's queue deadline
  /// (Status::DeadlineExceeded → HTTP 503 at the edge). Counted once per
  /// expired computation, like shed_total_.
  Counter* deadline_exceeded_total_;
  Gauge* inflight_requests_;
  /// Epoch instruments (also scraped via GET /metrics): the current
  /// epoch id, total SwapEpoch flips, and the Unix time of the last
  /// flip. (Stale-eviction counters live in the cache section of
  /// /api/stats — QueryCacheStats — split by epoch.)
  Gauge* epoch_id_gauge_;
  Counter* epoch_flips_total_;
  Gauge* epoch_last_reload_unix_seconds_;
  MetricHistogram* e2e_ms_;
  MetricHistogram* hit_ms_;
  /// Per-pipeline-stage latency histograms ("stage_<name>_ms"), indexed
  /// by obs::Stage value; observed once per computed (non-cached) result.
  MetricHistogram* stage_ms_[obs::kNumPipelineStages];
  /// Wall time of the whole pipeline per computed result
  /// ("pipeline_total_ms") — the denominator for attributed_fraction.
  MetricHistogram* pipeline_total_ms_;
};

}  // namespace rpg::serve

#endif  // RPG_SERVE_SERVE_ENGINE_H_
