#ifndef RPG_SERVE_SERVE_ENGINE_H_
#define RPG_SERVE_SERVE_ENGINE_H_

/// \file
/// The serving facade: sharded result cache + in-flight request
/// coalescing + micro-batched execution + live metrics, over the
/// immutable RePaGer substrates. ui::RePagerService is a thin route
/// layer on top of this class; see docs/serving.md for the request
/// lifecycle and tuning knobs.
///
/// Request lifecycle for Generate / GenerateAsync(query, num_seeds,
/// year_cutoff):
///   1. canonical key  = CanonicalQueryKey(...) — case/whitespace
///      normalized, defaults resolved
///   2. QueryCache::Lookup — a positive hit returns the shared immutable
///      result in microseconds; a negative hit returns the remembered
///      error Status without touching the pipeline
///   3. in-flight table — an identical query already being computed is
///      joined, not recomputed (single-flight)
///   4. MicroBatcher::SubmitAsync — grouped with concurrent misses and
///      executed on the shared core::BatchEngine
///   5. completed results are inserted into the cache (deterministic
///      errors as negative entries); every stage increments
///      MetricsRegistry counters/histograms
///
/// Results are bit-identical to serial RePaGer::Generate in every path
/// (cache hit, coalesced, batched) — asserted by
/// tests/serve/serve_engine_test.cc.
///
/// Ownership / thread-safety model:
///  - The RePaGer (and everything under it) is shared immutable state
///    owned by the caller; it must outlive the engine.
///  - Generate()/GenerateAsync() are safe from any number of threads.
///    Cached results are shared_ptr<const ...>: never mutated, freely
///    shared across responses.
///  - GenerateAsync never blocks on the solve: the callback fires inline
///    for cache hits and errors, and from the batcher's dispatcher
///    thread for computed misses. This is the API the epoll reactor
///    (ui::HttpServer) serves from — poller threads submit and return
///    to their event loop.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/timer.h"
#include "core/batch_engine.h"
#include "core/repager.h"
#include "serve/metrics.h"
#include "serve/micro_batcher.h"
#include "serve/query_cache.h"

namespace rpg::serve {

struct ServeEngineOptions {
  /// Worker threads for the underlying BatchEngine; <= 0 means
  /// hardware_concurrency.
  int num_threads = 0;
  /// Set false to bypass the result cache (every request computes).
  bool enable_cache = true;
  QueryCacheOptions cache;
  MicroBatcherOptions batcher;
};

/// One served response. `result` is immutable and shared with the cache.
struct ServeResponse {
  CachedResult result;
  /// True when the result came straight from the cache.
  bool cache_hit = false;
  /// True when this request joined an identical in-flight computation.
  bool coalesced = false;
  /// End-to-end seconds inside the engine (queueing + solve, or the
  /// cache lookup time on a hit).
  double e2e_seconds = 0.0;
};

class ServeEngine {
 public:
  /// Completion callback for GenerateAsync. Invoked exactly once: inline
  /// on the calling thread for cache hits / negative hits / inline
  /// errors, or on the batcher's dispatcher thread after a computed
  /// miss. Must not block.
  using GenerateCallback = std::function<void(Result<ServeResponse>)>;

  /// `repager` must outlive the engine.
  explicit ServeEngine(const core::RePaGer* repager,
                       ServeEngineOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Serves one request, blocking until the response is ready (a thin
  /// wrapper over GenerateAsync). `num_seeds <= 0` / `year_cutoff <= 0`
  /// mean the pipeline defaults (same canonicalization as the cache
  /// key). Pipeline errors (no hits, empty query, ...) come back as the
  /// Result's status.
  Result<ServeResponse> Generate(const std::string& query, int num_seeds,
                                 int year_cutoff);

  /// Non-blocking flavour for event-driven callers: hand off the
  /// request, get the response via `callback`.
  void GenerateAsync(const std::string& query, int num_seeds,
                     int year_cutoff, GenerateCallback callback);

  /// Trace-aware flavour (the reactor's entry point): additionally
  /// records serving-side spans — cache_lookup, singleflight_wait,
  /// batch_queue, solve + the pipeline's stage spans — into `trace`
  /// along the request's causal chain, and stamps the canonical query
  /// key onto it. `trace` may be null (identical to the overload above).
  void GenerateAsync(const std::string& query, int num_seeds,
                     int year_cutoff,
                     std::shared_ptr<obs::TraceContext> trace,
                     GenerateCallback callback);

  /// Drops every cached entry; returns the number of entries dropped.
  size_t ClearCache();

  /// Live stats document for GET /api/stats:
  ///   {"cache":{...},"batcher":{...},"stages":{...},"metrics":
  ///    {counters,gauges,histograms}}
  /// The "stages" section attributes solve time to pipeline stages
  /// (count / total_ms / mean_ms / p50..p99 per stage, plus an
  /// `attributed_fraction` of pipeline time covered by stage spans).
  std::string StatsJson() const;

  const QueryCache& cache() const { return cache_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  size_t num_threads() const { return batch_engine_.num_threads(); }

 private:
  struct Flight;

  /// Publishes the outcome: cache (positive entry, or negative for
  /// deterministic errors), flight retirement, coalesced waiters.
  void PublishOutcome(const std::string& key,
                      const std::shared_ptr<Flight>& flight,
                      const Result<CachedResult>& outcome);

  /// Final per-request bookkeeping (e2e histogram, error counter,
  /// in-flight gauge) + callback invocation.
  void FinishRequest(const GenerateCallback& callback, const Timer& e2e,
                     const Result<CachedResult>& outcome, bool cache_hit,
                     bool coalesced);

  /// Feeds a freshly computed result's stage spans into the per-stage
  /// latency histograms. No-op when the result carries no spans (tracing
  /// compiled out or disabled).
  void ObserveStages(const core::RePagerResult& result);

  const core::RePaGer* repager_;
  ServeEngineOptions options_;
  core::BatchEngine batch_engine_;
  QueryCache cache_;
  // Declared before batcher_: the batcher's on_batch closure holds
  // pointers into the registry, so the registry must be built first (and
  // torn down last).
  MetricsRegistry metrics_;
  MicroBatcher batcher_;

  /// Single-flight table: canonical key -> the flight every duplicate
  /// concurrent request registers a waiter on. The owner (first
  /// requester) erases the entry once the cache is populated.
  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  // Hot-path instruments, resolved once. (solve_ms / batch_size are
  // observed by the batcher's on_batch closure, not through members.)
  Counter* requests_total_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* negative_hits_;
  Counter* coalesced_hits_;
  Counter* errors_total_;
  /// Requests shed by the batcher's queue bound (Status::Unavailable →
  /// HTTP 429 at the edge). Counted once per shed computation, not per
  /// coalesced waiter.
  Counter* shed_total_;
  /// Requests expired by the batcher's queue deadline
  /// (Status::DeadlineExceeded → HTTP 503 at the edge). Counted once per
  /// expired computation, like shed_total_.
  Counter* deadline_exceeded_total_;
  Gauge* inflight_requests_;
  MetricHistogram* e2e_ms_;
  MetricHistogram* hit_ms_;
  /// Per-pipeline-stage latency histograms ("stage_<name>_ms"), indexed
  /// by obs::Stage value; observed once per computed (non-cached) result.
  MetricHistogram* stage_ms_[obs::kNumPipelineStages];
  /// Wall time of the whole pipeline per computed result
  /// ("pipeline_total_ms") — the denominator for attributed_fraction.
  MetricHistogram* pipeline_total_ms_;
};

}  // namespace rpg::serve

#endif  // RPG_SERVE_SERVE_ENGINE_H_
