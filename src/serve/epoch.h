#ifndef RPG_SERVE_EPOCH_H_
#define RPG_SERVE_EPOCH_H_

/// \file
/// One immutable generation of the serving substrate, the unit of
/// RCU-style state swap (ROADMAP "The graph is no longer immutable").
///
/// An Epoch bundles everything a query needs — the RePaGer (and, through
/// it, graph / engine / weights), the rendering metadata (titles, years)
/// and the load provenance (id, source, timestamps) — behind one
/// `std::shared_ptr<const Epoch>` handle. The serving stack acquires the
/// handle ONCE per request (ServeEngine::GenerateAsync) and threads it
/// down through the micro-batcher into the BatchEngine workers, so:
///
///  - a SwapEpoch is one shared_ptr store: new requests see the new
///    epoch immediately, in-flight requests finish on the epoch they
///    started on (bit-identical to a fresh process booted from that
///    epoch's snapshot — pinned by tests/epoch/epoch_test.cc);
///  - the old epoch destroys itself (ServingState unmapped, substrate
///    freed) when the last in-flight reference drops — no quiescence
///    tracking, no reader locks, no drain barrier;
///  - cache entries are stamped with the epoch id they were computed
///    under, so a flip invalidates logically without a global clear
///    (QueryCache lazily evicts stale stamps on lookup).
///
/// Construction paths:
///  - LoadEpochFromSnapshot(): the production reload path — mmaps the
///    file, runs the FULL checksum audit (including the lazily-verified
///    embeddings section) and fails closed, leaving the serving epoch
///    untouched on any error.
///  - Create(): wraps an in-process-built substrate (eval::Workbench or
///    anything else) with a type-erased owner keeping it alive.
///  - Borrowed(): compat shim for the pre-epoch API — wraps a raw
///    RePaGer* the caller keeps alive, as epoch id 0 with no metadata.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/repager.h"
#include "snapshot/serving_state.h"

namespace rpg::serve {

class Epoch;

/// The one way serving code refers to an epoch. Copying the handle is
/// the RCU "read lock": hold it and everything the epoch owns stays
/// alive and immutable.
using EpochHandle = std::shared_ptr<const Epoch>;

class Epoch {
 public:
  /// Load provenance, rendered into /api/stats and GET /metrics.
  struct Info {
    /// Monotonically increasing generation number; 0 is reserved for
    /// Borrowed() compat epochs.
    uint64_t id = 0;
    /// Where the substrate came from: a snapshot path, or "in-process".
    std::string source;
    /// Wall-clock time the epoch was constructed (Unix epoch, ms).
    int64_t loaded_unix_ms = 0;
    /// Seconds spent loading/verifying/wiring the substrate.
    double load_seconds = 0.0;
    uint64_t num_papers = 0;
    uint64_t num_edges = 0;
  };

  /// Wraps an in-process substrate. `owner` is a type-erased keep-alive
  /// for whatever object(s) the raw pointers borrow from (e.g. the
  /// eval::Workbench); it may be null when the caller guarantees
  /// lifetime some other way. `titles`/`years` may be null (rendering
  /// then needs caller-supplied metadata, see ui::RePagerService).
  static EpochHandle Create(const core::RePaGer* repager,
                            const std::vector<std::string>* titles,
                            const std::vector<uint16_t>* years,
                            std::shared_ptr<const void> owner, Info info);

  /// Takes ownership of a loaded ServingState. `load_seconds` is the
  /// caller-measured load+verify time (LoadEpochFromSnapshot fills it).
  static EpochHandle FromSnapshot(
      std::unique_ptr<snapshot::ServingState> state, uint64_t id,
      std::string source, double load_seconds);

  /// Compat shim for the raw-pointer API: the caller keeps `repager`
  /// alive for the epoch's lifetime (the old "must outlive the engine"
  /// contract, now confined to this one constructor).
  static EpochHandle Borrowed(const core::RePaGer* repager);

  Epoch(const Epoch&) = delete;
  Epoch& operator=(const Epoch&) = delete;

  const core::RePaGer& repager() const { return *repager_; }
  /// Null for Borrowed() epochs (no rendering metadata).
  const std::vector<std::string>* titles() const { return titles_; }
  const std::vector<uint16_t>* years() const { return years_; }
  const Info& info() const { return info_; }
  uint64_t id() const { return info_.id; }

  /// An owning handle to the epoch's RePaGer: an aliasing shared_ptr
  /// whose control block is the epoch itself. This is what rides inside
  /// core::BatchQuery — the core layer gets a typed keep-alive without
  /// depending on serve::Epoch.
  static std::shared_ptr<const core::RePaGer> RepagerHandle(
      const EpochHandle& epoch) {
    return std::shared_ptr<const core::RePaGer>(epoch, epoch->repager_);
  }

 private:
  Epoch() = default;

  const core::RePaGer* repager_ = nullptr;
  const std::vector<std::string>* titles_ = nullptr;
  const std::vector<uint16_t>* years_ = nullptr;
  /// Keep-alive for the substrate the raw pointers borrow from:
  /// the ServingState (snapshot epochs) or an arbitrary owner (Create).
  std::shared_ptr<const void> owner_;
  Info info_;
};

/// The production reload path: mmap + decode the snapshot, then run the
/// FULL checksum audit (SnapshotReader::VerifyAllChecksums — including
/// the embeddings section that open-time validation defers) before the
/// epoch becomes visible to anyone. Fail-closed: any error (missing
/// file, corrupt section, failed wiring) returns a typed Status naming
/// the offending layer and constructs nothing — the caller's serving
/// epoch is untouched.
Result<EpochHandle> LoadEpochFromSnapshot(const std::string& path,
                                          uint64_t id);

}  // namespace rpg::serve

#endif  // RPG_SERVE_EPOCH_H_
