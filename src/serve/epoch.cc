#include "serve/epoch.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace rpg::serve {

namespace {

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EpochHandle Epoch::Create(const core::RePaGer* repager,
                          const std::vector<std::string>* titles,
                          const std::vector<uint16_t>* years,
                          std::shared_ptr<const void> owner, Info info) {
  RPG_CHECK(repager != nullptr);
  auto epoch = std::shared_ptr<Epoch>(new Epoch());
  epoch->repager_ = repager;
  epoch->titles_ = titles;
  epoch->years_ = years;
  epoch->owner_ = std::move(owner);
  if (info.loaded_unix_ms == 0) info.loaded_unix_ms = NowUnixMs();
  epoch->info_ = std::move(info);
  return epoch;
}

EpochHandle Epoch::FromSnapshot(std::unique_ptr<snapshot::ServingState> state,
                                uint64_t id, std::string source,
                                double load_seconds) {
  Info info;
  info.id = id;
  info.source = std::move(source);
  info.loaded_unix_ms = NowUnixMs();
  info.load_seconds = load_seconds;
  info.num_papers = state->reader().num_papers();
  info.num_edges = state->reader().num_edges();
  // The aliasing pointers borrow from the ServingState; the shared_ptr
  // owner keeps it (and its mmap) alive until the last query drops the
  // epoch handle.
  std::shared_ptr<const snapshot::ServingState> owner = std::move(state);
  return Create(&owner->repager(), &owner->titles(), &owner->years(),
                owner, std::move(info));
}

EpochHandle Epoch::Borrowed(const core::RePaGer* repager) {
  Info info;
  info.source = "borrowed";
  info.loaded_unix_ms = NowUnixMs();
  return Create(repager, nullptr, nullptr, nullptr, std::move(info));
}

Result<EpochHandle> LoadEpochFromSnapshot(const std::string& path,
                                          uint64_t id) {
  Timer load;
  RPG_ASSIGN_OR_RETURN(std::unique_ptr<snapshot::ServingState> state,
                       snapshot::ServingState::Load(path));
  // Open-time validation skips the (large, lazily paged-in) embeddings
  // checksum; a reload candidate gets the full audit so a flip can never
  // publish bytes that differ from what the writer produced.
  if (Status audit = state->reader().VerifyAllChecksums(); !audit.ok()) {
    return audit;
  }
  return Epoch::FromSnapshot(std::move(state), id, path,
                             load.ElapsedSeconds());
}

}  // namespace rpg::serve
