#include "search/inverted_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace rpg::search {

namespace {
const std::vector<Posting> kEmptyPostings;
}  // namespace

std::vector<std::string> InvertedIndex::AnalyzeQuery(const std::string& query) {
  std::vector<std::string> out;
  for (const auto& tok : text::Tokenize(query)) {
    out.push_back(text::PorterStem(tok));
  }
  return out;
}

void InvertedIndex::AddDocument(const std::string& title,
                                const std::string& abstract_text) {
  RPG_CHECK(!finalized_) << "AddDocument after Finalize";
  DocId doc = static_cast<DocId>(doc_lengths_.size());
  std::unordered_map<text::TermId, float> tf;
  double length = 0.0;
  for (const auto& tok : text::Tokenize(title)) {
    text::TermId id = vocab_.GetOrAdd(text::PorterStem(tok));
    tf[id] += static_cast<float>(options_.title_weight);
    length += options_.title_weight;
  }
  for (const auto& tok : text::Tokenize(abstract_text)) {
    text::TermId id = vocab_.GetOrAdd(text::PorterStem(tok));
    tf[id] += 1.0f;
    length += 1.0;
  }
  doc_lengths_.push_back(static_cast<float>(length));
  if (vocab_.size() > postings_.size()) postings_.resize(vocab_.size());
  for (const auto& [term, weighted_tf] : tf) {
    postings_[term].push_back({doc, weighted_tf});
  }
}

void InvertedIndex::Finalize() {
  RPG_CHECK(!finalized_) << "double Finalize";
  finalized_ = true;
  for (auto& plist : postings_) {
    std::sort(plist.begin(), plist.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
  }
  double total = 0.0;
  for (float l : doc_lengths_) total += l;
  avg_doc_length_ =
      doc_lengths_.empty() ? 0.0 : total / static_cast<double>(doc_lengths_.size());
}

Result<InvertedIndex> InvertedIndex::Restore(
    const InvertedIndexOptions& options, text::Vocabulary vocab,
    std::vector<std::vector<Posting>> postings,
    std::vector<float> doc_lengths, double avg_doc_length) {
  if (postings.size() != vocab.size()) {
    return Status::InvalidArgument("index restore: postings/vocab mismatch");
  }
  const size_t num_docs = doc_lengths.size();
  for (const auto& plist : postings) {
    for (size_t i = 0; i < plist.size(); ++i) {
      if (plist[i].doc >= num_docs) {
        return Status::InvalidArgument("index restore: doc id out of range");
      }
      if (i > 0 && plist[i].doc <= plist[i - 1].doc) {
        return Status::InvalidArgument(
            "index restore: postings not strictly sorted by doc");
      }
    }
  }
  InvertedIndex index(options);
  index.vocab_ = std::move(vocab);
  index.postings_ = std::move(postings);
  index.doc_lengths_ = std::move(doc_lengths);
  index.avg_doc_length_ = avg_doc_length;
  index.finalized_ = true;
  return index;
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    const std::string& stemmed_term) const {
  RPG_CHECK(finalized_) << "PostingsFor before Finalize";
  text::TermId id = vocab_.Lookup(stemmed_term);
  if (id == text::kInvalidTerm) return kEmptyPostings;
  return postings_[id];
}

size_t InvertedIndex::DocumentFrequency(const std::string& stemmed_term) const {
  text::TermId id = vocab_.Lookup(stemmed_term);
  if (id == text::kInvalidTerm) return 0;
  return postings_[id].size();
}

}  // namespace rpg::search
