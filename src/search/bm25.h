#ifndef RPG_SEARCH_BM25_H_
#define RPG_SEARCH_BM25_H_

#include <cstddef>

namespace rpg::search {

/// Okapi BM25 parameters.
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Robertson-Sparck-Jones IDF with the +1 floor used by Lucene
/// (non-negative for all df).
double Bm25Idf(size_t doc_freq, size_t num_docs);

/// Per-term BM25 contribution given a weighted term frequency, document
/// length and average document length.
double Bm25TermScore(double weighted_tf, double doc_length,
                     double avg_doc_length, double idf,
                     const Bm25Params& params);

}  // namespace rpg::search

#endif  // RPG_SEARCH_BM25_H_
