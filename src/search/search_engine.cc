#include "search/search_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace rpg::search {

EngineProfile GoogleScholarProfile() {
  EngineProfile p;
  p.name = "Google";
  p.bm25 = {1.2, 0.75};
  p.citation_boost = 0.05;  // mild popularity prior on top of BM25
  p.recency_boost = 0.0;
  return p;
}

EngineProfile MicrosoftAcademicProfile() {
  EngineProfile p;
  p.name = "Microsoft";
  p.bm25 = {1.6, 0.6};      // different lexical normalization
  p.citation_boost = 0.03;  // saliency mixes popularity more lightly
  p.recency_boost = 0.1;
  return p;
}

EngineProfile AMinerProfile() {
  EngineProfile p;
  p.name = "Aminer";
  p.bm25 = {1.2, 0.5};
  p.citation_boost = 0.02;
  p.recency_boost = 0.35;   // favors recent work
  return p;
}

SearchEngine::SearchEngine(std::vector<EngineDocument> docs,
                           const EngineProfile& profile)
    : docs_(std::move(docs)), profile_(profile) {}

Result<std::unique_ptr<SearchEngine>> SearchEngine::Build(
    std::vector<EngineDocument> docs, const EngineProfile& profile) {
  if (docs.empty()) {
    return Status::InvalidArgument("cannot build engine over empty corpus");
  }
  auto engine =
      std::unique_ptr<SearchEngine>(new SearchEngine(std::move(docs), profile));
  engine->min_year_ = INT32_MAX;
  engine->max_year_ = INT32_MIN;
  for (const auto& d : engine->docs_) {
    engine->index_.AddDocument(d.title, d.abstract_text);
    engine->max_citations_ = std::max(engine->max_citations_, d.citations);
    engine->min_year_ = std::min(engine->min_year_, d.year);
    engine->max_year_ = std::max(engine->max_year_, d.year);
  }
  engine->index_.Finalize();
  return engine;
}

Result<std::unique_ptr<SearchEngine>> SearchEngine::Restore(
    std::vector<EngineDocument> docs, const EngineProfile& profile,
    InvertedIndex index, uint64_t max_citations, int min_year,
    int max_year) {
  if (docs.empty()) {
    return Status::InvalidArgument("cannot restore engine over empty corpus");
  }
  if (index.num_documents() != docs.size()) {
    return Status::InvalidArgument("engine restore: index/docs mismatch");
  }
  auto engine =
      std::unique_ptr<SearchEngine>(new SearchEngine(std::move(docs), profile));
  engine->index_ = std::move(index);
  engine->max_citations_ = max_citations;
  engine->min_year_ = min_year;
  engine->max_year_ = max_year;
  return engine;
}

std::vector<SearchResult> SearchEngine::Search(
    const std::string& query, size_t top_k, int year_cutoff,
    const std::vector<DocId>& exclude) const {
  std::vector<std::string> terms = InvertedIndex::AnalyzeQuery(query);
  std::unordered_map<DocId, double> scores;
  const size_t n = index_.num_documents();
  for (const auto& term : terms) {
    const auto& postings = index_.PostingsFor(term);
    if (postings.empty()) continue;
    double idf = Bm25Idf(postings.size(), n);
    for (const Posting& p : postings) {
      scores[p.doc] += Bm25TermScore(p.weighted_tf, index_.DocLength(p.doc),
                                     index_.average_doc_length(), idf,
                                     profile_.bm25);
    }
  }
  std::unordered_set<DocId> excluded(exclude.begin(), exclude.end());
  double log_max_citations =
      std::log1p(static_cast<double>(max_citations_));
  double year_span = static_cast<double>(max_year_ - min_year_);

  std::vector<SearchResult> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, bm25] : scores) {
    if (bm25 <= 0.0) continue;
    const EngineDocument& d = docs_[doc];
    if (d.year > year_cutoff) continue;
    if (excluded.contains(doc)) continue;
    double score = bm25;
    if (profile_.citation_boost > 0.0 && log_max_citations > 0.0) {
      score *= 1.0 + profile_.citation_boost *
                         std::log1p(static_cast<double>(d.citations)) /
                         log_max_citations;
    }
    if (profile_.recency_boost > 0.0 && year_span > 0.0) {
      score *= 1.0 + profile_.recency_boost *
                         static_cast<double>(d.year - min_year_) / year_span;
    }
    hits.push_back({doc, score});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;  // deterministic tiebreak
            });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace rpg::search
