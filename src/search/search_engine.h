#ifndef RPG_SEARCH_SEARCH_ENGINE_H_
#define RPG_SEARCH_SEARCH_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "search/bm25.h"
#include "search/inverted_index.h"

namespace rpg::search {

/// A document handed to the engine at build time. `citations` is the
/// paper's current citation count (used for popularity boosts) and `year`
/// its publication year (used for time-range restriction, mirroring the
/// paper's "anytime .. survey year" search setting).
struct EngineDocument {
  std::string title;
  std::string abstract_text;
  int year = 0;
  uint64_t citations = 0;
};

/// One ranked hit.
struct SearchResult {
  DocId doc = 0;
  double score = 0.0;
};

/// Ranking profile. The three baseline engines of the paper are modeled
/// as BM25 plus engine-specific popularity/recency boosts — all of them
/// score documents *independently*, with no citation-chain awareness,
/// which is the deficiency (§II-A Observation I) RePaGer addresses.
struct EngineProfile {
  std::string name;
  Bm25Params bm25;
  /// Multiplicative boost 1 + w * log1p(citations) / log1p(max_citations).
  double citation_boost = 0.0;
  /// Multiplicative boost 1 + w * (year - min_year) / (max_year - min_year).
  double recency_boost = 0.0;
};

/// Built-in profiles emulating Google Scholar / Microsoft Academic /
/// AMiner.
EngineProfile GoogleScholarProfile();
EngineProfile MicrosoftAcademicProfile();
EngineProfile AMinerProfile();

/// BM25 retrieval engine over a fixed document collection.
class SearchEngine {
 public:
  /// Builds the index. Document ids are their positions in `docs`.
  static Result<std::unique_ptr<SearchEngine>> Build(
      std::vector<EngineDocument> docs, const EngineProfile& profile);

  /// Returns the top-k documents for a free-text query, restricted to
  /// documents with year <= year_cutoff (pass INT32_MAX for no cutoff).
  /// `exclude` (may be empty) lists doc ids to drop from the ranking —
  /// used to remove the queried survey itself.
  std::vector<SearchResult> Search(const std::string& query, size_t top_k,
                                   int year_cutoff,
                                   const std::vector<DocId>& exclude = {}) const;

  const EngineProfile& profile() const { return profile_; }
  size_t num_documents() const { return docs_.size(); }

  /// Snapshot support — rebuilds an engine from a restored index plus
  /// the per-document metadata Search() consults at query time (year and
  /// citation count; title/abstract text is only needed at index-build
  /// time and is not kept). The max/min aggregates are stored rather
  /// than recomputed so the restored engine scores bit-identically.
  static Result<std::unique_ptr<SearchEngine>> Restore(
      std::vector<EngineDocument> docs, const EngineProfile& profile,
      InvertedIndex index, uint64_t max_citations, int min_year,
      int max_year);

  /// Snapshot support — read access to the serialized representation.
  const InvertedIndex& index() const { return index_; }
  uint64_t max_citations() const { return max_citations_; }
  int min_year() const { return min_year_; }
  int max_year() const { return max_year_; }

 private:
  SearchEngine(std::vector<EngineDocument> docs, const EngineProfile& profile);

  std::vector<EngineDocument> docs_;
  EngineProfile profile_;
  InvertedIndex index_;
  uint64_t max_citations_ = 0;
  int min_year_ = 0;
  int max_year_ = 0;
};

}  // namespace rpg::search

#endif  // RPG_SEARCH_SEARCH_ENGINE_H_
