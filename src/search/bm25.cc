#include "search/bm25.h"

#include <cmath>

namespace rpg::search {

double Bm25Idf(size_t doc_freq, size_t num_docs) {
  double df = static_cast<double>(doc_freq);
  double n = static_cast<double>(num_docs);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double Bm25TermScore(double weighted_tf, double doc_length,
                     double avg_doc_length, double idf,
                     const Bm25Params& params) {
  if (weighted_tf <= 0.0) return 0.0;
  double norm =
      avg_doc_length > 0.0
          ? params.k1 * (1.0 - params.b + params.b * doc_length / avg_doc_length)
          : params.k1;
  return idf * weighted_tf * (params.k1 + 1.0) / (weighted_tf + norm);
}

}  // namespace rpg::search
