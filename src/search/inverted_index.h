#ifndef RPG_SEARCH_INVERTED_INDEX_H_
#define RPG_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/vocabulary.h"

namespace rpg::search {

using DocId = uint32_t;

/// One posting: a document and the (field-weighted) term frequency.
struct Posting {
  DocId doc;
  float weighted_tf;
};

/// Index construction knobs.
struct InvertedIndexOptions {
  /// A title occurrence contributes this much term frequency; an abstract
  /// occurrence contributes 1.
  double title_weight = 3.0;
};

/// Field-weighted inverted index over title + abstract text. Terms are
/// lowercased and Porter-stemmed.
class InvertedIndex {
 public:
  explicit InvertedIndex(const InvertedIndexOptions& options = {})
      : options_(options) {}

  /// Adds a document; ids must be added densely (0, 1, 2, ...).
  void AddDocument(const std::string& title, const std::string& abstract_text);

  /// Freezes the index (sorts postings). Must precede PostingsFor.
  void Finalize();

  size_t num_documents() const { return doc_lengths_.size(); }
  double average_doc_length() const { return avg_doc_length_; }
  double DocLength(DocId d) const { return doc_lengths_[d]; }

  /// Postings for one (stemmed) term; empty when unseen.
  const std::vector<Posting>& PostingsFor(const std::string& stemmed_term) const;

  /// Document frequency of a stemmed term.
  size_t DocumentFrequency(const std::string& stemmed_term) const;

  /// Tokenizes + stems a free-text query into index terms.
  static std::vector<std::string> AnalyzeQuery(const std::string& query);

  /// Snapshot support — rebuilds a finalized index from serialized
  /// parts without re-tokenizing any text. `avg_doc_length` is stored
  /// rather than recomputed so the restored index is bit-identical to
  /// the one that was written. Fails with InvalidArgument on
  /// inconsistent shapes (postings vs vocab size, doc ids out of range).
  static Result<InvertedIndex> Restore(
      const InvertedIndexOptions& options, text::Vocabulary vocab,
      std::vector<std::vector<Posting>> postings,
      std::vector<float> doc_lengths, double avg_doc_length);

  /// Snapshot support — read access to the serialized representation.
  const text::Vocabulary& vocab() const { return vocab_; }
  const std::vector<std::vector<Posting>>& postings() const {
    return postings_;
  }
  const std::vector<float>& doc_lengths() const { return doc_lengths_; }
  const InvertedIndexOptions& options() const { return options_; }

 private:
  InvertedIndexOptions options_;
  text::Vocabulary vocab_;
  std::vector<std::vector<Posting>> postings_;  // by term id
  std::vector<float> doc_lengths_;              // weighted length per doc
  double avg_doc_length_ = 0.0;
  bool finalized_ = false;
};

}  // namespace rpg::search

#endif  // RPG_SEARCH_INVERTED_INDEX_H_
