#ifndef RPG_MATCH_HASHED_EMBEDDER_H_
#define RPG_MATCH_HASHED_EMBEDDER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rpg::match {

/// Dense embedding produced by feature hashing.
using Embedding = std::vector<float>;

struct HashedEmbedderOptions {
  /// Embedding dimensionality.
  int dim = 256;
  /// Include word bigrams ("neural_parsing") in addition to unigrams.
  bool use_bigrams = true;
  /// Title tokens contribute this weight; abstract tokens contribute 1.
  double title_weight = 2.0;
};

/// Text embedder standing in for SciBERT (see DESIGN.md §2): stemmed
/// unigrams + bigrams are signed-hashed into a fixed-dimension vector
/// (the "hashing trick"), which is then L2-normalized. Like a frozen
/// sentence encoder, it maps any text to a dense vector whose cosine
/// similarity reflects lexical-semantic overlap — with zero knowledge of
/// the citation graph.
class HashedEmbedder {
 public:
  explicit HashedEmbedder(const HashedEmbedderOptions& options = {});

  /// Embeds a title/abstract pair.
  Embedding EmbedDocument(const std::string& title,
                          const std::string& abstract_text) const;

  /// Embeds a free-text query.
  Embedding EmbedQuery(const std::string& query) const;

  int dim() const { return options_.dim; }
  const HashedEmbedderOptions& options() const { return options_; }

 private:
  void Accumulate(const std::string& text, double field_weight,
                  std::vector<double>* acc) const;
  static Embedding Normalize(const std::vector<double>& acc);

  HashedEmbedderOptions options_;
};

/// Cosine similarity of two embeddings (0 when either is all-zero or
/// dimensions mismatch). The span overload scores against rows of a
/// flat (possibly mmap-backed) embedding matrix with the exact same
/// arithmetic, so snapshot-loaded scores are bit-identical.
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

}  // namespace rpg::match

#endif  // RPG_MATCH_HASHED_EMBEDDER_H_
