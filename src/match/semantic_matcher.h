#ifndef RPG_MATCH_SEMANTIC_MATCHER_H_
#define RPG_MATCH_SEMANTIC_MATCHER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "match/hashed_embedder.h"

namespace rpg::match {

/// Ranked match.
struct Match {
  uint32_t doc = 0;
  double score = 0.0;
};

/// The SciBERT-baseline re-ranker of §VI-A: scores the matching degree of
/// a query against paper titles+abstracts and re-ranks an expanded
/// candidate set purely by semantic similarity. Embeds the whole
/// collection once at construction.
///
/// Document embeddings live in one flat row-major float matrix
/// (`num_docs x dim`). The matcher either owns that matrix (built from
/// text) or borrows it (FromPrecomputed over an mmap'd snapshot section
/// — the dominant chunk of serving state, served zero-copy with lazy
/// page-in).
class SemanticMatcher {
 public:
  /// `titles` and `abstracts` are parallel per-document arrays.
  SemanticMatcher(const std::vector<std::string>& titles,
                  const std::vector<std::string>& abstracts,
                  const HashedEmbedderOptions& options = {});

  /// Snapshot support — wraps a precomputed embedding matrix without
  /// copying it. `embeddings.size()` must equal `num_docs * options.dim`;
  /// the backing memory must outlive the matcher (the snapshot reader
  /// keeps its mapping alive for exactly this reason).
  static std::unique_ptr<SemanticMatcher> FromPrecomputed(
      std::span<const float> embeddings, size_t num_docs,
      const HashedEmbedderOptions& options = {});

  /// `view_` may point into `owned_`; copying would leave the copy's
  /// view aimed at the original. Heap-allocate and share instead.
  SemanticMatcher(const SemanticMatcher&) = delete;
  SemanticMatcher& operator=(const SemanticMatcher&) = delete;

  /// Similarity of the query to one document.
  double Score(const Embedding& query, uint32_t doc) const {
    return CosineSimilarity(query, doc_embedding(doc));
  }

  /// Re-ranks `candidates` by query similarity (descending, stable for
  /// equal scores by doc id). Returns at most top_k.
  std::vector<Match> Rerank(const std::string& query,
                            const std::vector<uint32_t>& candidates,
                            size_t top_k) const;

  const HashedEmbedder& embedder() const { return embedder_; }

  size_t num_docs() const { return num_docs_; }

  /// One document's embedding row.
  std::span<const float> doc_embedding(uint32_t doc) const {
    const size_t dim = static_cast<size_t>(embedder_.dim());
    return view_.subspan(doc * dim, dim);
  }

  /// The whole flat matrix (snapshot writer input).
  std::span<const float> embeddings() const { return view_; }

 private:
  explicit SemanticMatcher(const HashedEmbedderOptions& options)
      : embedder_(options) {}

  HashedEmbedder embedder_;
  std::vector<float> owned_;       ///< empty when borrowing
  std::span<const float> view_;    ///< always the live matrix
  size_t num_docs_ = 0;
};

}  // namespace rpg::match

#endif  // RPG_MATCH_SEMANTIC_MATCHER_H_
