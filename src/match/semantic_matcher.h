#ifndef RPG_MATCH_SEMANTIC_MATCHER_H_
#define RPG_MATCH_SEMANTIC_MATCHER_H_

#include <string>
#include <vector>

#include "match/hashed_embedder.h"

namespace rpg::match {

/// Ranked match.
struct Match {
  uint32_t doc = 0;
  double score = 0.0;
};

/// The SciBERT-baseline re-ranker of §VI-A: scores the matching degree of
/// a query against paper titles+abstracts and re-ranks an expanded
/// candidate set purely by semantic similarity. Embeds the whole
/// collection once at construction.
class SemanticMatcher {
 public:
  /// `titles` and `abstracts` are parallel per-document arrays.
  SemanticMatcher(const std::vector<std::string>& titles,
                  const std::vector<std::string>& abstracts,
                  const HashedEmbedderOptions& options = {});

  /// Similarity of the query to one document.
  double Score(const Embedding& query, uint32_t doc) const;

  /// Re-ranks `candidates` by query similarity (descending, stable for
  /// equal scores by doc id). Returns at most top_k.
  std::vector<Match> Rerank(const std::string& query,
                            const std::vector<uint32_t>& candidates,
                            size_t top_k) const;

  const HashedEmbedder& embedder() const { return embedder_; }

 private:
  HashedEmbedder embedder_;
  std::vector<Embedding> doc_embeddings_;
};

}  // namespace rpg::match

#endif  // RPG_MATCH_SEMANTIC_MATCHER_H_
