#include "match/hashed_embedder.h"

#include <cmath>

#include "common/logging.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace rpg::match {

namespace {

/// FNV-1a 64-bit string hash (stable across platforms).
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

HashedEmbedder::HashedEmbedder(const HashedEmbedderOptions& options)
    : options_(options) {
  RPG_CHECK(options_.dim > 0);
}

void HashedEmbedder::Accumulate(const std::string& text, double field_weight,
                                std::vector<double>* acc) const {
  std::vector<std::string> stems;
  for (const auto& tok : text::Tokenize(text)) {
    stems.push_back(text::PorterStem(tok));
  }
  auto add_feature = [&](const std::string& feature) {
    uint64_t h = Fnv1a(feature);
    size_t index = static_cast<size_t>(h % static_cast<uint64_t>(options_.dim));
    double sign = ((h >> 62) & 1) ? 1.0 : -1.0;
    (*acc)[index] += sign * field_weight;
  };
  for (const auto& s : stems) add_feature(s);
  if (options_.use_bigrams) {
    for (size_t i = 0; i + 1 < stems.size(); ++i) {
      add_feature(stems[i] + "_" + stems[i + 1]);
    }
  }
}

Embedding HashedEmbedder::Normalize(const std::vector<double>& acc) {
  double norm = 0.0;
  for (double v : acc) norm += v * v;
  norm = std::sqrt(norm);
  Embedding out(acc.size());
  if (norm > 0.0) {
    for (size_t i = 0; i < acc.size(); ++i) {
      out[i] = static_cast<float>(acc[i] / norm);
    }
  }
  return out;
}

Embedding HashedEmbedder::EmbedDocument(
    const std::string& title, const std::string& abstract_text) const {
  std::vector<double> acc(static_cast<size_t>(options_.dim), 0.0);
  Accumulate(title, options_.title_weight, &acc);
  Accumulate(abstract_text, 1.0, &acc);
  return Normalize(acc);
}

Embedding HashedEmbedder::EmbedQuery(const std::string& query) const {
  std::vector<double> acc(static_cast<size_t>(options_.dim), 0.0);
  Accumulate(query, 1.0, &acc);
  return Normalize(acc);
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
  }
  return dot;  // embeddings are L2-normalized
}

}  // namespace rpg::match
