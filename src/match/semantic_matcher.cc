#include "match/semantic_matcher.h"

#include <algorithm>

#include "common/logging.h"

namespace rpg::match {

SemanticMatcher::SemanticMatcher(const std::vector<std::string>& titles,
                                 const std::vector<std::string>& abstracts,
                                 const HashedEmbedderOptions& options)
    : embedder_(options) {
  RPG_CHECK(titles.size() == abstracts.size());
  doc_embeddings_.reserve(titles.size());
  for (size_t i = 0; i < titles.size(); ++i) {
    doc_embeddings_.push_back(embedder_.EmbedDocument(titles[i], abstracts[i]));
  }
}

double SemanticMatcher::Score(const Embedding& query, uint32_t doc) const {
  return CosineSimilarity(query, doc_embeddings_[doc]);
}

std::vector<Match> SemanticMatcher::Rerank(
    const std::string& query, const std::vector<uint32_t>& candidates,
    size_t top_k) const {
  Embedding q = embedder_.EmbedQuery(query);
  std::vector<Match> matches;
  matches.reserve(candidates.size());
  for (uint32_t doc : candidates) {
    if (doc >= doc_embeddings_.size()) continue;
    matches.push_back({doc, Score(q, doc)});
  }
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (matches.size() > top_k) matches.resize(top_k);
  return matches;
}

}  // namespace rpg::match
