#include "match/semantic_matcher.h"

#include <algorithm>

#include "common/logging.h"

namespace rpg::match {

SemanticMatcher::SemanticMatcher(const std::vector<std::string>& titles,
                                 const std::vector<std::string>& abstracts,
                                 const HashedEmbedderOptions& options)
    : embedder_(options) {
  RPG_CHECK(titles.size() == abstracts.size());
  num_docs_ = titles.size();
  const size_t dim = static_cast<size_t>(embedder_.dim());
  owned_.reserve(num_docs_ * dim);
  for (size_t i = 0; i < num_docs_; ++i) {
    Embedding e = embedder_.EmbedDocument(titles[i], abstracts[i]);
    owned_.insert(owned_.end(), e.begin(), e.end());
  }
  view_ = owned_;
}

std::unique_ptr<SemanticMatcher> SemanticMatcher::FromPrecomputed(
    std::span<const float> embeddings, size_t num_docs,
    const HashedEmbedderOptions& options) {
  auto matcher =
      std::unique_ptr<SemanticMatcher>(new SemanticMatcher(options));
  RPG_CHECK(embeddings.size() ==
            num_docs * static_cast<size_t>(matcher->embedder_.dim()));
  matcher->view_ = embeddings;
  matcher->num_docs_ = num_docs;
  return matcher;
}

std::vector<Match> SemanticMatcher::Rerank(
    const std::string& query, const std::vector<uint32_t>& candidates,
    size_t top_k) const {
  Embedding q = embedder_.EmbedQuery(query);
  std::vector<Match> matches;
  matches.reserve(candidates.size());
  for (uint32_t doc : candidates) {
    if (doc >= num_docs_) continue;
    matches.push_back({doc, Score(q, doc)});
  }
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (matches.size() > top_k) matches.resize(top_k);
  return matches;
}

}  // namespace rpg::match
