#ifndef RPG_STEINER_EXACT_H_
#define RPG_STEINER_EXACT_H_

#include <vector>

#include "common/result.h"
#include "steiner/newst.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// Exact node-and-edge weighted Steiner tree via the Dreyfus-Wagner
/// dynamic program, O(3^|S| n + 2^|S| n^2 + n^3)-ish. Practical only for
/// small instances (|S| <= ~12, n <= a few hundred); used to validate the
/// NEWST heuristic's approximation quality (the 2(1 - 1/l) bound of
/// §IV-B) in tests and the heuristic-ablation bench.
///
/// The objective matches SolveNewst: sum of tree-edge costs plus tree-node
/// weights (node weights skipped when options.use_node_weights is false;
/// unit edge costs when options.use_edge_weights is false).
///
/// Returns FailedPrecondition when the terminals are not mutually
/// connected, InvalidArgument for empty/out-of-range terminals or |S| >
/// 16.
Result<SteinerResult> SolveExactSteiner(const WeightedGraph& g,
                                        const std::vector<uint32_t>& terminals,
                                        const NewstOptions& options = {});

}  // namespace rpg::steiner

#endif  // RPG_STEINER_EXACT_H_
