#ifndef RPG_STEINER_NEWST_H_
#define RPG_STEINER_NEWST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "steiner/stats.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// How the terminal metric closure (KMB step 1) is built.
enum class ClosureMode : uint8_t {
  /// Mehlhorn (1988): ONE multi-source Dijkstra computes the Voronoi
  /// partition around the terminals; a scan over Voronoi-boundary edges
  /// yields a sparse closure subgraph whose MST carries the same
  /// 2(1 - 1/l) approximation guarantee as the full KMB closure. The
  /// resulting tree may differ from classic mode on instances where
  /// boundary paths are not global shortest paths (both trees stay
  /// within the bound). O(E log V) regardless of |S|. The default hot
  /// path.
  kMehlhorn = 0,
  /// The textbook KMB closure: one full Dijkstra per terminal,
  /// O(|S| E log V). Kept as the ablation / cross-verification mode.
  kClassic = 1,
};

/// Variant switches for the ablation study (§VI-B, Table III right).
struct NewstOptions {
  /// Include node weights in path distances and the objective (off =
  /// NEWST-N).
  bool use_node_weights = true;
  /// Use per-edge costs; when false every edge costs 1 (NEWST-E).
  bool use_edge_weights = true;
  /// Metric-closure construction; both modes produce trees within the
  /// same 2(1 - 1/l) bound, kClassic exists for ablations and tests.
  ClosureMode closure_mode = ClosureMode::kMehlhorn;
};

/// Output of the solver: a Steiner tree (or forest when some terminals
/// are mutually unreachable) spanning the reachable terminals.
struct SteinerResult {
  /// All tree nodes (terminals + Steiner nodes), sorted.
  std::vector<uint32_t> nodes;
  /// Tree edges (u < v), sorted.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  /// Objective value of Eq. (1): sum of tree-edge costs + tree-node
  /// weights (node weights counted only when use_node_weights).
  double total_cost = 0.0;
  /// Terminals dropped because no path connected them to the first
  /// terminal's component.
  std::vector<uint32_t> unreachable_terminals;
  /// Work counters (settled nodes, heap pushes, closure edges, closure
  /// wall clock) for the run that produced this tree.
  SteinerStats stats;
};

/// Validates + dedups a terminal set: sorts, collapses duplicates, and
/// rejects empty sets or out-of-range ids with InvalidArgument. Shared by
/// every Steiner solver so the rules cannot drift.
Result<std::vector<uint32_t>> CanonicalTerminals(
    const WeightedGraph& g, const std::vector<uint32_t>& terminals);

/// Node-Edge Weighted Steiner Tree heuristic — Algorithm 1 of the paper
/// (the KMB construction of Kou, Markowsky & Berman 1981 generalized to
/// node weights):
///   1. build the metric closure over the terminals S (shortest paths
///      account for node weights + edge costs) — per options.closure_mode
///      either the classic per-terminal closure or Mehlhorn's single-pass
///      Voronoi construction,
///   2. MST of the closure,
///   3. expand each MST edge into its underlying shortest path, forming
///      the subgraph Gs,
///   4. MST of Gs, then repeatedly prune non-terminal leaves.
/// Guarantees cost(T) <= 2(1 - 1/l) * OPT with l the number of leaves in
/// the optimal tree (both closure modes). Time O(E log V) in Mehlhorn
/// mode, O(|S| E log V) classic.
///
/// Returns InvalidArgument for an empty terminal set or out-of-range
/// terminal ids. Duplicate terminals are collapsed.
Result<SteinerResult> SolveNewst(const WeightedGraph& g,
                                 const std::vector<uint32_t>& terminals,
                                 const NewstOptions& options = {});

/// SolveNewst with options.closure_mode forced to kMehlhorn — the
/// single-pass fast path, exposed by name for benches and call sites that
/// want the speedup regardless of ambient options.
Result<SteinerResult> SolveNewstFast(const WeightedGraph& g,
                                     const std::vector<uint32_t>& terminals,
                                     const NewstOptions& options = {});

}  // namespace rpg::steiner

#endif  // RPG_STEINER_NEWST_H_
