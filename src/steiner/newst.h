#ifndef RPG_STEINER_NEWST_H_
#define RPG_STEINER_NEWST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// Variant switches for the ablation study (§VI-B, Table III right).
struct NewstOptions {
  /// Include node weights in path distances and the objective (off =
  /// NEWST-N).
  bool use_node_weights = true;
  /// Use per-edge costs; when false every edge costs 1 (NEWST-E).
  bool use_edge_weights = true;
};

/// Output of the solver: a Steiner tree (or forest when some terminals
/// are mutually unreachable) spanning the reachable terminals.
struct SteinerResult {
  /// All tree nodes (terminals + Steiner nodes), sorted.
  std::vector<uint32_t> nodes;
  /// Tree edges (u < v), sorted.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  /// Objective value of Eq. (1): sum of tree-edge costs + tree-node
  /// weights (node weights counted only when use_node_weights).
  double total_cost = 0.0;
  /// Terminals dropped because no path connected them to the first
  /// terminal's component.
  std::vector<uint32_t> unreachable_terminals;
};

/// Node-Edge Weighted Steiner Tree heuristic — Algorithm 1 of the paper
/// (the KMB construction of Kou, Markowsky & Berman 1981 generalized to
/// node weights):
///   1. build the metric closure over the terminals S (shortest paths
///      account for node weights + edge costs),
///   2. MST of the closure,
///   3. expand each MST edge into its underlying shortest path, forming
///      the subgraph Gs,
///   4. MST of Gs, then repeatedly prune non-terminal leaves.
/// Guarantees cost(T) <= 2(1 - 1/l) * OPT with l the number of leaves in
/// the optimal tree. Worst-case time O(|S| |V|^2).
///
/// Returns InvalidArgument for an empty terminal set or out-of-range
/// terminal ids. Duplicate terminals are collapsed.
Result<SteinerResult> SolveNewst(const WeightedGraph& g,
                                 const std::vector<uint32_t>& terminals,
                                 const NewstOptions& options = {});

}  // namespace rpg::steiner

#endif  // RPG_STEINER_NEWST_H_
