#ifndef RPG_STEINER_WEIGHTED_GRAPH_H_
#define RPG_STEINER_WEIGHTED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace rpg::steiner {

/// Undirected graph with positive edge costs and non-negative node
/// weights — the input to the NEWST solver (G = (V, E, S, w, c) of
/// §IV-B). Node ids are dense local ids 0..n-1; the RePaGer pipeline maps
/// them back to global paper ids.
///
/// Immutable compressed-sparse-row storage (same design as
/// graph::CitationGraph): flat offsets/targets/costs arrays, each node's
/// neighbor span sorted ascending by (target, cost). Construct via
/// WeightedGraphBuilder. Sorted spans give O(log d) EdgeCost via binary
/// search and cache-friendly sequential scans in the solver hot loops.
class WeightedGraph {
 public:
  /// Lightweight view over one node's (neighbor, cost) pairs, backed by
  /// the parallel targets/costs arrays. Iteration yields
  /// std::pair<uint32_t, double> by value, so existing structured-binding
  /// call sites (`for (const auto& [v, c] : g.Neighbors(u))`) work
  /// unchanged.
  class NeighborView {
   public:
    class iterator {
     public:
      iterator(const uint32_t* t, const double* c) : t_(t), c_(c) {}
      std::pair<uint32_t, double> operator*() const { return {*t_, *c_}; }
      iterator& operator++() {
        ++t_;
        ++c_;
        return *this;
      }
      bool operator==(const iterator& o) const { return t_ == o.t_; }
      bool operator!=(const iterator& o) const { return t_ != o.t_; }

     private:
      const uint32_t* t_;
      const double* c_;
    };

    NeighborView(const uint32_t* targets, const double* costs, size_t size)
        : targets_(targets), costs_(costs), size_(size) {}

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::pair<uint32_t, double> operator[](size_t i) const {
      return {targets_[i], costs_[i]};
    }
    iterator begin() const { return {targets_, costs_}; }
    iterator end() const { return {targets_ + size_, costs_ + size_}; }

   private:
    const uint32_t* targets_;
    const double* costs_;
    size_t size_;
  };

  WeightedGraph() = default;

  size_t num_nodes() const { return node_weight_.size(); }
  size_t num_edges() const { return num_edges_; }

  double NodeWeight(uint32_t v) const { return node_weight_[v]; }

  /// (neighbor, cost) pairs, sorted ascending by neighbor id.
  NeighborView Neighbors(uint32_t v) const {
    size_t b = offsets_[v], e = offsets_[v + 1];
    return {targets_.data() + b, costs_.data() + b, e - b};
  }

  /// Raw CSR spans for hot loops that want structure-of-arrays access.
  std::span<const uint32_t> Targets(uint32_t v) const {
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  std::span<const double> Costs(uint32_t v) const {
    return {costs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  size_t Degree(uint32_t v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Total cost of a tree given by its edges: Eq. (1), i.e. the sum of
  /// edge costs plus the weights of all incident nodes (each counted
  /// once). An empty edge set with one node `lone` costs w(lone).
  double TreeCost(const std::vector<std::pair<uint32_t, uint32_t>>& edges)
      const;

  /// Cheapest direct edge cost between u and v; +inf when absent.
  /// O(log d) binary search over u's sorted neighbor span.
  double EdgeCost(uint32_t u, uint32_t v) const;

 private:
  friend class WeightedGraphBuilder;
  friend WeightedGraph UnitCostCopy(const WeightedGraph& g);

  std::vector<uint64_t> offsets_;  // size num_nodes + 1 (empty graph: {0})
  std::vector<uint32_t> targets_;
  std::vector<double> costs_;
  std::vector<double> node_weight_;
  size_t num_edges_ = 0;
};

/// Accumulates edges and node weights, then freezes them into the CSR
/// WeightedGraph. Parallel edges are allowed but the algorithms treat the
/// cheapest as effective.
///
/// The builder is reusable: after Build()/BuildInto() it is left empty
/// (zero weights, no edges) but keeps its array capacity, and Reset()
/// re-targets it at a new node count. A long-lived builder per worker
/// (see core::QueryScratch) makes repeated weighted-subgraph builds
/// allocation-free after warm-up.
class WeightedGraphBuilder {
 public:
  explicit WeightedGraphBuilder(size_t num_nodes)
      : num_nodes_(num_nodes), node_weight_(num_nodes, 0.0) {}

  /// Clears all pending state and re-targets the builder at `num_nodes`
  /// nodes, keeping allocated capacity.
  void Reset(size_t num_nodes);

  /// Adds an undirected edge with a positive cost.
  void AddEdge(uint32_t u, uint32_t v, double cost);

  void SetNodeWeight(uint32_t v, double w) { node_weight_[v] = w; }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  void ReserveEdges(size_t n) { edges_.reserve(n); }

  /// Freezes into the immutable CSR form. The builder is left empty.
  WeightedGraph Build();

  /// Build() variant that reuses `out`'s array capacity — the scratch
  /// path for callers that keep a WeightedGraph object alive across
  /// queries. The builder is left empty, as with Build().
  void BuildInto(WeightedGraph* out);

 private:
  struct PendingEdge {
    uint32_t u, v;
    double cost;
  };
  size_t num_nodes_;
  std::vector<PendingEdge> edges_;
  std::vector<double> node_weight_;
  // Reusable per-span sort temporaries for BuildInto.
  std::vector<uint64_t> cursor_;
  std::vector<uint32_t> perm_;
  std::vector<uint32_t> tmp_targets_;
  std::vector<double> tmp_costs_;
};

/// Copy of g with every edge cost replaced by 1 (the NEWST-E ablation).
/// Shared by the NEWST, Takahashi-Matsuyama and exact solvers. With CSR
/// storage this is a flat array copy — no rebuild.
WeightedGraph UnitCostCopy(const WeightedGraph& g);

}  // namespace rpg::steiner

#endif  // RPG_STEINER_WEIGHTED_GRAPH_H_
