#ifndef RPG_STEINER_WEIGHTED_GRAPH_H_
#define RPG_STEINER_WEIGHTED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rpg::steiner {

/// Undirected graph with positive edge costs and non-negative node
/// weights — the input to the NEWST solver (G = (V, E, S, w, c) of
/// §IV-B). Node ids are dense local ids 0..n-1; the RePaGer pipeline maps
/// them back to global paper ids.
class WeightedGraph {
 public:
  explicit WeightedGraph(size_t num_nodes)
      : adj_(num_nodes), node_weight_(num_nodes, 0.0) {}

  size_t num_nodes() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Adds an undirected edge with a positive cost. Parallel edges are
  /// allowed but the algorithms treat the cheapest as effective.
  void AddEdge(uint32_t u, uint32_t v, double cost);

  void SetNodeWeight(uint32_t v, double w) { node_weight_[v] = w; }
  double NodeWeight(uint32_t v) const { return node_weight_[v]; }

  /// (neighbor, cost) pairs.
  const std::vector<std::pair<uint32_t, double>>& Neighbors(uint32_t v) const {
    return adj_[v];
  }

  /// Total cost of a tree given by its edges: Eq. (1), i.e. the sum of
  /// edge costs plus the weights of all incident nodes (each counted
  /// once). An empty edge set with one node `lone` costs w(lone).
  double TreeCost(const std::vector<std::pair<uint32_t, uint32_t>>& edges)
      const;

  /// Cheapest direct edge cost between u and v; +inf when absent.
  double EdgeCost(uint32_t u, uint32_t v) const;

 private:
  std::vector<std::vector<std::pair<uint32_t, double>>> adj_;
  std::vector<double> node_weight_;
  size_t num_edges_ = 0;
};

}  // namespace rpg::steiner

#endif  // RPG_STEINER_WEIGHTED_GRAPH_H_
