#include "steiner/exact.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include "common/string_util.h"
#include "steiner/dijkstra.h"

namespace rpg::steiner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<SteinerResult> SolveExactSteiner(const WeightedGraph& g,
                                        const std::vector<uint32_t>& terminals,
                                        const NewstOptions& options) {
  RPG_ASSIGN_OR_RETURN(std::vector<uint32_t> terms,
                       CanonicalTerminals(g, terminals));
  if (terms.size() > 12) {
    return Status::InvalidArgument(
        StrFormat("Dreyfus-Wagner supports at most 12 terminals, got %zu",
                  terms.size()));
  }

  std::optional<WeightedGraph> unit;
  const WeightedGraph* eg = &g;
  if (!options.use_edge_weights) {
    unit = UnitCostCopy(g);
    eg = &*unit;
  }
  const size_t n = eg->num_nodes();

  if (terms.size() == 1) {
    SteinerResult result;
    result.nodes = {terms[0]};
    if (options.use_node_weights) {
      result.total_cost = g.NodeWeight(terms[0]);
    }
    return result;
  }

  // All-pairs "rooted" distances: dist[v][u] = cheapest v -> u path cost
  // counting every node weight on the path except v's.
  std::vector<ShortestPathTree> spt;
  spt.reserve(n);
  for (uint32_t v = 0; v < n; ++v) {
    spt.push_back(Dijkstra(*eg, v, options.use_node_weights));
  }
  for (uint32_t t : terms) {
    for (uint32_t s : terms) {
      if (spt[t].dist[s] == kInf) {
        return Status::FailedPrecondition(
            StrFormat("terminals %u and %u are disconnected", t, s));
      }
    }
  }

  // Dreyfus-Wagner over the terminals except the anchor t0.
  const uint32_t t0 = terms.back();
  std::vector<uint32_t> rest(terms.begin(), terms.end() - 1);
  const uint32_t k = static_cast<uint32_t>(rest.size());
  const uint32_t full = (1u << k) - 1;

  // dp[mask][v]: cheapest tree containing {rest[i] : i in mask} + v,
  // counting every node weight except v's. best_u / best_sub record the
  // decisions for reconstruction.
  std::vector<std::vector<double>> dp(full + 1, std::vector<double>(n, kInf));
  std::vector<std::vector<uint32_t>> best_u(
      full + 1, std::vector<uint32_t>(n, UINT32_MAX));
  std::vector<std::vector<uint32_t>> best_sub(
      full + 1, std::vector<uint32_t>(n, 0));

  for (uint32_t i = 0; i < k; ++i) {
    uint32_t mask = 1u << i;
    for (uint32_t v = 0; v < n; ++v) {
      dp[mask][v] = spt[v].dist[rest[i]];
      best_u[mask][v] = v;  // attach directly toward the terminal
    }
  }
  std::vector<double> merged(n);
  std::vector<uint32_t> merged_sub(n);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // single bit handled above
    // Merge step: two sub-forests joined at u.
    for (uint32_t u = 0; u < n; ++u) {
      merged[u] = kInf;
      merged_sub[u] = 0;
      for (uint32_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        if (sub > (mask ^ sub)) continue;  // each split once
        // Both halves exclude w(u), and the merged tree must exclude it
        // exactly once as well, so the plain sum is already correct.
        double cost = dp[sub][u] + dp[mask ^ sub][u];
        if (cost < merged[u]) {
          merged[u] = cost;
          merged_sub[u] = sub;
        }
      }
    }
    // Attach step: connect a root v to the best junction u.
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t u = 0; u < n; ++u) {
        if (merged[u] == kInf) continue;
        double d = v == u ? 0.0 : spt[v].dist[u];
        if (d == kInf) continue;
        double cost = merged[u] + d;
        if (cost < dp[mask][v]) {
          dp[mask][v] = cost;
          best_u[mask][v] = u;
          best_sub[mask][v] = merged_sub[u];
        }
      }
    }
  }

  // ---- Reconstruction -------------------------------------------------
  std::set<uint32_t> node_set = {t0};
  std::set<std::pair<uint32_t, uint32_t>> edge_set;
  auto add_path = [&](uint32_t from, uint32_t to) {
    std::vector<uint32_t> path = spt[from].PathTo(to);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      uint32_t a = path[i], b = path[i + 1];
      node_set.insert(a);
      node_set.insert(b);
      edge_set.insert({std::min(a, b), std::max(a, b)});
    }
    node_set.insert(to);
  };
  // Recursive expansion of dp decisions.
  auto expand = [&](auto&& self, uint32_t mask, uint32_t v) -> void {
    uint32_t u = best_u[mask][v];
    if (u != v) add_path(v, u);
    if ((mask & (mask - 1)) == 0) {
      // Single terminal: u connects straight to it.
      int bit = __builtin_ctz(mask);
      add_path(u, rest[static_cast<size_t>(bit)]);
      return;
    }
    uint32_t sub = best_sub[mask][v];
    self(self, sub, u);
    self(self, mask ^ sub, u);
  };
  expand(expand, full, t0);

  SteinerResult result;
  result.nodes.assign(node_set.begin(), node_set.end());
  for (const auto& [a, b] : edge_set) {
    result.edges.emplace_back(a, b);
    result.total_cost += eg->EdgeCost(a, b);
  }
  if (options.use_node_weights) {
    for (uint32_t v : result.nodes) result.total_cost += g.NodeWeight(v);
  }
  return result;
}

}  // namespace rpg::steiner
