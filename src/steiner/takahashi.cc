#include "steiner/takahashi.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/dary_heap.h"

namespace rpg::steiner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<SteinerResult> SolveTakahashiMatsuyama(
    const WeightedGraph& g, const std::vector<uint32_t>& terminals,
    const NewstOptions& options) {
  RPG_ASSIGN_OR_RETURN(std::vector<uint32_t> terms,
                       CanonicalTerminals(g, terminals));
  std::optional<WeightedGraph> unit;
  const WeightedGraph* eg = &g;
  if (!options.use_edge_weights) {
    unit = UnitCostCopy(g);
    eg = &*unit;
  }

  const size_t n = eg->num_nodes();
  SteinerResult result;
  SteinerStats& stats = result.stats;

  // Incremental multi-source Dijkstra from the growing tree: tree nodes
  // are 0-distance sources. After attaching a path we RE-SEED the
  // persistent heap with just the new tree nodes and resume relaxation,
  // instead of recomputing distance-from-tree from scratch per terminal
  // (the seed behaviour, which cost one full Dijkstra per terminal).
  // Continuing a Dijkstra after adding 0-cost sources reaches the same
  // fixpoint as restarting, because distances only ever decrease and
  // stale heap entries are skipped.
  std::vector<double> dist(n, kInf);
  std::vector<uint32_t> parent(n, UINT32_MAX);
  std::vector<uint8_t> in_tree(n, 0);
  std::vector<uint32_t> tree_nodes;
  // Persistent across attach/re-seed rounds; same pop order as the
  // binary heap it replaced (total lexicographic order on entries).
  using Entry = std::pair<double, uint32_t>;
  DaryHeap<Entry> pq;

  auto add_tree_node = [&](uint32_t v) {
    in_tree[v] = 1;
    tree_nodes.push_back(v);
    dist[v] = 0.0;
    parent[v] = UINT32_MAX;
    pq.emplace(0.0, v);
    ++stats.heap_pushes;
  };
  add_tree_node(terms[0]);

  std::vector<uint8_t> remaining(n, 0);
  size_t remaining_count = terms.size() - 1;
  for (size_t i = 1; i < terms.size(); ++i) remaining[terms[i]] = 1;

  result.edges.reserve(terms.size());
  while (remaining_count > 0) {
    // Relax to fixpoint from the current tree frontier.
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      ++stats.nodes_settled;
      for (const auto& [v, cost] : eg->Neighbors(u)) {
        // in_tree[v] implies dist[v] == 0, which no relaxation beats, so
        // the node-weight term only matters for non-tree nodes.
        double nd = d + cost;
        if (options.use_node_weights) nd += g.NodeWeight(v);
        if (nd < dist[v]) {
          dist[v] = nd;
          parent[v] = u;
          pq.emplace(nd, v);
          ++stats.heap_pushes;
        }
      }
    }
    ++stats.dijkstra_runs;
    // Closest remaining terminal.
    uint32_t best = UINT32_MAX;
    for (size_t i = 1; i < terms.size(); ++i) {
      uint32_t t = terms[i];
      if (!remaining[t] || dist[t] == kInf) continue;
      if (best == UINT32_MAX || dist[t] < dist[best]) best = t;
    }
    if (best == UINT32_MAX) {
      // Everything left is unreachable from the growing tree.
      for (size_t i = 1; i < terms.size(); ++i) {
        uint32_t t = terms[i];
        if (!remaining[t]) continue;
        result.unreachable_terminals.push_back(t);
        if (!in_tree[t]) {
          // Keep it as an isolated node, like SolveNewst. Do NOT seed the
          // heap from it: its component is disjoint from the tree's.
          in_tree[t] = 1;
          tree_nodes.push_back(t);
        }
      }
      break;
    }
    // Walk the path back into the tree, re-seeding the heap with every
    // node that joins.
    uint32_t cur = best;
    while (!in_tree[cur]) {
      uint32_t up = parent[cur];
      result.edges.emplace_back(std::min(cur, up), std::max(cur, up));
      add_tree_node(cur);
      cur = up;
    }
    remaining[best] = 0;
    --remaining_count;
  }

  std::sort(tree_nodes.begin(), tree_nodes.end());
  result.nodes = std::move(tree_nodes);
  std::sort(result.edges.begin(), result.edges.end());
  for (const auto& [a, b] : result.edges) {
    result.total_cost += eg->EdgeCost(a, b);
  }
  if (options.use_node_weights) {
    for (uint32_t v : result.nodes) result.total_cost += g.NodeWeight(v);
  }
  return result;
}

}  // namespace rpg::steiner
