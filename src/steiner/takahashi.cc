#include "steiner/takahashi.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>
#include <set>

#include "common/string_util.h"

namespace rpg::steiner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

WeightedGraph UnitCostCopy(const WeightedGraph& g) {
  WeightedGraph unit(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    unit.SetNodeWeight(u, g.NodeWeight(u));
    for (const auto& [v, cost] : g.Neighbors(u)) {
      if (u < v) unit.AddEdge(u, v, 1.0);
    }
  }
  return unit;
}

/// Multi-source Dijkstra from every node already in the tree (cost 0
/// sources), yielding per-node distance and the parent links back toward
/// the tree. Distances count edge costs plus (optionally) the weights of
/// nodes outside the tree.
void DistanceFromTree(const WeightedGraph& g, const std::set<uint32_t>& tree,
                      bool use_node_weights, std::vector<double>* dist,
                      std::vector<uint32_t>* parent) {
  const size_t n = g.num_nodes();
  dist->assign(n, kInf);
  parent->assign(n, UINT32_MAX);
  using Entry = std::pair<double, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (uint32_t v : tree) {
    (*dist)[v] = 0.0;
    pq.emplace(0.0, v);
  }
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > (*dist)[u]) continue;
    for (const auto& [v, cost] : g.Neighbors(u)) {
      double nd = d + cost;
      if (use_node_weights && !tree.contains(v)) nd += g.NodeWeight(v);
      if (nd < (*dist)[v]) {
        (*dist)[v] = nd;
        (*parent)[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
}

}  // namespace

Result<SteinerResult> SolveTakahashiMatsuyama(
    const WeightedGraph& g, const std::vector<uint32_t>& terminals,
    const NewstOptions& options) {
  if (terminals.empty()) {
    return Status::InvalidArgument("terminal set is empty");
  }
  std::vector<uint32_t> terms = terminals;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (uint32_t t : terms) {
    if (t >= g.num_nodes()) {
      return Status::InvalidArgument(StrFormat("terminal %u out of range", t));
    }
  }
  std::optional<WeightedGraph> unit;
  const WeightedGraph* eg = &g;
  if (!options.use_edge_weights) {
    unit = UnitCostCopy(g);
    eg = &*unit;
  }

  SteinerResult result;
  std::set<uint32_t> tree = {terms[0]};
  std::set<uint32_t> remaining(terms.begin() + 1, terms.end());
  std::set<std::pair<uint32_t, uint32_t>> edges;

  std::vector<double> dist;
  std::vector<uint32_t> parent;
  while (!remaining.empty()) {
    DistanceFromTree(*eg, tree, options.use_node_weights, &dist, &parent);
    // Closest remaining terminal.
    uint32_t best = UINT32_MAX;
    for (uint32_t t : remaining) {
      if (dist[t] == kInf) continue;
      if (best == UINT32_MAX || dist[t] < dist[best]) best = t;
    }
    if (best == UINT32_MAX) {
      // Everything left is unreachable from the growing tree.
      for (uint32_t t : remaining) {
        result.unreachable_terminals.push_back(t);
        tree.insert(t);  // keep it as an isolated node, like SolveNewst
      }
      break;
    }
    // Walk the path back into the tree.
    uint32_t cur = best;
    while (!tree.contains(cur)) {
      uint32_t up = parent[cur];
      edges.insert({std::min(cur, up), std::max(cur, up)});
      tree.insert(cur);
      cur = up;
    }
    remaining.erase(best);
  }

  result.nodes.assign(tree.begin(), tree.end());
  for (const auto& [a, b] : edges) {
    result.edges.emplace_back(a, b);
    result.total_cost += eg->EdgeCost(a, b);
  }
  if (options.use_node_weights) {
    for (uint32_t v : result.nodes) result.total_cost += g.NodeWeight(v);
  }
  return result;
}

}  // namespace rpg::steiner
