#ifndef RPG_STEINER_STATS_H_
#define RPG_STEINER_STATS_H_

#include <cstdint>

namespace rpg::steiner {

/// Work counters threaded through the Steiner solvers so benchmarks can
/// report algorithmic effort (not just wall clock). The classic KMB
/// closure runs one Dijkstra per terminal — O(|S| E log V) — while the
/// Mehlhorn closure settles every node exactly once; these counters make
/// that difference observable.
struct SteinerStats {
  /// Nodes popped from a Dijkstra heap with a fresh (non-stale) distance.
  uint64_t nodes_settled = 0;
  /// Total priority-queue insertions across all Dijkstra runs.
  uint64_t heap_pushes = 0;
  /// Candidate terminal-to-terminal edges fed to the closure MST.
  uint64_t closure_edges = 0;
  /// Number of (single- or multi-source) Dijkstra executions.
  uint64_t dijkstra_runs = 0;
  /// Wall-clock seconds spent building the terminal metric closure
  /// (phase 1 of KMB) — the part the Mehlhorn construction accelerates.
  double closure_seconds = 0.0;

  void Add(const SteinerStats& o) {
    nodes_settled += o.nodes_settled;
    heap_pushes += o.heap_pushes;
    closure_edges += o.closure_edges;
    dijkstra_runs += o.dijkstra_runs;
    closure_seconds += o.closure_seconds;
  }
};

}  // namespace rpg::steiner

#endif  // RPG_STEINER_STATS_H_
