#include "steiner/weighted_graph.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"

namespace rpg::steiner {

void WeightedGraph::AddEdge(uint32_t u, uint32_t v, double cost) {
  RPG_CHECK(u < adj_.size() && v < adj_.size()) << "edge endpoint out of range";
  RPG_CHECK(u != v) << "self loops are not allowed";
  RPG_CHECK(cost > 0.0) << "edge costs must be positive";
  adj_[u].emplace_back(v, cost);
  adj_[v].emplace_back(u, cost);
  ++num_edges_;
}

double WeightedGraph::TreeCost(
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) const {
  double cost = 0.0;
  std::set<uint32_t> nodes;
  for (const auto& [u, v] : edges) {
    cost += EdgeCost(u, v);
    nodes.insert(u);
    nodes.insert(v);
  }
  for (uint32_t v : nodes) cost += node_weight_[v];
  return cost;
}

double WeightedGraph::EdgeCost(uint32_t u, uint32_t v) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [n, c] : adj_[u]) {
    if (n == v) best = std::min(best, c);
  }
  return best;
}

}  // namespace rpg::steiner
