#include "steiner/weighted_graph.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace rpg::steiner {

double WeightedGraph::TreeCost(
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) const {
  double cost = 0.0;
  std::vector<uint8_t> seen(num_nodes(), 0);
  for (const auto& [u, v] : edges) {
    cost += EdgeCost(u, v);
    if (!seen[u]) {
      seen[u] = 1;
      cost += node_weight_[u];
    }
    if (!seen[v]) {
      seen[v] = 1;
      cost += node_weight_[v];
    }
  }
  return cost;
}

double WeightedGraph::EdgeCost(uint32_t u, uint32_t v) const {
  std::span<const uint32_t> targets = Targets(u);
  auto it = std::lower_bound(targets.begin(), targets.end(), v);
  if (it == targets.end() || *it != v) {
    return std::numeric_limits<double>::infinity();
  }
  // Spans are sorted by (target, cost), so the first hit is the cheapest
  // parallel edge.
  return Costs(u)[static_cast<size_t>(it - targets.begin())];
}

void WeightedGraphBuilder::AddEdge(uint32_t u, uint32_t v, double cost) {
  RPG_CHECK(u < num_nodes_ && v < num_nodes_) << "edge endpoint out of range";
  RPG_CHECK(u != v) << "self loops are not allowed";
  RPG_CHECK(cost > 0.0) << "edge costs must be positive";
  edges_.push_back({u, v, cost});
}

void WeightedGraphBuilder::Reset(size_t num_nodes) {
  num_nodes_ = num_nodes;
  node_weight_.assign(num_nodes, 0.0);
  edges_.clear();
}

WeightedGraph WeightedGraphBuilder::Build() {
  WeightedGraph g;
  BuildInto(&g);
  return g;
}

void WeightedGraphBuilder::BuildInto(WeightedGraph* out) {
  WeightedGraph& g = *out;
  const size_t n = num_nodes_;
  const size_t m = edges_.size();
  g.num_edges_ = m;
  // Copy (not move) so the builder's capacity survives for the next
  // Reset/Build cycle; assign reuses g's capacity likewise.
  g.node_weight_.assign(node_weight_.begin(), node_weight_.end());
  node_weight_.assign(n, 0.0);

  // Counting sort into CSR: each undirected edge lands in both endpoints'
  // spans.
  g.offsets_.assign(n + 1, 0);
  for (const PendingEdge& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  g.targets_.resize(2 * m);
  g.costs_.resize(2 * m);
  cursor_.assign(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const PendingEdge& e : edges_) {
    uint64_t pu = cursor_[e.u]++;
    g.targets_[pu] = e.v;
    g.costs_[pu] = e.cost;
    uint64_t pv = cursor_[e.v]++;
    g.targets_[pv] = e.u;
    g.costs_[pv] = e.cost;
  }
  edges_.clear();

  // Sort each span by (target, cost) so membership is a binary search and
  // the cheapest parallel edge comes first.
  for (size_t v = 0; v < n; ++v) {
    size_t b = g.offsets_[v], e = g.offsets_[v + 1];
    size_t d = e - b;
    if (d < 2) continue;
    perm_.resize(d);
    std::iota(perm_.begin(), perm_.end(), 0u);
    uint32_t* t = g.targets_.data() + b;
    double* c = g.costs_.data() + b;
    std::sort(perm_.begin(), perm_.end(), [&](uint32_t a, uint32_t o) {
      if (t[a] != t[o]) return t[a] < t[o];
      return c[a] < c[o];
    });
    tmp_targets_.assign(t, t + d);
    tmp_costs_.assign(c, c + d);
    for (size_t i = 0; i < d; ++i) {
      t[i] = tmp_targets_[perm_[i]];
      c[i] = tmp_costs_[perm_[i]];
    }
  }
}

WeightedGraph UnitCostCopy(const WeightedGraph& g) {
  WeightedGraph unit;
  unit.offsets_ = g.offsets_;
  unit.targets_ = g.targets_;
  unit.costs_.assign(g.costs_.size(), 1.0);
  unit.node_weight_ = g.node_weight_;
  unit.num_edges_ = g.num_edges_;
  return unit;
}

}  // namespace rpg::steiner
