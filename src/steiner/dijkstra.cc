#include "steiner/dijkstra.h"

#include <algorithm>
#include <limits>

#include "common/dary_heap.h"

namespace rpg::steiner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
using Entry = std::pair<double, uint32_t>;  // (dist, node)
// 4-ary min-heap under lexicographic (dist, node) order: pops the exact
// same entry sequence the binary std::priority_queue did (the order is
// total), just with shallower sift-ups on the push-heavy lazy-deletion
// workload. See common/dary_heap.h.
using MinHeap = DaryHeap<Entry>;
}  // namespace

std::vector<uint32_t> ShortestPathTree::PathTo(uint32_t target) const {
  if (target >= dist.size() || dist[target] == kInf) {
    return {};
  }
  std::vector<uint32_t> path;
  uint32_t cur = target;
  while (cur != UINT32_MAX) {
    path.push_back(cur);
    cur = parent[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree Dijkstra(const WeightedGraph& g, uint32_t source,
                          bool include_node_weights, SteinerStats* stats) {
  const size_t n = g.num_nodes();
  ShortestPathTree tree;
  tree.dist.assign(n, kInf);
  tree.parent.assign(n, UINT32_MAX);
  if (source >= n) return tree;

  MinHeap pq;
  tree.dist[source] = 0.0;
  pq.emplace(0.0, source);
  uint64_t settled = 0, pushes = 1;
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > tree.dist[u]) continue;  // stale entry
    ++settled;
    for (const auto& [v, cost] : g.Neighbors(u)) {
      double nd = d + cost;
      if (include_node_weights) nd += g.NodeWeight(v);
      if (nd < tree.dist[v]) {
        tree.dist[v] = nd;
        tree.parent[v] = u;
        pq.emplace(nd, v);
        ++pushes;
      }
    }
  }
  if (stats != nullptr) {
    stats->nodes_settled += settled;
    stats->heap_pushes += pushes;
    ++stats->dijkstra_runs;
  }
  return tree;
}

std::vector<uint32_t> VoronoiPartition::PathFromSource(uint32_t v) const {
  if (v >= dist.size() || source[v] == UINT32_MAX) return {};
  std::vector<uint32_t> path;
  uint32_t cur = v;
  while (cur != UINT32_MAX) {
    path.push_back(cur);
    cur = parent[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

VoronoiPartition MultiSourceDijkstra(const WeightedGraph& g,
                                     const std::vector<uint32_t>& sources,
                                     bool include_node_weights,
                                     SteinerStats* stats) {
  const size_t n = g.num_nodes();
  VoronoiPartition vp;
  vp.dist.assign(n, kInf);
  vp.parent.assign(n, UINT32_MAX);
  vp.source.assign(n, UINT32_MAX);

  MinHeap pq;
  uint64_t settled = 0, pushes = 0;
  for (uint32_t i = 0; i < sources.size(); ++i) {
    uint32_t s = sources[i];
    if (s >= n || vp.source[s] != UINT32_MAX) continue;  // skip duplicates
    vp.dist[s] = 0.0;
    vp.source[s] = i;
    pq.emplace(0.0, s);
    ++pushes;
  }
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > vp.dist[u]) continue;
    ++settled;
    uint32_t owner = vp.source[u];
    for (const auto& [v, cost] : g.Neighbors(u)) {
      double nd = d + cost;
      if (include_node_weights) nd += g.NodeWeight(v);
      if (nd < vp.dist[v]) {
        vp.dist[v] = nd;
        vp.parent[v] = u;
        vp.source[v] = owner;
        pq.emplace(nd, v);
        ++pushes;
      }
    }
  }
  if (stats != nullptr) {
    stats->nodes_settled += settled;
    stats->heap_pushes += pushes;
    ++stats->dijkstra_runs;
  }
  return vp;
}

}  // namespace rpg::steiner
