#include "steiner/dijkstra.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace rpg::steiner {

std::vector<uint32_t> ShortestPathTree::PathTo(uint32_t target) const {
  if (target >= dist.size() ||
      dist[target] == std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<uint32_t> path;
  uint32_t cur = target;
  while (cur != UINT32_MAX) {
    path.push_back(cur);
    cur = parent[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree Dijkstra(const WeightedGraph& g, uint32_t source,
                          bool include_node_weights) {
  const size_t n = g.num_nodes();
  ShortestPathTree tree;
  tree.dist.assign(n, std::numeric_limits<double>::infinity());
  tree.parent.assign(n, UINT32_MAX);
  if (source >= n) return tree;

  using Entry = std::pair<double, uint32_t>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  tree.dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > tree.dist[u]) continue;  // stale entry
    for (const auto& [v, cost] : g.Neighbors(u)) {
      double nd = d + cost;
      if (include_node_weights) nd += g.NodeWeight(v);
      if (nd < tree.dist[v]) {
        tree.dist[v] = nd;
        tree.parent[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return tree;
}

}  // namespace rpg::steiner
