#ifndef RPG_STEINER_DIJKSTRA_H_
#define RPG_STEINER_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "steiner/stats.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// Result of a single-source shortest-path computation. Unreachable
/// nodes have dist == +inf and parent == UINT32_MAX.
struct ShortestPathTree {
  std::vector<double> dist;
  std::vector<uint32_t> parent;

  /// Reconstructs source -> target (inclusive); empty when unreachable.
  std::vector<uint32_t> PathTo(uint32_t target) const;
};

/// Dijkstra over a node-and-edge weighted graph. The distance of a path
/// source = v0, v1, ..., vk = target is
///
///   sum of edge costs + sum of node weights of v1..vk
///
/// i.e. every node except the source contributes its weight (§IV-B:
/// "a path whose distance, including node costs and edge weights, is
/// minimal"). Counting the target once and the source never makes the
/// metric-closure MST of KMB consistent: each tree node's weight appears
/// exactly once along the union of paths.
///
/// When `include_node_weights` is false, node weights are ignored
/// (the NEWST-N ablation). When `stats` is non-null, settled-node and
/// heap-push counters are accumulated into it.
ShortestPathTree Dijkstra(const WeightedGraph& g, uint32_t source,
                          bool include_node_weights = true,
                          SteinerStats* stats = nullptr);

/// Voronoi partition of the graph around a set of source nodes, computed
/// by ONE multi-source Dijkstra (Mehlhorn 1988). For every node v:
///   dist[v]   — distance to the nearest source (same node-weight
///               semantics as Dijkstra above: the owning source's weight
///               is never counted, v's own weight is),
///   parent[v] — predecessor on the shortest path back to that source,
///   source[v] — *index into `sources`* of the owning source
///               (UINT32_MAX when v is unreachable from every source).
/// Sources themselves have dist 0 and source[s] = their own index; a
/// duplicate source id keeps the first index.
struct VoronoiPartition {
  std::vector<double> dist;
  std::vector<uint32_t> parent;
  std::vector<uint32_t> source;

  /// Walks v's parent chain back to its owning source (inclusive),
  /// returning the path source -> ... -> v. Empty when unreachable.
  std::vector<uint32_t> PathFromSource(uint32_t v) const;
};

VoronoiPartition MultiSourceDijkstra(const WeightedGraph& g,
                                     const std::vector<uint32_t>& sources,
                                     bool include_node_weights = true,
                                     SteinerStats* stats = nullptr);

}  // namespace rpg::steiner

#endif  // RPG_STEINER_DIJKSTRA_H_
