#ifndef RPG_STEINER_DIJKSTRA_H_
#define RPG_STEINER_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// Result of a single-source shortest-path computation. Unreachable
/// nodes have dist == +inf and parent == UINT32_MAX.
struct ShortestPathTree {
  std::vector<double> dist;
  std::vector<uint32_t> parent;

  /// Reconstructs source -> target (inclusive); empty when unreachable.
  std::vector<uint32_t> PathTo(uint32_t target) const;
};

/// Dijkstra over a node-and-edge weighted graph. The distance of a path
/// source = v0, v1, ..., vk = target is
///
///   sum of edge costs + sum of node weights of v1..vk
///
/// i.e. every node except the source contributes its weight (§IV-B:
/// "a path whose distance, including node costs and edge weights, is
/// minimal"). Counting the target once and the source never makes the
/// metric-closure MST of KMB consistent: each tree node's weight appears
/// exactly once along the union of paths.
///
/// When `include_node_weights` is false, node weights are ignored
/// (the NEWST-N ablation).
ShortestPathTree Dijkstra(const WeightedGraph& g, uint32_t source,
                          bool include_node_weights = true);

}  // namespace rpg::steiner

#endif  // RPG_STEINER_DIJKSTRA_H_
