#include "steiner/newst.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "common/string_util.h"
#include "steiner/dijkstra.h"
#include "steiner/mst.h"

namespace rpg::steiner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Copies g with every edge cost replaced by 1 (NEWST-E ablation).
WeightedGraph UnitCostCopy(const WeightedGraph& g) {
  WeightedGraph unit(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    unit.SetNodeWeight(u, g.NodeWeight(u));
    for (const auto& [v, cost] : g.Neighbors(u)) {
      if (u < v) unit.AddEdge(u, v, 1.0);
    }
  }
  return unit;
}

}  // namespace

Result<SteinerResult> SolveNewst(const WeightedGraph& g,
                                 const std::vector<uint32_t>& terminals,
                                 const NewstOptions& options) {
  if (terminals.empty()) {
    return Status::InvalidArgument("terminal set is empty");
  }
  std::vector<uint32_t> terms = terminals;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (uint32_t t : terms) {
    if (t >= g.num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("terminal %u out of range (graph has %zu nodes)", t,
                    g.num_nodes()));
    }
  }

  // Effective graph for the ablations.
  std::optional<WeightedGraph> unit;
  const WeightedGraph* eg = &g;
  if (!options.use_edge_weights) {
    unit = UnitCostCopy(g);
    eg = &*unit;
  }

  // ---- Step 1: metric closure over the terminals --------------------
  const size_t k = terms.size();
  std::vector<ShortestPathTree> spt;
  spt.reserve(k);
  for (uint32_t t : terms) {
    spt.push_back(Dijkstra(*eg, t, options.use_node_weights));
  }
  std::vector<Edge> closure;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      double d = spt[i].dist[terms[j]];
      if (d < kInf) closure.push_back({i, j, d});
    }
  }

  // ---- Step 2: MST of the closure (forest when disconnected) --------
  std::vector<Edge> closure_mst = KruskalMst(k, closure);

  // ---- Step 3: expand closure-MST edges into shortest paths ---------
  std::set<uint32_t> node_set(terms.begin(), terms.end());
  std::set<std::pair<uint32_t, uint32_t>> edge_set;
  for (const Edge& e : closure_mst) {
    std::vector<uint32_t> path = spt[e.u].PathTo(terms[e.v]);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      uint32_t a = path[i], b = path[i + 1];
      node_set.insert(a);
      node_set.insert(b);
      edge_set.insert({std::min(a, b), std::max(a, b)});
    }
  }

  // ---- Step 4: MST of the expanded subgraph Gs, then prune ----------
  // Compact ids for Gs.
  std::map<uint32_t, uint32_t> to_compact;
  std::vector<uint32_t> to_original(node_set.begin(), node_set.end());
  for (uint32_t i = 0; i < to_original.size(); ++i) {
    to_compact[to_original[i]] = i;
  }
  std::vector<Edge> gs_edges;
  gs_edges.reserve(edge_set.size());
  for (const auto& [a, b] : edge_set) {
    gs_edges.push_back({to_compact[a], to_compact[b], eg->EdgeCost(a, b)});
  }
  std::vector<Edge> gs_mst = KruskalMst(to_original.size(), gs_edges);

  // Prune non-terminal leaves until fixpoint (classic KMB step 5).
  std::set<uint32_t> terminal_compact;
  for (uint32_t t : terms) terminal_compact.insert(to_compact[t]);
  std::vector<bool> removed_edge(gs_mst.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<int> degree(to_original.size(), 0);
    for (size_t i = 0; i < gs_mst.size(); ++i) {
      if (removed_edge[i]) continue;
      ++degree[gs_mst[i].u];
      ++degree[gs_mst[i].v];
    }
    for (size_t i = 0; i < gs_mst.size(); ++i) {
      if (removed_edge[i]) continue;
      const Edge& e = gs_mst[i];
      bool u_prunable = degree[e.u] == 1 && !terminal_compact.contains(e.u);
      bool v_prunable = degree[e.v] == 1 && !terminal_compact.contains(e.v);
      if (u_prunable || v_prunable) {
        removed_edge[i] = true;
        changed = true;
      }
    }
  }

  // ---- Assemble the result ------------------------------------------
  SteinerResult result;
  std::set<uint32_t> final_nodes(terms.begin(), terms.end());
  for (size_t i = 0; i < gs_mst.size(); ++i) {
    if (removed_edge[i]) continue;
    uint32_t a = to_original[gs_mst[i].u];
    uint32_t b = to_original[gs_mst[i].v];
    final_nodes.insert(a);
    final_nodes.insert(b);
    result.edges.emplace_back(std::min(a, b), std::max(a, b));
    result.total_cost += gs_mst[i].cost;
  }
  result.nodes.assign(final_nodes.begin(), final_nodes.end());
  std::sort(result.edges.begin(), result.edges.end());
  if (options.use_node_weights) {
    for (uint32_t v : result.nodes) result.total_cost += g.NodeWeight(v);
  }

  // Terminals outside the first terminal's closure component.
  DisjointSets components(k);
  for (const Edge& e : closure_mst) components.Union(e.u, e.v);
  uint32_t root = components.Find(0);
  for (uint32_t i = 1; i < k; ++i) {
    if (components.Find(i) != root) {
      result.unreachable_terminals.push_back(terms[i]);
    }
  }
  return result;
}

}  // namespace rpg::steiner
