#include "steiner/newst.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/flat_hash.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "steiner/dijkstra.h"
#include "steiner/mst.h"

namespace rpg::steiner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A closure edge between terminal indices plus the information needed to
/// expand it back into an underlying graph path. Classic mode stores the
/// terminal whose shortest-path tree reaches the other; Mehlhorn mode
/// stores the Voronoi-boundary graph edge (u, w) the path crosses.
struct ClosureEdge {
  uint32_t a = 0, b = 0;  // terminal indices, a < b
  double cost = 0.0;
  uint32_t boundary_u = UINT32_MAX;  // Mehlhorn: edge endpoint in cell of a
  uint32_t boundary_w = UINT32_MAX;  // Mehlhorn: edge endpoint in cell of b
};

}  // namespace

Result<std::vector<uint32_t>> CanonicalTerminals(
    const WeightedGraph& g, const std::vector<uint32_t>& terminals) {
  if (terminals.empty()) {
    return Status::InvalidArgument("terminal set is empty");
  }
  std::vector<uint32_t> terms = terminals;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (uint32_t t : terms) {
    if (t >= g.num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("terminal %u out of range (graph has %zu nodes)", t,
                    g.num_nodes()));
    }
  }
  return terms;
}

Result<SteinerResult> SolveNewst(const WeightedGraph& g,
                                 const std::vector<uint32_t>& terminals,
                                 const NewstOptions& options) {
  RPG_ASSIGN_OR_RETURN(std::vector<uint32_t> terms,
                       CanonicalTerminals(g, terminals));

  // Effective graph for the ablations.
  std::optional<WeightedGraph> unit;
  const WeightedGraph* eg = &g;
  if (!options.use_edge_weights) {
    unit = UnitCostCopy(g);
    eg = &*unit;
  }

  SteinerResult result;
  SteinerStats& stats = result.stats;
  const size_t k = terms.size();
  const size_t n = eg->num_nodes();

  // ---- Step 1: metric closure over the terminals --------------------
  // Classic: one Dijkstra per terminal, closure = all reachable pairs.
  // Mehlhorn: one multi-source Dijkstra -> Voronoi cells; every graph
  // edge crossing a cell boundary induces a closure candidate
  //   d(s_a, u) + c(u, w) + d(w, s_b)
  // and the cheapest candidate per terminal pair survives. The MST of
  // this (much sparser) closure graph yields the same KMB guarantee.
  Timer closure_timer;
  std::vector<ClosureEdge> closure;
  std::vector<ShortestPathTree> spt;        // classic only
  std::optional<VoronoiPartition> voronoi;  // Mehlhorn only
  // Mehlhorn only: terminal-pair key a * k + b -> index of the cheapest
  // candidate in `closure`, reused later to expand closure-MST edges.
  FlatMap<uint64_t, size_t> best_candidate;

  if (options.closure_mode == ClosureMode::kClassic) {
    spt.reserve(k);
    for (uint32_t t : terms) {
      spt.push_back(Dijkstra(*eg, t, options.use_node_weights, &stats));
    }
    for (uint32_t i = 0; i < k; ++i) {
      for (uint32_t j = i + 1; j < k; ++j) {
        double d = spt[i].dist[terms[j]];
        if (d < kInf) closure.push_back({i, j, d, UINT32_MAX, UINT32_MAX});
      }
    }
  } else {
    voronoi =
        MultiSourceDijkstra(*eg, terms, options.use_node_weights, &stats);
    const VoronoiPartition& vp = *voronoi;
    best_candidate.reserve(4 * k);
    for (uint32_t u = 0; u < n; ++u) {
      uint32_t cell_u = vp.source[u];
      if (cell_u == UINT32_MAX) continue;
      for (const auto& [w, cost] : eg->Neighbors(u)) {
        if (w < u) continue;  // scan each undirected edge once
        uint32_t cell_w = vp.source[w];
        if (cell_w == UINT32_MAX || cell_w == cell_u) continue;
        uint32_t a = std::min(cell_u, cell_w), b = std::max(cell_u, cell_w);
        // Voronoi distances exclude both terminals' weights — unlike the
        // classic closure, which prices pair (i, j) as
        // spt[i].dist[terms[j]] and so includes w(terms[j]). The pure
        // sum is deliberate: every terminal's weight is paid no matter
        // which closure edges are chosen, so the marginal cost of this
        // edge is exactly its edges + internal node weights. Empirically
        // this yields slightly cheaper trees than mirroring the classic
        // convention (see bench_table4's cost ratio).
        double d = vp.dist[u] + cost + vp.dist[w];
        uint64_t key = static_cast<uint64_t>(a) * k + b;
        if (const size_t* found = best_candidate.Find(key)) {
          if (d < closure[*found].cost) {
            closure[*found] = {a, b, d,
                               cell_u == a ? u : w,
                               cell_u == a ? w : u};
          }
        } else {
          best_candidate[key] = closure.size();
          closure.push_back({a, b, d,
                             cell_u == a ? u : w,
                             cell_u == a ? w : u});
        }
      }
    }
  }
  stats.closure_edges = closure.size();
  stats.closure_seconds = closure_timer.ElapsedSeconds();

  // ---- Step 2: MST of the closure (forest when disconnected) --------
  std::vector<Edge> closure_edges;
  closure_edges.reserve(closure.size());
  for (const ClosureEdge& e : closure) {
    closure_edges.push_back({e.a, e.b, e.cost});
  }
  std::vector<Edge> closure_mst_plain = KruskalMst(k, closure_edges);

  // ---- Step 3: expand closure-MST edges into shortest paths ---------
  std::vector<uint8_t> in_gs(n, 0);
  std::vector<uint32_t> gs_nodes;
  gs_nodes.reserve(2 * k);
  auto add_gs_node = [&](uint32_t v) {
    if (!in_gs[v]) {
      in_gs[v] = 1;
      gs_nodes.push_back(v);
    }
  };
  for (uint32_t t : terms) add_gs_node(t);
  std::vector<std::pair<uint32_t, uint32_t>> gs_edge_pairs;
  auto add_gs_path = [&](const std::vector<uint32_t>& path) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      uint32_t a = path[i], b = path[i + 1];
      add_gs_node(a);
      add_gs_node(b);
      gs_edge_pairs.emplace_back(std::min(a, b), std::max(a, b));
    }
  };
  for (const Edge& e : closure_mst_plain) {
    if (options.closure_mode == ClosureMode::kClassic) {
      add_gs_path(spt[e.u].PathTo(terms[e.v]));
    } else {
      uint64_t key = static_cast<uint64_t>(e.u) * k + e.v;
      const ClosureEdge* ce = &closure[*best_candidate.Find(key)];
      // Path: terminal a -> ... -> boundary_u -> boundary_w -> ... ->
      // terminal b, stitched from the two Voronoi parent chains.
      std::vector<uint32_t> path = voronoi->PathFromSource(ce->boundary_u);
      std::vector<uint32_t> tail = voronoi->PathFromSource(ce->boundary_w);
      path.insert(path.end(), tail.rbegin(), tail.rend());
      add_gs_path(path);
    }
  }
  std::sort(gs_edge_pairs.begin(), gs_edge_pairs.end());
  gs_edge_pairs.erase(std::unique(gs_edge_pairs.begin(), gs_edge_pairs.end()),
                      gs_edge_pairs.end());

  // ---- Step 4: MST of the expanded subgraph Gs, then prune ----------
  // Compact ids for Gs via a flat id-map (sorted for determinism).
  std::sort(gs_nodes.begin(), gs_nodes.end());
  const std::vector<uint32_t>& to_original = gs_nodes;
  std::vector<uint32_t> to_compact(n, UINT32_MAX);
  for (uint32_t i = 0; i < to_original.size(); ++i) {
    to_compact[to_original[i]] = i;
  }
  std::vector<Edge> gs_edges;
  gs_edges.reserve(gs_edge_pairs.size());
  for (const auto& [a, b] : gs_edge_pairs) {
    gs_edges.push_back({to_compact[a], to_compact[b], eg->EdgeCost(a, b)});
  }
  std::vector<Edge> gs_mst = KruskalMst(to_original.size(), gs_edges);

  // Prune non-terminal leaves until fixpoint (classic KMB step 5),
  // incrementally: peel leaves off a work list instead of rescanning.
  const size_t gn = to_original.size();
  std::vector<uint8_t> is_terminal(gn, 0);
  for (uint32_t t : terms) is_terminal[to_compact[t]] = 1;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> tree_adj(gn);
  std::vector<uint32_t> degree(gn, 0);
  for (uint32_t i = 0; i < gs_mst.size(); ++i) {
    const Edge& e = gs_mst[i];
    tree_adj[e.u].emplace_back(e.v, i);
    tree_adj[e.v].emplace_back(e.u, i);
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<uint8_t> removed_edge(gs_mst.size(), 0);
  std::vector<uint32_t> leaves;
  for (uint32_t v = 0; v < gn; ++v) {
    if (degree[v] == 1 && !is_terminal[v]) leaves.push_back(v);
  }
  while (!leaves.empty()) {
    uint32_t v = leaves.back();
    leaves.pop_back();
    if (degree[v] != 1) continue;  // stale: last edge already removed
    for (const auto& [w, edge_idx] : tree_adj[v]) {
      if (removed_edge[edge_idx]) continue;
      removed_edge[edge_idx] = 1;
      --degree[v];
      --degree[w];
      if (degree[w] == 1 && !is_terminal[w]) leaves.push_back(w);
      break;
    }
  }

  // ---- Assemble the result ------------------------------------------
  std::vector<uint8_t> in_final(n, 0);
  for (uint32_t t : terms) in_final[t] = 1;
  for (uint32_t i = 0; i < gs_mst.size(); ++i) {
    if (removed_edge[i]) continue;
    uint32_t a = to_original[gs_mst[i].u];
    uint32_t b = to_original[gs_mst[i].v];
    in_final[a] = 1;
    in_final[b] = 1;
    result.edges.emplace_back(std::min(a, b), std::max(a, b));
    result.total_cost += gs_mst[i].cost;
  }
  result.nodes.reserve(gn);
  for (uint32_t v : to_original) {
    if (in_final[v]) result.nodes.push_back(v);
  }
  std::sort(result.edges.begin(), result.edges.end());
  if (options.use_node_weights) {
    for (uint32_t v : result.nodes) result.total_cost += g.NodeWeight(v);
  }

  // Terminals outside the first terminal's closure component.
  DisjointSets components(k);
  for (const Edge& e : closure_mst_plain) components.Union(e.u, e.v);
  uint32_t root = components.Find(0);
  for (uint32_t i = 1; i < k; ++i) {
    if (components.Find(i) != root) {
      result.unreachable_terminals.push_back(terms[i]);
    }
  }
  return result;
}

Result<SteinerResult> SolveNewstFast(const WeightedGraph& g,
                                     const std::vector<uint32_t>& terminals,
                                     const NewstOptions& options) {
  NewstOptions fast = options;
  fast.closure_mode = ClosureMode::kMehlhorn;
  return SolveNewst(g, terminals, fast);
}

}  // namespace rpg::steiner
