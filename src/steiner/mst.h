#ifndef RPG_STEINER_MST_H_
#define RPG_STEINER_MST_H_

#include <cstdint>
#include <vector>

#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// An explicit weighted edge (for Kruskal over edge lists that do not
/// live in a WeightedGraph, e.g. the metric closure).
struct Edge {
  uint32_t u = 0;
  uint32_t v = 0;
  double cost = 0.0;
};

/// Union-find with path compression + union by rank.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n);
  uint32_t Find(uint32_t x);
  /// Returns false when x and y were already in the same set.
  bool Union(uint32_t x, uint32_t y);

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

/// Kruskal MST over an explicit edge list on nodes [0, n). Returns the
/// chosen edges; for a disconnected input this is a minimum spanning
/// forest. Ties are broken deterministically by (cost, u, v).
std::vector<Edge> KruskalMst(size_t n, std::vector<Edge> edges);

/// Prim MST of the connected component of `start` in g. Returns tree
/// edges (u, v) with their costs.
std::vector<Edge> PrimMst(const WeightedGraph& g, uint32_t start);

}  // namespace rpg::steiner

#endif  // RPG_STEINER_MST_H_
