#include "steiner/mst.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/dary_heap.h"

namespace rpg::steiner {

DisjointSets::DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

uint32_t DisjointSets::Find(uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool DisjointSets::Union(uint32_t x, uint32_t y) {
  uint32_t rx = Find(x), ry = Find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  return true;
}

std::vector<Edge> KruskalMst(size_t n, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  DisjointSets sets(n);
  std::vector<Edge> tree;
  for (const Edge& e : edges) {
    if (sets.Union(e.u, e.v)) tree.push_back(e);
  }
  return tree;
}

std::vector<Edge> PrimMst(const WeightedGraph& g, uint32_t start) {
  const size_t n = g.num_nodes();
  std::vector<Edge> tree;
  if (start >= n) return tree;
  std::vector<bool> in_tree(n, false);
  // (cost, to, from); lexicographic min-order is total, so the d-ary
  // heap pops the same edge sequence the binary heap did.
  using Entry = std::tuple<double, uint32_t, uint32_t>;
  DaryHeap<Entry> pq;
  in_tree[start] = true;
  for (const auto& [v, c] : g.Neighbors(start)) pq.emplace(c, v, start);
  while (!pq.empty()) {
    auto [cost, to, from] = pq.top();
    pq.pop();
    if (in_tree[to]) continue;
    in_tree[to] = true;
    tree.push_back({from, to, cost});
    for (const auto& [v, c] : g.Neighbors(to)) {
      if (!in_tree[v]) pq.emplace(c, v, to);
    }
  }
  return tree;
}

}  // namespace rpg::steiner
