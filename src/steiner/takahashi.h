#ifndef RPG_STEINER_TAKAHASHI_H_
#define RPG_STEINER_TAKAHASHI_H_

#include <vector>

#include "common/result.h"
#include "steiner/newst.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// Takahashi-Matsuyama (1980) shortest-path heuristic, generalized to
/// node weights: grow the tree from one terminal, repeatedly attaching
/// the terminal closest to the current tree via its cheapest path. Same
/// 2(1 - 1/l) guarantee as KMB but a different construction — implemented
/// as the alternative the heuristic-ablation bench compares against
/// (DESIGN.md §6). The tree grows incrementally: one persistent
/// distance-from-tree Dijkstra is re-seeded from the nodes that join the
/// tree each round, rather than recomputed per terminal. Interface
/// matches SolveNewst; terminals disconnected from the first terminal are
/// reported in unreachable_terminals and left out of the tree.
Result<SteinerResult> SolveTakahashiMatsuyama(
    const WeightedGraph& g, const std::vector<uint32_t>& terminals,
    const NewstOptions& options = {});

}  // namespace rpg::steiner

#endif  // RPG_STEINER_TAKAHASHI_H_
