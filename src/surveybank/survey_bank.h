#ifndef RPG_SURVEYBANK_SURVEY_BANK_H_
#define RPG_SURVEYBANK_SURVEY_BANK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/citation_graph.h"

namespace rpg::surveybank {

inline constexpr uint32_t kUncertainDomain = UINT32_MAX;

/// One benchmark entry: a survey with its query key phrases and the
/// three-level ground truth inferred from its reference list (§II-B).
struct SurveyEntry {
  graph::PaperId paper = graph::kInvalidPaper;
  std::string title;
  uint16_t year = 0;
  /// Key phrases extracted from the title by TopicRank.
  std::vector<std::string> key_phrases;
  /// The phrases joined with ", " — the RPG query string.
  std::string query;
  /// L1/L2/L3: references cited at least 1/2/3 times in the survey.
  std::vector<graph::PaperId> label_l1;
  std::vector<graph::PaperId> label_l2;
  std::vector<graph::PaperId> label_l3;
  /// Importance score s = citation / (2020 - year + 1) used to pick the
  /// high-quality subset for the Fig. 2 study.
  double score = 0.0;
  /// CCF domain derived from the publication venue; kUncertainDomain when
  /// the venue is missing/unknown ("Uncertain Topics" in Table I).
  uint32_t domain_index = kUncertainDomain;
  /// Generator-side latent topic (evaluation-only; see PreferenceJudge).
  uint32_t topic = UINT32_MAX;
};

/// Construction-funnel counters mirroring Fig. 3 (collection ->
/// deduplication -> filtering).
struct BuildStats {
  size_t initial_collection = 0;
  size_t after_deduplication = 0;
  size_t dropped_unparseable = 0;
  size_t dropped_page_range = 0;
  size_t final_dataset = 0;
};

/// The RPG evaluation benchmark.
class SurveyBank {
 public:
  SurveyBank(std::vector<SurveyEntry> entries, BuildStats stats)
      : entries_(std::move(entries)), stats_(stats) {}

  const std::vector<SurveyEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  const SurveyEntry& Get(size_t i) const { return entries_[i]; }
  const BuildStats& build_stats() const { return stats_; }

  /// Indices of the top-n entries by score (the Fig. 2 subset).
  std::vector<size_t> HighScoreSubset(size_t n) const;

  /// Indices of entries in one domain (kUncertainDomain selects the
  /// uncertain bucket).
  std::vector<size_t> ByDomain(uint32_t domain_index) const;

 private:
  std::vector<SurveyEntry> entries_;
  BuildStats stats_;
};

}  // namespace rpg::surveybank

#endif  // RPG_SURVEYBANK_SURVEY_BANK_H_
