#ifndef RPG_SURVEYBANK_STATS_H_
#define RPG_SURVEYBANK_STATS_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "surveybank/survey_bank.h"
#include "synth/corpus.h"

namespace rpg::surveybank {

/// Statistical properties of SurveyBank (§III-C): the three Fig. 4
/// distributions plus the Table I topic distribution.
struct SurveyBankStats {
  Histogram citation_counts;   ///< Fig. 4a (per-survey citations received)
  Histogram publication_years; ///< Fig. 4b
  Histogram reference_counts;  ///< Fig. 4c (reference-list lengths)
  /// Table I: per-domain survey counts; index 10 = Uncertain Topics.
  std::vector<size_t> domain_counts;
  double avg_references = 0.0;
  double fraction_never_cited = 0.0;
  double fraction_cited_over_500 = 0.0;
  /// Fraction published within the trailing 20 years of the corpus.
  double fraction_recent_20y = 0.0;
};

/// Computes all SurveyBank statistics. Bucket edges follow Fig. 4's
/// (irregular) axes.
SurveyBankStats ComputeStats(const SurveyBank& bank,
                             const synth::Corpus& corpus);

/// Renders Table I ("Topic distribution of the survey papers") as text.
std::string FormatTableOne(const SurveyBankStats& stats);

}  // namespace rpg::surveybank

#endif  // RPG_SURVEYBANK_STATS_H_
