#include "surveybank/stats.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "synth/topic_hierarchy.h"

namespace rpg::surveybank {

SurveyBankStats ComputeStats(const SurveyBank& bank,
                             const synth::Corpus& corpus) {
  SurveyBankStats stats{
      // Fig. 4a buckets.
      Histogram({0, 5, 10, 100, 500, 1000, 2000, 100000}),
      // Fig. 4b buckets.
      Histogram({1913, 1980, 1985, 1990, 1995, 2000, 2005, 2010, 2015, 2021}),
      // Fig. 4c buckets.
      Histogram({0, 50, 100, 150, 200, 250, 300, 350, 2705}),
      {},
      0.0,
      0.0,
      0.0,
      0.0};
  const size_t num_domains = synth::TopicHierarchy::DomainNames().size();
  stats.domain_counts.assign(num_domains + 1, 0);

  int max_year = 0;
  for (const auto& e : bank.entries()) max_year = std::max<int>(max_year, e.year);

  size_t never_cited = 0, over_500 = 0, recent = 0;
  double total_refs = 0.0;
  for (const auto& e : bank.entries()) {
    size_t citations = corpus.citations.CitationCount(e.paper);
    stats.citation_counts.Add(static_cast<double>(citations));
    stats.publication_years.Add(static_cast<double>(e.year));
    stats.reference_counts.Add(static_cast<double>(e.label_l1.size()));
    total_refs += static_cast<double>(e.label_l1.size());
    if (citations == 0) ++never_cited;
    if (citations > 500) ++over_500;
    if (e.year >= max_year - 20) ++recent;
    size_t bucket = e.domain_index == kUncertainDomain
                        ? num_domains
                        : static_cast<size_t>(e.domain_index);
    ++stats.domain_counts[bucket];
  }
  const double n = static_cast<double>(bank.size());
  if (n > 0) {
    stats.avg_references = total_refs / n;
    stats.fraction_never_cited = static_cast<double>(never_cited) / n;
    stats.fraction_cited_over_500 = static_cast<double>(over_500) / n;
    stats.fraction_recent_20y = static_cast<double>(recent) / n;
  }
  return stats;
}

std::string FormatTableOne(const SurveyBankStats& stats) {
  const auto& names = synth::TopicHierarchy::DomainNames();
  size_t total = 0;
  for (size_t c : stats.domain_counts) total += c;
  TablePrinter table({"Domain", "#Papers", "%"});
  // Print domains in descending count order, like Table I.
  std::vector<size_t> order(names.size());
  for (size_t i = 0; i < names.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return stats.domain_counts[a] > stats.domain_counts[b];
  });
  auto pct = [&](size_t count) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(count) /
                                  static_cast<double>(total);
  };
  for (size_t d : order) {
    table.AddRow({names[d], FormatWithCommas(
                                static_cast<int64_t>(stats.domain_counts[d])),
                  FormatDouble(pct(stats.domain_counts[d]), 1)});
  }
  table.AddRow({"Uncertain Topics",
                FormatWithCommas(
                    static_cast<int64_t>(stats.domain_counts[names.size()])),
                FormatDouble(pct(stats.domain_counts[names.size()]), 1)});
  table.AddRow({"Total", FormatWithCommas(static_cast<int64_t>(total)), ""});
  return table.ToString();
}

}  // namespace rpg::surveybank
