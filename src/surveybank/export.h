#ifndef RPG_SURVEYBANK_EXPORT_H_
#define RPG_SURVEYBANK_EXPORT_H_

#include <string>

#include "common/result.h"
#include "surveybank/survey_bank.h"
#include "synth/corpus.h"

namespace rpg::surveybank {

/// Publishable dataset artifacts, mirroring the release format the paper
/// describes (SurveyBank entries + the backing paper metadata + the
/// citation graph; the graph itself serializes via graph::GraphIo).

/// Writes one JSON object per line per benchmark entry:
///   {"paper": id, "title": ..., "year": ..., "key_phrases": [...],
///    "query": ..., "score": ..., "domain": ..., "labels": {"l1": [...],
///    "l2": [...], "l3": [...]}}
Status ExportSurveyBankJsonl(const SurveyBank& bank, const std::string& path);

/// Writes one JSON object per line per corpus paper:
///   {"id": ..., "title": ..., "abstract": ..., "year": ..., "venue":
///    ..., "is_survey": ...}
Status ExportPapersJsonl(const synth::Corpus& corpus, const std::string& path);

/// Counts the lines of a JSONL file (convenience for validation).
Result<size_t> CountJsonlRecords(const std::string& path);

}  // namespace rpg::surveybank

#endif  // RPG_SURVEYBANK_EXPORT_H_
