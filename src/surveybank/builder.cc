#include "surveybank/builder.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "text/topicrank.h"

namespace rpg::surveybank {

Result<SurveyBank> BuildSurveyBank(const synth::Corpus& corpus,
                                   const BuilderOptions& options) {
  if (options.min_pages > options.max_pages) {
    return Status::InvalidArgument("min_pages > max_pages");
  }
  Rng rng(options.seed);
  BuildStats stats;
  stats.initial_collection = corpus.surveys.size();

  std::vector<SurveyEntry> entries;
  for (const synth::SurveyRecord& record : corpus.surveys) {
    // Deduplication: a duplicate crawl contributes to the initial
    // collection count but is folded away here.
    if (rng.Bernoulli(options.duplicate_rate)) {
      ++stats.initial_collection;  // the duplicate record itself
    }
    ++stats.after_deduplication;

    // Filtering: parse failures and page-range outliers.
    if (rng.Bernoulli(options.parse_failure_rate)) {
      ++stats.dropped_unparseable;
      continue;
    }
    double pages = std::max(1.0, rng.Normal(options.pages_mean,
                                            options.pages_stddev));
    if (pages < options.min_pages || pages > options.max_pages) {
      ++stats.dropped_page_range;
      continue;
    }

    const synth::Paper& paper = corpus.papers[record.paper];
    SurveyEntry entry;
    entry.paper = record.paper;
    entry.title = paper.title;
    entry.year = paper.year;
    entry.topic = record.topic;

    // Key phrases from the title (TopicRank, as the paper does via pke).
    text::TopicRankOptions tr;
    tr.top_n = options.keyphrases_per_title;
    for (const auto& kp : text::ExtractKeyphrases(paper.title, tr)) {
      entry.key_phrases.push_back(kp.phrase);
    }
    if (entry.key_phrases.empty()) continue;  // no usable query
    for (size_t i = 0; i < entry.key_phrases.size(); ++i) {
      if (i > 0) entry.query += ", ";
      entry.query += entry.key_phrases[i];
    }

    // L1/L2/L3 ground truth from occurrence counts.
    for (size_t i = 0; i < record.references.size(); ++i) {
      graph::PaperId r = record.references[i];
      uint32_t occ = record.occurrence[i];
      entry.label_l1.push_back(r);
      if (occ >= 2) entry.label_l2.push_back(r);
      if (occ >= 3) entry.label_l3.push_back(r);
    }
    std::sort(entry.label_l1.begin(), entry.label_l1.end());
    std::sort(entry.label_l2.begin(), entry.label_l2.end());
    std::sort(entry.label_l3.begin(), entry.label_l3.end());

    // Score for the high-quality subset.
    double citations =
        static_cast<double>(corpus.citations.CitationCount(record.paper));
    int age = options.score_reference_year - paper.year + 1;
    entry.score = citations / std::max(1, age);

    // Venue-based domain; missing venue -> Uncertain Topics.
    if (paper.venue != synth::kNoVenue) {
      entry.domain_index = corpus.venues.Get(paper.venue).domain_index;
    }
    entries.push_back(std::move(entry));
  }
  stats.final_dataset = entries.size();
  return SurveyBank(std::move(entries), stats);
}

}  // namespace rpg::surveybank
