#include "surveybank/survey_bank.h"

#include <algorithm>
#include <numeric>

namespace rpg::surveybank {

std::vector<size_t> SurveyBank::HighScoreSubset(size_t n) const {
  std::vector<size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (entries_[a].score != entries_[b].score)
      return entries_[a].score > entries_[b].score;
    return a < b;
  });
  if (order.size() > n) order.resize(n);
  return order;
}

std::vector<size_t> SurveyBank::ByDomain(uint32_t domain_index) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].domain_index == domain_index) out.push_back(i);
  }
  return out;
}

}  // namespace rpg::surveybank
