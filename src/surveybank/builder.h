#ifndef RPG_SURVEYBANK_BUILDER_H_
#define RPG_SURVEYBANK_BUILDER_H_

#include <memory>

#include "common/result.h"
#include "surveybank/survey_bank.h"
#include "synth/corpus.h"

namespace rpg::surveybank {

/// Knobs for the dataset-construction funnel. The paper's pipeline
/// (Fig. 3) drops raw candidates that (i) duplicate an already-collected
/// title, (ii) cannot be parsed by PyPDF2/GROBID, or (iii) fall outside
/// the 2..100 page range. PDFs are not modeled, so stages (ii)/(iii) are
/// driven by sampled per-document defects with the rates below.
struct BuilderOptions {
  /// Probability a raw record is a duplicate crawl of another survey.
  double duplicate_rate = 0.05;
  /// Probability the PDF fails to parse.
  double parse_failure_rate = 0.10;
  /// Page count ~ Normal(mean, stddev), clamped at >= 1; surveys outside
  /// [min_pages, max_pages] are dropped (theses/abstracts).
  double pages_mean = 30.0;
  double pages_stddev = 24.0;
  int min_pages = 2;
  int max_pages = 100;
  /// Reference year of the score formula s = citation / (2020 - year + 1).
  int score_reference_year = 2020;
  /// Number of key phrases extracted from each title.
  int keyphrases_per_title = 2;
  uint64_t seed = 7;
};

/// Builds SurveyBank from a generated corpus: simulates the collection
/// funnel, extracts key phrases from titles with TopicRank, derives the
/// L1/L2/L3 labels from reference occurrence counts, computes scores and
/// venue-based domains.
Result<SurveyBank> BuildSurveyBank(const synth::Corpus& corpus,
                                   const BuilderOptions& options = {});

}  // namespace rpg::surveybank

#endif  // RPG_SURVEYBANK_BUILDER_H_
