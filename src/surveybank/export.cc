#include "surveybank/export.h"

#include <fstream>

#include "common/json_writer.h"
#include "synth/topic_hierarchy.h"

namespace rpg::surveybank {

namespace {

void WriteLabelArray(JsonWriter* w, const char* key,
                     const std::vector<graph::PaperId>& labels) {
  w->Key(key).BeginArray();
  for (graph::PaperId p : labels) w->UInt(p);
  w->EndArray();
}

}  // namespace

Status ExportSurveyBankJsonl(const SurveyBank& bank, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open for write: " + path);
  const auto& domains = synth::TopicHierarchy::DomainNames();
  for (const SurveyEntry& e : bank.entries()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("paper").UInt(e.paper);
    w.Key("title").String(e.title);
    w.Key("year").Int(e.year);
    w.Key("key_phrases").BeginArray();
    for (const auto& kp : e.key_phrases) w.String(kp);
    w.EndArray();
    w.Key("query").String(e.query);
    w.Key("score").Double(e.score);
    if (e.domain_index == kUncertainDomain) {
      w.Key("domain").Null();
    } else {
      w.Key("domain").String(domains[e.domain_index]);
    }
    w.Key("labels").BeginObject();
    WriteLabelArray(&w, "l1", e.label_l1);
    WriteLabelArray(&w, "l2", e.label_l2);
    WriteLabelArray(&w, "l3", e.label_l3);
    w.EndObject();
    w.EndObject();
    os << w.str() << '\n';
  }
  if (!os) return Status::IoError("short write: " + path);
  return Status::OK();
}

Status ExportPapersJsonl(const synth::Corpus& corpus,
                         const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open for write: " + path);
  for (size_t i = 0; i < corpus.num_papers(); ++i) {
    const synth::Paper& p = corpus.papers[i];
    JsonWriter w;
    w.BeginObject();
    w.Key("id").UInt(i);
    w.Key("title").String(p.title);
    w.Key("abstract").String(p.abstract_text);
    w.Key("year").Int(p.year);
    if (p.venue == synth::kNoVenue) {
      w.Key("venue").Null();
    } else {
      w.Key("venue").String(corpus.venues.Get(p.venue).name);
    }
    w.Key("is_survey").Bool(p.is_survey);
    w.EndObject();
    os << w.str() << '\n';
  }
  if (!os) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<size_t> CountJsonlRecords(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IoError("cannot open for read: " + path);
  size_t count = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) ++count;
  }
  return count;
}

}  // namespace rpg::surveybank
