#ifndef RPG_UI_HTTP_CLIENT_H_
#define RPG_UI_HTTP_CLIENT_H_

/// \file
/// Minimal blocking HTTP/1.1 client for loopback use: the serve load
/// bench (bench/bench_serve_load.cpp) and the ui/serve test suites talk
/// to HttpServer through it. Supports persistent (keep-alive)
/// connections — one TCP connect can carry many requests — which is the
/// whole point of the load generator; not a general-purpose client (no
/// TLS, no chunked encoding, no redirects).

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace rpg::ui {

/// A fetched response. `headers` has lower-cased field names.
struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Outcome of framing one HTTP response out of a raw byte buffer.
struct ResponseParseResult {
  enum class Verdict {
    kNeedMore,   ///< incomplete: read more bytes and re-parse
    kResponse,   ///< one complete response parsed; `consumed` bytes used
    kError,      ///< malformed: drop the connection
  };
  Verdict verdict = Verdict::kNeedMore;
  ClientResponse response;  ///< valid when kResponse
  size_t consumed = 0;      ///< bytes of `buffer` used (kResponse)
  std::string error;        ///< human-readable cause (kError)
};

/// Frames at most one complete HTTP/1.1 response out of `buffer` — the
/// exact parse HttpClient runs per fetch (strict three-digit status,
/// strict Content-Length, Content-Length framing), extracted behind a
/// socket-free seam so the fuzz harness and unit tests can drive it with
/// arbitrary bytes.
ResponseParseResult ParseHttpResponse(const std::string& buffer);

/// One client connection. Not thread-safe: use one per client thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to 127.0.0.1:`port`. Reconnects after Close() or a server
  /// `Connection: close`.
  Status Connect(int port);

  /// Sends one request over the open connection and reads the full
  /// response (Content-Length framed). `target` is the raw request
  /// target ("/api/path?q=x"); `close_connection` asks the server to
  /// close after responding (sends `Connection: close`). Reconnects
  /// transparently if the server closed the connection since the last
  /// call.
  Result<ClientResponse> Fetch(const std::string& method,
                               const std::string& target,
                               bool close_connection = false);

  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  Result<ClientResponse> FetchOnce(const std::string& request);

  int fd_ = -1;
  int port_ = 0;
  std::string buffer_;  ///< bytes read past the previous response
};

}  // namespace rpg::ui

#endif  // RPG_UI_HTTP_CLIENT_H_
