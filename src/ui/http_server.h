#ifndef RPG_UI_HTTP_SERVER_H_
#define RPG_UI_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"

namespace rpg::ui {

/// A parsed HTTP request (the subset the RePaGer serving layer needs).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< path without the query string
  std::map<std::string, std::string> query;  ///< decoded query parameters
  std::string version = "HTTP/1.1";          ///< "HTTP/1.0" or "HTTP/1.1"
  /// Header fields with lower-cased names ("connection", "content-length").
  std::map<std::string, std::string> headers;
  std::string body;  ///< present when Content-Length said so
};

/// A response to send.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Parses the request line of an HTTP/1.1 request ("GET /search?q=x
/// HTTP/1.1"). Returns InvalidArgument on malformed input. Exposed for
/// unit tests.
Result<HttpRequest> ParseRequestLine(const std::string& line);

/// Parses "Name: value" header lines (one per \r\n) into `headers` with
/// lower-cased names and trimmed values. Malformed lines are skipped.
/// Exposed for unit tests.
void ParseHeaderLines(const std::string& header_block,
                      std::map<std::string, std::string>* headers);

/// Percent-decodes a URL component ("hate%20speech+detection" ->
/// "hate speech detection"; '+' means space in query strings).
std::string UrlDecode(const std::string& s);

/// Blocking HTTP/1.1 server for the RePaGer serving layer (§V +
/// docs/serving.md). One handler serves every route; the accept loop
/// runs on a background thread started by Start() and hands each
/// connection to its own connection thread, so keep-alive clients do
/// not starve each other.
///
/// Connection handling: HTTP/1.1 connections are persistent by default
/// (the load bench reuses one connection per client thread);
/// `Connection: close` — or any HTTP/1.0 request without
/// `Connection: keep-alive` — reverts to one-shot. Request bodies are
/// read when Content-Length is present (POST endpoints).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving on a
  /// background thread. Returns the bound port.
  Result<int> Start(int port);

  /// Stops the accept loop, shuts every open connection, joins all
  /// threads. Idempotent.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void ServeLoop();
  void HandleConnection(Connection* conn);
  /// Joins and erases finished connection threads (called by the accept
  /// loop so a long-lived server does not accumulate dead threads).
  void ReapFinished();

  Handler handler_;
  std::atomic<bool> running_{false};
  // Atomic: Stop() invalidates it concurrently with the accept loop's
  // read (flagged by TSan when it was a plain int).
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread thread_;

  std::mutex conns_mu_;
  std::list<Connection> conns_;  // list: stable addresses for the threads
};

}  // namespace rpg::ui

#endif  // RPG_UI_HTTP_SERVER_H_
