#ifndef RPG_UI_HTTP_SERVER_H_
#define RPG_UI_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/result.h"

namespace rpg::ui {

/// A parsed HTTP request (the subset the RePaGer UI needs).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< path without the query string
  std::map<std::string, std::string> query;  ///< decoded query parameters
};

/// A response to send.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Parses the request line of an HTTP/1.1 request ("GET /search?q=x
/// HTTP/1.1"). Returns InvalidArgument on malformed input. Exposed for
/// unit tests.
Result<HttpRequest> ParseRequestLine(const std::string& line);

/// Percent-decodes a URL component ("hate%20speech+detection" ->
/// "hate speech detection"; '+' means space in query strings).
std::string UrlDecode(const std::string& s);

/// Minimal blocking HTTP/1.1 server for the RePaGer web UI (§V). One
/// handler serves every route; it runs on a background thread started by
/// Start() and stops on Stop() or destruction. Connection handling is
/// deliberately simple (one request per connection, no keep-alive): the
/// UI is a demo surface, not a production gateway.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving on a
  /// background thread. Returns the bound port.
  Result<int> Start(int port);

  /// Stops the accept loop and joins the server thread. Idempotent.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void ServeLoop();

  Handler handler_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

}  // namespace rpg::ui

#endif  // RPG_UI_HTTP_SERVER_H_
