#ifndef RPG_UI_HTTP_SERVER_H_
#define RPG_UI_HTTP_SERVER_H_

/// \file
/// Event-driven HTTP/1.1 front end for the RePaGer serving layer
/// (docs/serving.md, "Threading model"). The server is an epoll-based
/// reactor: a small fixed pool of poller threads multiplexes every
/// connection with non-blocking accept/read/write and a per-connection
/// state machine, so the number of concurrent keep-alive connections is
/// bounded by file descriptors, not by threads. Handlers are
/// asynchronous — a poller thread hands the parsed request to the
/// handler together with a completion callback and immediately returns
/// to its event loop; compute (RePaGer::Generate via
/// serve::ServeEngine) finishes on whatever thread it runs on and posts
/// the response back to the connection's poller. Poller threads never
/// block on a solve.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"

namespace rpg::ui {

/// A parsed HTTP request (the subset the RePaGer serving layer needs).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< path without the query string
  std::map<std::string, std::string> query;  ///< decoded query parameters
  std::string version = "HTTP/1.1";          ///< "HTTP/1.0" or "HTTP/1.1"
  /// Header fields with lower-cased names ("connection", "content-length").
  std::map<std::string, std::string> headers;
  std::string body;  ///< present when Content-Length said so
  /// Request trace, created by the reactor at dispatch when tracing is
  /// enabled (null otherwise — framing-level parses never carry one).
  /// Downstream layers record spans into it along the request's causal
  /// chain; the reactor emits the slow-query log from it at completion.
  std::shared_ptr<obs::TraceContext> trace;
};

/// A response to send.
struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int status_in, std::string content_type_in,
               std::string body_in,
               std::map<std::string, std::string> headers_in = {})
      : status(status_in),
        content_type(std::move(content_type_in)),
        body(std::move(body_in)),
        headers(std::move(headers_in)) {}

  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers ("Retry-After" on 429s). Must not repeat the
  /// framing headers the server writes itself (Content-Type,
  /// Content-Length, Connection).
  std::map<std::string, std::string> headers;
};

/// Parses the request line of an HTTP/1.1 request ("GET /search?q=x
/// HTTP/1.1"). Returns InvalidArgument on malformed input. Exposed for
/// unit tests.
Result<HttpRequest> ParseRequestLine(const std::string& line);

/// Parses "Name: value" header lines (one per \r\n) into `headers` with
/// lower-cased names and trimmed values. Malformed lines are skipped.
/// Exposed for unit tests.
void ParseHeaderLines(const std::string& header_block,
                      std::map<std::string, std::string>* headers);

/// Percent-decodes a URL component ("hate%20speech+detection" ->
/// "hate speech detection"; '+' means space in query strings).
std::string UrlDecode(const std::string& s);

/// Strict Content-Length parse: ASCII digits only — no sign, whitespace,
/// or trailing garbage — and the value must fit uint64 without
/// overflowing. Returns false on anything else ("abc", "-1", "1 2",
/// "18446744073709551616"), which the server answers with 400 instead of
/// silently reading 0 and misframing the connection. Exposed for unit
/// tests.
bool ParseContentLength(const std::string& value, size_t* out);

/// Size ceilings the request-framing layer enforces (a plain-data mirror
/// of the HttpServerOptions fields the parser needs, so framing can run
/// without a server).
struct FramingLimits {
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 1024 * 1024;
  /// One maximal buffered request: header block + "\r\n\r\n" + body.
  size_t MaxBufferedBytes() const {
    return max_header_bytes + 4 + max_body_bytes;
  }
};

/// Outcome of framing one request out of a raw byte buffer.
struct FrameResult {
  enum class Verdict {
    kNeedMore,  ///< incomplete: read more bytes
    kRequest,   ///< one complete request parsed; `consumed` bytes used
    kError,     ///< protocol error: answer `error_status`, then close
    kClose,     ///< peer EOF with nothing answerable: just close
  };
  Verdict verdict = Verdict::kNeedMore;
  HttpRequest request;     ///< valid when kRequest
  size_t consumed = 0;     ///< bytes of `in` the request used (kRequest)
  bool keep_alive = true;  ///< header-derived persistence (kRequest)
  int error_status = 0;    ///< 400/413/431 when kError
  std::string error_message;
};

/// Frames at most one complete HTTP/1.1 request out of `in` — the exact
/// logic the reactor runs per connection (header/body ceilings, strict
/// Content-Length, keep-alive negotiation), extracted behind a
/// socket-free seam so the fuzz harnesses and unit tests can drive the
/// request state machine with arbitrary byte streams. `peer_eof` is
/// whether the client half-closed after these bytes.
FrameResult FrameOneRequest(const std::string& in, bool peer_eof,
                            const FramingLimits& limits);

struct HttpServerOptions {
  /// Poller (reactor) threads. Each owns one epoll instance; the listen
  /// socket is registered with EPOLLEXCLUSIVE in every poller, so the
  /// kernel spreads incoming connections without a dedicated acceptor.
  /// <= 0 means 2.
  int num_pollers = 2;
  /// Hard ceilings against hostile or broken clients: a request whose
  /// header block exceeds `max_header_bytes` is answered 431, a declared
  /// Content-Length over `max_body_bytes` is answered 413; both close
  /// the connection after politely draining it.
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 1024 * 1024;
  /// listen(2) backlog.
  int listen_backlog = 128;
  /// Connection-lifecycle deadlines (docs/serving.md "Operational
  /// limits"). `idle_timeout` bounds how long a connection may sit in
  /// kReading without completing a request: it is armed at accept and
  /// re-armed only when a response finishes, never by partial bytes, so
  /// a slow-loris dripping header fragments is reaped on schedule, not
  /// kept alive by its own drip. Expired idle connections get a clean
  /// close. <= 0 disables.
  std::chrono::milliseconds idle_timeout{60'000};
  /// Progress deadline for half-written responses (and protocol-error
  /// drains): a peer that accepts no bytes for this long is closed.
  /// Re-armed on every successful partial write, so a merely slow reader
  /// survives as long as it keeps draining. <= 0 disables.
  std::chrono::milliseconds write_timeout{20'000};
  /// Graceful-drain budget for Stop(): accepting stops immediately and
  /// idle connections close, but in-flight requests (handling or mid-
  /// write) get up to this long to finish before being cut. <= 0 makes
  /// Stop() immediate (the pre-lifecycle behavior).
  std::chrono::milliseconds drain_timeout{5'000};
  /// Deadline for a request in kHandling: if the handler (or the compute
  /// it dispatched) has not completed within this budget, the server
  /// answers `503` + `Connection: close` itself and the late completion
  /// is dropped by the (conn id, seq) guard. This is the reactor's
  /// backstop against a wedged solve pinning its connection forever; the
  /// serve layer's own queue deadline should fire first. <= 0 disables
  /// (the pre-PR-6 behavior: no deadline while the handler owns the
  /// request).
  std::chrono::milliseconds handler_timeout{30'000};
  /// Open-connection cap across all pollers. A connection accepted at
  /// the cap is shed with an inline `503 Connection: close` (plus
  /// Retry-After) instead of silently consuming an fd. The check is a
  /// relaxed read, so a burst across pollers can briefly overshoot by
  /// num_pollers - 1. 0 = unlimited.
  size_t max_connections = 1024;
  /// Open-connection cap per client IP, so one hostile source cannot
  /// starve the global `max_connections` budget once serving leaves
  /// loopback. Enforced at accept with the same inline 503 shed as the
  /// global cap. 0 = disabled (the default: everything is one IP on
  /// loopback).
  size_t max_connections_per_ip = 0;
  /// Requests whose handler completion takes at least this long get one
  /// structured slow-query log line (JSON: request id, canonical query
  /// key, total ms, per-span breakdown — see docs/observability.md).
  /// Only requests carrying a trace are logged. <= 0 disables.
  std::chrono::milliseconds slow_query_threshold{250};
};

/// Point-in-time reactor counters (relaxed atomics — freshness, not a
/// consistent snapshot). `open_connections` is the live gauge the
/// fd-leak tests and `/api/stats` assert on.
struct HttpServerStats {
  size_t open_connections = 0;
  /// Echo of HttpServerOptions::max_connections, so /api/stats can show
  /// open connections against their cap without a second plumbing path.
  size_t max_connections = 0;
  uint64_t connections_accepted = 0;
  uint64_t requests_handled = 0;
  uint64_t responses_sent = 0;
  /// 400/413/431 replies produced by the server itself (handler never ran).
  uint64_t protocol_errors = 0;
  /// Connections refused at accept with a 503 because the cap was hit.
  uint64_t connections_shed = 0;
  /// Connections reaped by the idle deadline (slow-loris included).
  uint64_t idle_closes = 0;
  /// Connections cut by the write/drain progress deadline.
  uint64_t timeout_closes = 0;
  /// Requests answered 503 by the handler deadline (kHandling exceeded
  /// `handler_timeout`; the connection closes behind the 503).
  uint64_t deadline_closes = 0;
  /// Connections refused at accept because their IP hit
  /// `max_connections_per_ip`.
  uint64_t per_ip_shed = 0;
};

/// Epoll-based HTTP/1.1 server for the RePaGer serving layer (§V +
/// docs/serving.md).
///
/// Connection handling: HTTP/1.1 connections are persistent by default
/// (the load bench reuses one connection per client); `Connection:
/// close` — or any HTTP/1.0 request without `Connection: keep-alive` —
/// reverts to one-shot. Request bodies are read when Content-Length is
/// present (POST endpoints). Requests on one connection are processed
/// strictly in order (pipelined bytes wait until the previous response
/// is flushed). Partial reads and partial writes are resumed by the
/// event loop, so slow clients cost a connection slot, not a thread.
class HttpServer {
 public:
  /// Completion callback handed to an AsyncHandler. Thread-safe, may be
  /// invoked from any thread, exactly once; invoking it after the
  /// connection died (or the server stopped) quietly drops the response.
  using Done = std::function<void(HttpResponse)>;
  /// Asynchronous handler: inspect the request, then call `done` with
  /// the response — either inline (cheap routes) or later from another
  /// thread (compute routes). Runs on a poller thread: do not block.
  using AsyncHandler = std::function<void(const HttpRequest&, Done)>;
  /// Synchronous handler, wrapped as an AsyncHandler that completes
  /// inline. Only for handlers that do not block (tests, static routes);
  /// blocking here stalls one poller thread.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(AsyncHandler handler, HttpServerOptions options = {});
  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the poller
  /// threads. Returns the bound port.
  Result<int> Start(int port);

  /// Graceful shutdown: stops accepting immediately, closes idle
  /// connections, then lets in-flight requests (handling or mid-write)
  /// finish for up to `drain_timeout` before cutting whatever remains,
  /// and joins all threads. Completion callbacks still held by in-flight
  /// compute remain safe to invoke afterwards (their responses are
  /// dropped once the drain is over). Idempotent.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }

  HttpServerStats Stats() const;

 private:
  class Poller;
  struct SharedState;

  AsyncHandler handler_;
  HttpServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  /// shared_ptr: outstanding Done callbacks keep their poller's queues
  /// and counters alive past Stop().
  std::vector<std::shared_ptr<Poller>> pollers_;
  std::shared_ptr<SharedState> shared_;
};

}  // namespace rpg::ui

#endif  // RPG_UI_HTTP_SERVER_H_
