#include "ui/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace rpg::ui {

namespace {

/// A misbehaving client in the drain state gets at most this much read
/// and discarded before the connection is dropped anyway.
constexpr size_t kMaxDrainBytes = 4u << 20;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Canned accept-shed response, written straight to a just-accepted fd
/// when the connection cap is hit: the socket buffer is empty, so the
/// single non-blocking send always fits.
constexpr char kShedResponse[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Content-Type: text/plain\r\n"
    "Content-Length: 24\r\n"
    "Connection: close\r\n"
    "Retry-After: 1\r\n"
    "\r\n"
    "server at connection cap";

using SteadyClock = std::chrono::steady_clock;

}  // namespace

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

Result<HttpRequest> ParseRequestLine(const std::string& line) {
  std::vector<std::string> parts = SplitWhitespace(line);
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
    return Status::InvalidArgument("malformed request line: " + line);
  }
  HttpRequest request;
  request.method = parts[0];
  request.version = parts[2];
  std::string target = parts[1];
  size_t question = target.find('?');
  if (question == std::string::npos) {
    request.path = target;
  } else {
    request.path = target.substr(0, question);
    for (const std::string& pair :
         Split(target.substr(question + 1), '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[UrlDecode(pair)] = "";
      } else {
        request.query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  if (request.path.empty() || request.path[0] != '/') {
    return Status::InvalidArgument("bad path: " + target);
  }
  return request;
}

void ParseHeaderLines(const std::string& header_block,
                      std::map<std::string, std::string>* headers) {
  size_t pos = 0;
  while (pos < header_block.size()) {
    size_t eol = header_block.find("\r\n", pos);
    if (eol == std::string::npos) eol = header_block.size();
    std::string_view line(header_block.data() + pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (name.empty()) continue;
    // Repeated fields fold into one comma-separated value (RFC 7230
    // §3.2.2). For Content-Length this is the smuggling defense: two
    // conflicting lengths become "5, 6", which the strict numeric parse
    // rejects with 400 instead of letting either framing win.
    auto [it, inserted] = headers->try_emplace(std::move(name), value);
    if (!inserted) {
      it->second += ", ";
      it->second += value;
    }
  }
}

bool ParseContentLength(const std::string& value, size_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (parsed > (UINT64_MAX - digit) / 10) return false;  // would overflow
    parsed = parsed * 10 + digit;
  }
  if (parsed > SIZE_MAX) return false;  // 32-bit size_t guard
  *out = static_cast<size_t>(parsed);
  return true;
}

FrameResult FrameOneRequest(const std::string& in, bool peer_eof,
                            const FramingLimits& limits) {
  FrameResult result;
  auto fail = [&result](int status, std::string message) -> FrameResult& {
    result.verdict = FrameResult::Verdict::kError;
    result.error_status = status;
    result.error_message = std::move(message);
    return result;
  };
  size_t header_end = in.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (in.size() > limits.max_header_bytes) {
      return fail(431, "header block too large");
    }
    if (peer_eof) {
      // Truncated request, nothing to answer.
      result.verdict = FrameResult::Verdict::kClose;
    }
    return result;
  }
  // The incomplete-header check above cannot see a block that arrived
  // whole in one read pass; re-enforce the ceiling on the complete
  // block or a single burst would bypass the 431.
  if (header_end > limits.max_header_bytes) {
    return fail(431, "header block too large");
  }
  size_t line_end = in.find("\r\n");
  auto request_or = ParseRequestLine(in.substr(0, line_end));
  if (!request_or.ok()) {
    return fail(400, request_or.status().ToString());
  }
  HttpRequest request = std::move(request_or).value();
  // A request with zero header lines has header_end == line_end; the
  // unclamped subtraction would underflow and swallow the rest of the
  // (pipelined) buffer as headers.
  size_t header_len =
      header_end >= line_end + 2 ? header_end - line_end - 2 : 0;
  ParseHeaderLines(in.substr(line_end + 2, header_len), &request.headers);
  size_t body_len = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    // Strict parse: "abc", "-1", overflow, and folded duplicates
    // ("5, 6") are all 400s. The old permissive strtoull read them as
    // 0 and re-parsed the body bytes as the next pipelined request.
    if (!ParseContentLength(it->second, &body_len)) {
      return fail(400, "malformed Content-Length");
    }
  }
  if (body_len > limits.max_body_bytes) {
    return fail(413, "body too large");
  }
  size_t total = header_end + 4 + body_len;
  // Unreachable with the 431/413 ceilings above, but a request that
  // could never fit the read buffer must be rejected, not waited on —
  // level-triggered EPOLLIN on the unread bytes would spin a poller.
  if (total > limits.MaxBufferedBytes()) {
    return fail(413, "request too large");
  }
  if (in.size() < total) {
    if (peer_eof) result.verdict = FrameResult::Verdict::kClose;
    return result;  // body can never complete / need more bytes
  }
  request.body = in.substr(header_end + 4, body_len);

  // Persistence: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close;
  // an explicit Connection header wins either way.
  bool keep_alive = request.version != "HTTP/1.0";
  if (auto it = request.headers.find("connection");
      it != request.headers.end()) {
    keep_alive = !ContainsIgnoreCase(it->second, "close") &&
                 (keep_alive ||
                  ContainsIgnoreCase(it->second, "keep-alive"));
  }
  result.verdict = FrameResult::Verdict::kRequest;
  result.request = std::move(request);
  result.consumed = total;
  result.keep_alive = keep_alive;
  return result;
}

// --------------------------------------------------------------- reactor

/// Cross-poller stats. Relaxed atomics: the gauges feed /api/stats and
/// test assertions, not control flow.
struct HttpServer::SharedState {
  std::atomic<size_t> open_connections{0};
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_handled{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> connections_shed{0};
  std::atomic<uint64_t> idle_closes{0};
  std::atomic<uint64_t> timeout_closes{0};
  std::atomic<uint64_t> deadline_closes{0};
  std::atomic<uint64_t> per_ip_shed{0};

  /// Per-IP open-connection counts (host byte order), shared across
  /// pollers because one IP's connections land on all of them. Touched
  /// only at accept and close, and only when max_connections_per_ip is
  /// on, so the lock is far off the request path.
  std::mutex per_ip_mu;
  std::unordered_map<uint32_t, size_t> per_ip_open;

  /// Reserves a slot for `ip`; false when the cap is already met.
  bool TryAcquireIp(uint32_t ip, size_t cap) {
    std::lock_guard<std::mutex> lock(per_ip_mu);
    size_t& count = per_ip_open[ip];
    if (count >= cap) return false;
    ++count;
    return true;
  }

  void ReleaseIp(uint32_t ip) {
    std::lock_guard<std::mutex> lock(per_ip_mu);
    auto it = per_ip_open.find(ip);
    if (it == per_ip_open.end()) return;
    if (--it->second == 0) per_ip_open.erase(it);
  }
};

/// One reactor thread: an epoll instance multiplexing the listen socket
/// (EPOLLEXCLUSIVE — the kernel load-balances accepts across pollers),
/// an eventfd for cross-thread response completions, and every
/// connection this poller accepted. Connections live and die on their
/// owning poller thread only; other threads reach a connection solely
/// through Complete(), which marshals the response over the eventfd.
///
/// shared_ptr + enable_shared_from_this: each Done callback captures
/// shared_from_this(), so the completion queue, its mutex, and the
/// eventfd stay alive until the last in-flight compute finishes — even
/// if that is after Stop() returned and the server was destroyed. Late
/// completions see stop_requested_ and drop their response.
class HttpServer::Poller : public std::enable_shared_from_this<Poller> {
 public:
  Poller(const AsyncHandler* handler, const HttpServerOptions* options,
         std::shared_ptr<SharedState> shared)
      : handler_(handler), options_(options), shared_(std::move(shared)) {}

  ~Poller() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (spare_fd_ >= 0) ::close(spare_fd_);
  }

  Status Init(int listen_fd) {
    // Reserved fd, sacrificed to accept-and-close when the process runs
    // out of descriptors (see AcceptAll).
    spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Status::IoError("epoll_create1 failed");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return Status::IoError("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      return Status::IoError("epoll_ctl(wake) failed");
    }
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd, &ev) < 0) {
      return Status::IoError("epoll_ctl(listen) failed");
    }
    listen_fd_ = listen_fd;
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([self = shared_from_this()] { self->Loop(); });
  }

  void RequestStop() {
    stop_requested_.store(true);
    Wake();
  }

  /// Begins a graceful drain: the poller stops accepting, closes idle
  /// connections, and keeps serving in-flight requests until `deadline`
  /// (or until none remain). In-flight completions are still delivered
  /// during the drain; only after the poller exits are they dropped.
  void RequestDrain(SteadyClock::time_point deadline) {
    drain_deadline_ns_.store(deadline.time_since_epoch().count(),
                             std::memory_order_relaxed);
    drain_requested_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Thread-safe response delivery for connection `id`, request `seq`.
  /// On the poller's own thread the completion is applied inline (the
  /// common synchronous-handler path pays no eventfd round trip);
  /// from any other thread it is queued and the poller is woken.
  void Complete(uint64_t id, uint64_t seq, HttpResponse response) {
    if (std::this_thread::get_id() == thread_id_.load()) {
      HandleCompletion(id, seq, std::move(response));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_.load()) return;  // server stopped: drop it
      completions_.push_back({id, seq, std::move(response)});
    }
    Wake();
  }

 private:
  static constexpr uint64_t kListenTag = 0;
  static constexpr uint64_t kWakeTag = 1;
  static constexpr uint64_t kFirstConnId = 2;

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string in;        ///< unparsed request bytes
    std::string out;       ///< response bytes not yet written
    size_t out_off = 0;
    enum class State { kReading, kHandling, kWriting, kDraining };
    State state = State::kReading;
    bool keep_alive = true;
    bool close_after_write = false;
    /// Half-close + discard before the real close: set on protocol
    /// errors (431/413/400) where the client may still be mid-request —
    /// an immediate close() would RST the queued response away.
    bool drain_after_write = false;
    bool peer_eof = false;
    /// Reentrancy guard: an inline handler completion lands back in
    /// PumpRequests via HandleCompletion; the guard keeps the pipeline
    /// advancing in the outer loop instead of recursing once per
    /// buffered request (attacker-controlled depth otherwise).
    bool pumping = false;
    /// Peer IPv4 (host order) holding a per-IP slot; released at close.
    /// Only meaningful when ip_tracked (cap enabled at accept time).
    uint32_t peer_ip = 0;
    bool ip_tracked = false;
    size_t drained = 0;
    uint64_t request_seq = 0;  ///< guards stale/duplicate completions
    uint32_t interest = EPOLLIN;
    /// Deadline generation: every ArmDeadline/DisarmDeadline bumps it,
    /// invalidating the heap entries pushed for older generations (lazy
    /// deletion — the heap is pruned as stale heads surface).
    uint64_t deadline_gen = 0;
  };

  struct Completion {
    uint64_t id;
    uint64_t seq;
    HttpResponse response;
  };

  /// One pending deadline in the lazy-deletion min-heap. Entries are
  /// never removed eagerly; an entry fires only if its (id, gen) pair
  /// still matches a live connection.
  struct DeadlineEntry {
    SteadyClock::time_point when;
    uint64_t id;
    uint64_t gen;
    bool operator>(const DeadlineEntry& other) const {
      return when > other.when;
    }
  };

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void Loop() {
    thread_id_.store(std::this_thread::get_id());
    epoll_event events[64];
    while (!stop_requested_.load()) {
      if (!draining_ && drain_requested_.load(std::memory_order_acquire)) {
        draining_ = true;
        EnterDrain();
      }
      if (draining_ &&
          (conns_.empty() || SteadyClock::now() >= DrainDeadline())) {
        break;  // drained clean, or the drain budget is spent
      }
      int n = ::epoll_wait(epoll_fd_, events, 64, NextTimeoutMs());
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        if (tag == kListenTag) {
          AcceptAll();
        } else if (tag == kWakeTag) {
          DrainWakeQueue();
        } else {
          OnConnEvent(tag, events[i].events);
        }
      }
      SweepDeadlines();
    }
    // The loop is over: drop late cross-thread completions from here on
    // (nothing will ever drain the queue again) and cut what remains.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_.store(true);
      completions_.clear();
    }
    for (auto& [id, conn] : conns_) {
      ::close(conn->fd);
      if (conn->ip_tracked) shared_->ReleaseIp(conn->peer_ip);
      shared_->open_connections.fetch_sub(1);
    }
    conns_.clear();
  }

  /// Drain entry (runs once, on the poller thread): deregister the
  /// listen fd so no further connections land here, and close every
  /// connection with no request in flight. What survives is exactly the
  /// in-flight work the drain budget exists for.
  void EnterDrain() {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    std::vector<uint64_t> idle;
    for (const auto& [id, conn] : conns_) {
      if (conn->state == Conn::State::kReading ||
          conn->state == Conn::State::kDraining) {
        idle.push_back(id);
      }
    }
    for (uint64_t id : idle) {
      auto it = conns_.find(id);
      if (it != conns_.end()) CloseConn(it->second.get());
    }
  }

  SteadyClock::time_point DrainDeadline() const {
    return SteadyClock::time_point(SteadyClock::duration(
        drain_deadline_ns_.load(std::memory_order_relaxed)));
  }

  /// Bounded epoll_wait timeout: sleep exactly until the earliest live
  /// deadline (connection or drain), -1 (forever) when there is none.
  /// Stale heap heads are pruned here so an abandoned deadline never
  /// causes a pointless early wake-up.
  int NextTimeoutMs() {
    while (!deadlines_.empty()) {
      auto it = conns_.find(deadlines_.top().id);
      if (it != conns_.end() &&
          it->second->deadline_gen == deadlines_.top().gen) {
        break;
      }
      deadlines_.pop();
    }
    SteadyClock::time_point next = SteadyClock::time_point::max();
    if (!deadlines_.empty()) next = deadlines_.top().when;
    if (draining_) next = std::min(next, DrainDeadline());
    if (next == SteadyClock::time_point::max()) return -1;
    auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
        next - SteadyClock::now());
    return static_cast<int>(std::clamp<int64_t>(remaining.count(), 0, 60'000));
  }

  /// Fires every expired, still-valid deadline: idle kReading
  /// connections get a clean close, stalled writes/drains are cut.
  void SweepDeadlines() {
    const SteadyClock::time_point now = SteadyClock::now();
    while (!deadlines_.empty()) {
      const DeadlineEntry entry = deadlines_.top();
      auto it = conns_.find(entry.id);
      if (it == conns_.end() || it->second->deadline_gen != entry.gen) {
        deadlines_.pop();  // stale: the conn died or re-armed
        continue;
      }
      if (entry.when > now) break;
      deadlines_.pop();
      Conn* conn = it->second.get();
      switch (conn->state) {
        case Conn::State::kReading:
          shared_->idle_closes.fetch_add(1);
          CloseConn(conn);
          break;
        case Conn::State::kWriting:
        case Conn::State::kDraining:
          shared_->timeout_closes.fetch_add(1);
          CloseConn(conn);
          break;
        case Conn::State::kHandling:
          // The handler blew its deadline: answer 503 + close on its
          // behalf. Bumping request_seq makes the eventual late
          // completion a guaranteed no-op even if the conn were somehow
          // back in kHandling by then (it cannot be — close_after_write
          // — but the guard is cheap).
          shared_->deadline_closes.fetch_add(1);
          ++conn->request_seq;
          conn->keep_alive = false;
          conn->close_after_write = true;
          {
            HttpResponse response;
            response.status = 503;
            response.content_type = "text/plain";
            response.body = "handler deadline exceeded";
            StartResponse(conn, response);  // may destroy the conn
          }
          break;
      }
    }
  }

  /// Schedules a deadline `after` from now for this connection,
  /// superseding any previous one. <= 0 disables (bare disarm).
  void ArmDeadline(Conn* conn, std::chrono::milliseconds after) {
    ++conn->deadline_gen;
    if (after.count() <= 0) return;
    deadlines_.push(
        {SteadyClock::now() + after, conn->id, conn->deadline_gen});
  }

  void DisarmDeadline(Conn* conn) { ++conn->deadline_gen; }

  /// Sheds a just-accepted fd with the canned inline 503: half-close,
  /// drain what the client already sent (close() on unread bytes would
  /// RST the 503 away), then give the descriptor back.
  static void ShedAccepted(int fd) {
    [[maybe_unused]] ssize_t n =
        ::send(fd, kShedResponse, sizeof(kShedResponse) - 1, MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_WR);
    char discard[4096];
    while (::read(fd, discard, sizeof(discard)) > 0) {
    }
    ::close(fd);
  }

  void AcceptAll() {
    if (draining_) return;  // listen fd deregistered; stale event
    for (;;) {
      sockaddr_in peer{};
      socklen_t peer_len = sizeof(peer);
      int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                         &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if ((errno == EMFILE || errno == ENFILE) && spare_fd_ >= 0) {
          // Out of descriptors with the backlog still pending: a plain
          // break would leave the level-triggered listen fd hot and
          // spin every poller at 100% CPU. Sacrifice the reserved fd to
          // accept-and-close (shedding one waiting client), then take
          // it back.
          ::close(spare_fd_);
          spare_fd_ = -1;
          int victim = ::accept(listen_fd_, nullptr, nullptr);
          if (victim >= 0) ::close(victim);
          spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          if (victim < 0 || spare_fd_ < 0) break;
          continue;
        }
        break;  // EAGAIN (another poller won the race) or listen closed
      }
      // Accept-shed at the cap: answer 503 inline and give the fd back
      // instead of holding it open (or silently leaking it). The
      // fresh socket's empty send buffer makes the one-shot send safe.
      if (options_->max_connections > 0 &&
          shared_->open_connections.load() >= options_->max_connections) {
        shared_->connections_shed.fetch_add(1);
        // (A client that keeps streaming after our FIN can still race
        // the close — shedding must not hold the fd, so that residual
        // window is accepted.)
        ShedAccepted(fd);
        continue;
      }
      // Per-IP cap: same inline shed, but charged to the one source
      // that exhausted its own budget rather than to global overload.
      const uint32_t peer_ip =
          peer.sin_family == AF_INET ? ntohl(peer.sin_addr.s_addr) : 0;
      bool ip_tracked = false;
      if (options_->max_connections_per_ip > 0 &&
          peer.sin_family == AF_INET) {
        if (!shared_->TryAcquireIp(peer_ip,
                                   options_->max_connections_per_ip)) {
          shared_->per_ip_shed.fetch_add(1);
          ShedAccepted(fd);
          continue;
        }
        ip_tracked = true;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->peer_ip = peer_ip;
      conn->ip_tracked = ip_tracked;
      const uint64_t id = next_conn_id_++;
      conn->id = id;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        if (ip_tracked) shared_->ReleaseIp(peer_ip);
        ::close(fd);
        continue;
      }
      shared_->open_connections.fetch_add(1);
      shared_->connections_accepted.fetch_add(1);
      Conn* raw = conn.get();
      conns_.emplace(id, std::move(conn));
      // The idle clock starts at accept and is NOT reset by partial
      // reads: a slow-loris dripping bytes dies on the same schedule as
      // a silent connection.
      ArmDeadline(raw, options_->idle_timeout);
    }
  }

  void DrainWakeQueue() {
    uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
    std::deque<Completion> ready;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready.swap(completions_);
    }
    for (Completion& c : ready) {
      HandleCompletion(c.id, c.seq, std::move(c.response));
    }
  }

  void OnConnEvent(uint64_t id, uint32_t events) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn* conn = it->second.get();
    if (events & EPOLLERR) {
      CloseConn(conn);
      return;
    }
    if ((events & EPOLLHUP) && conn->state == Conn::State::kHandling) {
      // Peer fully gone while compute is in flight: reclaim the fd now;
      // the eventual completion finds the id missing and is dropped.
      CloseConn(conn);
      return;
    }
    // EPOLLHUP while writing is treated like writability: send() will
    // surface EPIPE/ECONNRESET and close the conn — never ignore it, a
    // level-triggered HUP we do nothing about would spin this loop.
    if ((events & (EPOLLOUT | EPOLLHUP)) &&
        conn->state == Conn::State::kWriting) {
      FlushOut(conn);  // may destroy the conn
      PumpRequests(id);
      return;
    }
    if (events & (EPOLLIN | EPOLLHUP)) {
      if (conn->state == Conn::State::kDraining) {
        DrainReads(conn);
      } else if (conn->state == Conn::State::kReading) {
        if (!ReadAvailable(conn)) {
          CloseConn(conn);
          return;
        }
        PumpRequests(id);
      }
      // kHandling/kWriting never have EPOLLIN interest; nothing to do.
    }
  }

  /// Reads what is currently available, bounded: buffering stops at one
  /// max-size request's worth of bytes, so a fast client streaming
  /// nonstop cannot grow conn->in without limit before the parser runs
  /// (level-triggered epoll re-fires while socket data remains; the
  /// pump drains conn->in between passes). Returns false when the
  /// connection errored or the peer closed with no parseable request in
  /// flight (the conn should be closed). A clean half-close after a
  /// complete request sets peer_eof and returns true: the request still
  /// deserves its response.
  /// One maximal request: header block + "\r\n\r\n" + body. Anything a
  /// connection buffers beyond this can only be pipelined follow-ups,
  /// which wait in the kernel buffer instead.
  size_t MaxBufferedBytes() const {
    return options_->max_header_bytes + 4 + options_->max_body_bytes;
  }

  bool ReadAvailable(Conn* conn) {
    const size_t max_buffered = MaxBufferedBytes();
    char chunk[16384];
    for (;;) {
      if (conn->in.size() >= max_buffered) return true;
      ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn->in.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        conn->peer_eof = true;
        return !conn->in.empty();
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Drives the connection's request pipeline: parse-and-dispatch one
  /// buffered request at a time until the conn needs more bytes, goes
  /// async (kHandling), errors out, or dies. Iterative on purpose — an
  /// inline handler completion re-enters here via HandleCompletion, and
  /// the `pumping` guard folds that re-entry into this loop instead of
  /// recursing once per pipelined request (the recursion depth would be
  /// attacker-controlled). Works on the id, not the pointer: any step
  /// may destroy the conn.
  void PumpRequests(uint64_t id) {
    {
      auto it = conns_.find(id);
      if (it == conns_.end() || it->second->pumping) return;
      it->second->pumping = true;
    }
    for (;;) {
      auto it = conns_.find(id);
      if (it == conns_.end()) return;  // closed mid-pump; flag died with it
      Conn* conn = it->second.get();
      if (conn->state != Conn::State::kReading ||
          !ParseAndDispatchOne(conn)) {
        auto alive = conns_.find(id);
        if (alive != conns_.end()) alive->second->pumping = false;
        return;
      }
    }
  }

  /// Parses at most one complete request out of conn->in and dispatches
  /// it. Returns true iff a request was dispatched (the pump decides
  /// whether the conn can take another one); false when more bytes are
  /// needed or a protocol error took over the connection. May destroy
  /// the conn.
  bool ParseAndDispatchOne(Conn* conn) {
    FrameResult framed = FrameOneRequest(
        conn->in, conn->peer_eof,
        {options_->max_header_bytes, options_->max_body_bytes});
    switch (framed.verdict) {
      case FrameResult::Verdict::kNeedMore:
        return false;
      case FrameResult::Verdict::kClose:
        CloseConn(conn);
        return false;
      case FrameResult::Verdict::kError:
        SendProtocolError(conn, framed.error_status,
                          framed.error_message.c_str());
        return false;
      case FrameResult::Verdict::kRequest:
        break;
    }
    HttpRequest request = std::move(framed.request);
    conn->in.erase(0, framed.consumed);  // keep pipelined bytes for later

    // A peer that half-closed cannot send another request — but requests
    // it pipelined before the FIN are already in conn->in and still get
    // served; the close happens once the buffer runs dry.
    conn->keep_alive =
        framed.keep_alive && (!conn->peer_eof || !conn->in.empty());

    conn->state = Conn::State::kHandling;
    // The handler deadline starts at dispatch: a wedged solve gets a
    // server-side 503 at handler_timeout instead of pinning this
    // connection until Stop(). <= 0 leaves kHandling unbounded (the
    // serve layer's queue-depth shedding is then the only limit).
    ArmDeadline(conn, options_->handler_timeout);
    shared_->requests_handled.fetch_add(1);
    const uint64_t id = conn->id;
    const uint64_t seq = ++conn->request_seq;
    // Request trace: a fresh context per request (never reused across
    // requests — a late completion from a deadline-503'd request may
    // still write spans after this connection moved on). The slow-query
    // check runs in the Done wrapper, i.e. on the thread that delivers
    // the completion — the tail of the request's causal chain, after
    // every span write.
    std::shared_ptr<obs::TraceContext> trace;
    if (obs::kTracingCompiledIn && obs::TracingEnabled()) {
      trace = std::make_shared<obs::TraceContext>();
      trace->set_request_id(obs::TraceContext::NextRequestId());
      request.trace = trace;
    }
    Done done = [self = shared_from_this(), id, seq,
                 trace = std::move(trace),
                 threshold = options_->slow_query_threshold](
                    HttpResponse response) {
      if (trace && threshold.count() > 0) {
        const double total_ms =
            static_cast<double>(trace->NowNs()) / 1e6;
        if (total_ms >= static_cast<double>(threshold.count())) {
          obs::EmitSlowQueryLog(*trace, total_ms,
                                static_cast<double>(threshold.count()));
        }
      }
      self->Complete(id, seq, std::move(response));
    };
    (*handler_)(request, std::move(done));
    // Read interest is only dropped when the handler actually deferred
    // (level-triggered: we must not keep waking on buffered pipelined
    // bytes while busy). The common inline-completion path — cache
    // hits, static routes — has already moved past kHandling and never
    // pays an epoll_ctl. No epoll processing ran since the dispatch
    // (same thread), so deferring the MOD a few lines is race-free; a
    // cross-thread completion only lands via the wake queue later.
    auto it = conns_.find(id);
    if (it != conns_.end() && it->second->state == Conn::State::kHandling &&
        it->second->request_seq == seq) {
      SetInterest(it->second.get(), 0);
    }
    return true;  // the pump re-checks state/liveness before continuing
  }

  void HandleCompletion(uint64_t id, uint64_t seq, HttpResponse response) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // connection died while computing
    Conn* conn = it->second.get();
    if (conn->state != Conn::State::kHandling || conn->request_seq != seq) {
      return;  // stale or duplicate completion
    }
    // Draining (or stopped): this response still goes out, but the
    // connection closes behind it instead of going back to kReading.
    if (stop_requested_.load() || drain_requested_.load()) {
      conn->keep_alive = false;
    }
    conn->close_after_write = !conn->keep_alive;
    StartResponse(conn, response);  // may destroy the conn
    // A pipelined request may already be buffered; for an inline
    // completion (handler called done on this stack) the active pump
    // absorbs this call via the `pumping` guard.
    PumpRequests(id);
  }

  void SendProtocolError(Conn* conn, int status, const char* message) {
    shared_->protocol_errors.fetch_add(1);
    conn->keep_alive = false;
    conn->close_after_write = true;
    conn->drain_after_write = true;  // the client may still be sending
    HttpResponse response;
    response.status = status;
    response.content_type = "text/plain";
    response.body = message;
    StartResponse(conn, response);
  }

  void StartResponse(Conn* conn, const HttpResponse& response) {
    conn->out = StrFormat(
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
        "Connection: %s\r\n",
        response.status, ReasonPhrase(response.status),
        response.content_type.c_str(), response.body.size(),
        conn->close_after_write ? "close" : "keep-alive");
    for (const auto& [name, value] : response.headers) {
      conn->out += name;
      conn->out += ": ";
      conn->out += value;
      conn->out += "\r\n";
    }
    conn->out += "\r\n";
    conn->out += response.body;
    conn->out_off = 0;
    conn->state = Conn::State::kWriting;
    FlushOut(conn);
  }

  /// Writes as much of conn->out as the socket accepts. Fully flushed ->
  /// FinishResponse; would-block -> arm EPOLLOUT and resume on the next
  /// event; error -> close. May destroy the conn.
  void FlushOut(Conn* conn) {
    while (conn->out_off < conn->out.size()) {
      // MSG_NOSIGNAL: a client that vanished mid-response must surface
      // as EPIPE here, not as a process-wide SIGPIPE.
      ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                         conn->out.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        SetInterest(conn, EPOLLOUT);
        // Progress deadline, re-armed per partial write: a reader that
        // keeps draining survives; one that stalls for write_timeout is
        // cut.
        ArmDeadline(conn, options_->write_timeout);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      CloseConn(conn);
      return;
    }
    FinishResponse(conn);
  }

  void FinishResponse(Conn* conn) {
    shared_->responses_sent.fetch_add(1);
    conn->out.clear();
    conn->out_off = 0;
    if (conn->drain_after_write) {
      // Half-close, then discard whatever the client is still sending,
      // so the response survives in the socket buffer instead of being
      // destroyed by a reset. Bounded in bytes (kMaxDrainBytes) and in
      // time (write_timeout) — a client that never stops sending, or
      // never hangs up, is cut either way.
      ::shutdown(conn->fd, SHUT_WR);
      conn->state = Conn::State::kDraining;
      SetInterest(conn, EPOLLIN);
      ArmDeadline(conn, options_->write_timeout);
      return;
    }
    if (conn->close_after_write) {
      CloseConn(conn);
      return;
    }
    conn->state = Conn::State::kReading;
    SetInterest(conn, EPOLLIN);
    // A fresh idle window for the next request on this keep-alive
    // connection. Buffered pipelined requests are picked up by the
    // caller's pump (which disarms again at the next dispatch).
    ArmDeadline(conn, options_->idle_timeout);
  }

  void DrainReads(Conn* conn) {
    char chunk[16384];
    for (;;) {
      ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn->drained += static_cast<size_t>(n);
        if (conn->drained > kMaxDrainBytes) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or error: the drain is over
    }
    CloseConn(conn);
  }

  void SetInterest(Conn* conn, uint32_t mask) {
    if (conn->interest == mask) return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->interest = mask;
  }

  void CloseConn(Conn* conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    if (conn->ip_tracked) shared_->ReleaseIp(conn->peer_ip);
    shared_->open_connections.fetch_sub(1);
    conns_.erase(conn->id);  // destroys *conn
  }

  const AsyncHandler* handler_;
  const HttpServerOptions* options_;
  std::shared_ptr<SharedState> shared_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  int spare_fd_ = -1;
  std::thread thread_;
  std::atomic<std::thread::id> thread_id_{};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  /// Drain deadline as steady-clock ticks (atomic so RequestDrain can
  /// publish it from the stopping thread; release/acquire pairs with
  /// drain_requested_).
  std::atomic<int64_t> drain_deadline_ns_{0};

  // Poller-thread-only state.
  bool draining_ = false;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = kFirstConnId;
  /// Lazy-deletion min-heap over (deadline, conn id, generation); see
  /// DeadlineEntry. At most O(state transitions) entries, pruned as
  /// stale heads reach the top.
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;

  // Cross-thread completion queue.
  std::mutex mu_;
  std::deque<Completion> completions_;
};

HttpServer::HttpServer(AsyncHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_([h = std::move(handler)](const HttpRequest& request,
                                        Done done) { done(h(request)); }),
      options_(options) {}

HttpServer::~HttpServer() { Stop(); }

Result<int> HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IoError(StrFormat("bind(%d) failed", port));
  }
  if (::listen(fd, options_.listen_backlog) < 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);

  shared_ = std::make_shared<SharedState>();
  int num_pollers = options_.num_pollers <= 0 ? 2 : options_.num_pollers;
  for (int i = 0; i < num_pollers; ++i) {
    auto poller = std::make_shared<Poller>(&handler_, &options_, shared_);
    Status init = poller->Init(fd);
    if (!init.ok()) {
      pollers_.clear();
      ::close(listen_fd_.exchange(-1));
      return init;
    }
    pollers_.push_back(std::move(poller));
  }
  for (auto& poller : pollers_) poller->StartThread();
  running_.store(true);
  return port_;
}

void HttpServer::Stop() {
  running_.store(false);
  if (options_.drain_timeout.count() > 0) {
    // Graceful drain: every poller stops accepting and sheds its idle
    // connections at once, then in-flight requests run to completion
    // (their responses close the connection) until the shared deadline.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.drain_timeout;
    for (auto& poller : pollers_) poller->RequestDrain(deadline);
  } else {
    for (auto& poller : pollers_) poller->RequestStop();
  }
  for (auto& poller : pollers_) poller->Join();
  pollers_.clear();
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

HttpServerStats HttpServer::Stats() const {
  HttpServerStats stats;
  stats.max_connections = options_.max_connections;
  if (shared_ == nullptr) return stats;
  stats.open_connections = shared_->open_connections.load();
  stats.connections_accepted = shared_->connections_accepted.load();
  stats.requests_handled = shared_->requests_handled.load();
  stats.responses_sent = shared_->responses_sent.load();
  stats.protocol_errors = shared_->protocol_errors.load();
  stats.connections_shed = shared_->connections_shed.load();
  stats.idle_closes = shared_->idle_closes.load();
  stats.timeout_closes = shared_->timeout_closes.load();
  stats.deadline_closes = shared_->deadline_closes.load();
  stats.per_ip_shed = shared_->per_ip_shed.load();
  return stats;
}

}  // namespace rpg::ui
