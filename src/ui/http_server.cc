#include "ui/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace rpg::ui {

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

Result<HttpRequest> ParseRequestLine(const std::string& line) {
  std::vector<std::string> parts = SplitWhitespace(line);
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
    return Status::InvalidArgument("malformed request line: " + line);
  }
  HttpRequest request;
  request.method = parts[0];
  std::string target = parts[1];
  size_t question = target.find('?');
  if (question == std::string::npos) {
    request.path = target;
  } else {
    request.path = target.substr(0, question);
    for (const std::string& pair :
         Split(target.substr(question + 1), '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[UrlDecode(pair)] = "";
      } else {
        request.query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  if (request.path.empty() || request.path[0] != '/') {
    return Status::InvalidArgument("bad path: " + target);
  }
  return request;
}

HttpServer::~HttpServer() { Stop(); }

Result<int> HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(StrFormat("bind(%d) failed", port));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpServer::ServeLoop() {
  while (running_.load()) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) break;
      continue;
    }
    // Read until the end of the headers (the UI only sends GETs with no
    // body) or 64 KiB, whichever comes first.
    std::string raw;
    char buf[4096];
    while (raw.find("\r\n\r\n") == std::string::npos && raw.size() < 65536) {
      ssize_t n = ::read(client, buf, sizeof(buf));
      if (n <= 0) break;
      raw.append(buf, static_cast<size_t>(n));
    }
    HttpResponse response;
    size_t line_end = raw.find("\r\n");
    auto request_or = ParseRequestLine(
        line_end == std::string::npos ? raw : raw.substr(0, line_end));
    if (!request_or.ok()) {
      response.status = 400;
      response.content_type = "text/plain";
      response.body = request_or.status().ToString();
    } else {
      response = handler_(request_or.value());
    }
    const char* reason = response.status == 200   ? "OK"
                         : response.status == 404 ? "Not Found"
                         : response.status == 400 ? "Bad Request"
                                                  : "Error";
    std::string out = StrFormat(
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        response.status, reason, response.content_type.c_str(),
        response.body.size());
    out += response.body;
    size_t written = 0;
    while (written < out.size()) {
      ssize_t n = ::write(client, out.data() + written, out.size() - written);
      if (n <= 0) break;
      written += static_cast<size_t>(n);
    }
    ::close(client);
  }
}

}  // namespace rpg::ui
