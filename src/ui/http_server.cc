#include "ui/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace rpg::ui {

namespace {

/// Hard ceilings against hostile or broken clients.
constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 1024 * 1024;

/// Writes the whole buffer; returns false on error/EOF.
bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n <= 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    default: return "Error";
  }
}

}  // namespace

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

Result<HttpRequest> ParseRequestLine(const std::string& line) {
  std::vector<std::string> parts = SplitWhitespace(line);
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
    return Status::InvalidArgument("malformed request line: " + line);
  }
  HttpRequest request;
  request.method = parts[0];
  request.version = parts[2];
  std::string target = parts[1];
  size_t question = target.find('?');
  if (question == std::string::npos) {
    request.path = target;
  } else {
    request.path = target.substr(0, question);
    for (const std::string& pair :
         Split(target.substr(question + 1), '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[UrlDecode(pair)] = "";
      } else {
        request.query[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  if (request.path.empty() || request.path[0] != '/') {
    return Status::InvalidArgument("bad path: " + target);
  }
  return request;
}

void ParseHeaderLines(const std::string& header_block,
                      std::map<std::string, std::string>* headers) {
  size_t pos = 0;
  while (pos < header_block.size()) {
    size_t eol = header_block.find("\r\n", pos);
    if (eol == std::string::npos) eol = header_block.size();
    std::string_view line(header_block.data() + pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (!name.empty()) (*headers)[std::move(name)] = std::move(value);
  }
}

HttpServer::~HttpServer() { Stop(); }

Result<int> HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(StrFormat("bind(%d) failed", port));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Closing the listening socket unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
  // Shut every live connection to unblock its read(), then join. The
  // connection threads only shutdown() their fd, never close() it (the
  // fd number stays allocated to us), so this racing shutdown can never
  // hit a recycled descriptor; close happens below, after the join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& c : conns_) ::shutdown(c.fd, SHUT_RDWR);
  }
  // No new connections can appear (accept loop joined), so the list is
  // stable outside the lock and joining cannot deadlock with ReapFinished.
  for (Connection& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
    ::close(c.fd);
  }
  conns_.clear();
}

void HttpServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->finished.load()) {
      if (it->thread.joinable()) it->thread.join();
      ::close(it->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::ServeLoop() {
  while (running_.load()) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) break;
      continue;
    }
    ReapFinished();
    Connection* conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn = &conns_.emplace_back();
      conn->fd = client;
    }
    conn->thread = std::thread([this, conn] { HandleConnection(conn); });
  }
}

void HttpServer::HandleConnection(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  bool keep_alive = true;
  bool drain_on_close = false;
  // Early-error replies leave unread request bytes in the socket; a
  // plain close() would then RST and destroy the queued response, so
  // half-close the write side and discard (bounded) what the client is
  // still sending before the real close.
  auto drain = [&] {
    ::shutdown(fd, SHUT_WR);
    size_t drained = 0;
    ssize_t n;
    while (drained < (4u << 20) && (n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      drained += static_cast<size_t>(n);
    }
  };
  while (keep_alive && running_.load()) {
    // --- read one request: headers, then Content-Length body ----------
    size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > kMaxHeaderBytes) {
        if (WriteAll(fd,
                     "HTTP/1.1 431 Request Header Fields Too Large\r\n"
                     "Content-Length: 0\r\nConnection: close\r\n\r\n")) {
          drain();
        }
        goto done;
      }
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) goto done;
      buffer.append(chunk, static_cast<size_t>(n));
    }

    {
      size_t line_end = buffer.find("\r\n");
      auto request_or = ParseRequestLine(buffer.substr(0, line_end));
      HttpResponse response;
      HttpRequest request;
      bool parsed = request_or.ok();
      if (parsed) {
        request = std::move(request_or).value();
        ParseHeaderLines(
            buffer.substr(line_end + 2, header_end - line_end - 2),
            &request.headers);
        size_t body_len = 0;
        if (auto it = request.headers.find("content-length");
            it != request.headers.end()) {
          body_len = static_cast<size_t>(
              std::strtoull(it->second.c_str(), nullptr, 10));
        }
        if (body_len > kMaxBodyBytes) {
          response = {413, "text/plain", "body too large"};
          keep_alive = false;
          drain_on_close = true;  // the client is mid-way through the body
          buffer.clear();
        } else {
          size_t total = header_end + 4 + body_len;
          while (buffer.size() < total) {
            ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0) goto done;
            buffer.append(chunk, static_cast<size_t>(n));
          }
          request.body = buffer.substr(header_end + 4, body_len);
          buffer.erase(0, total);  // keep pipelined bytes for next round

          // Persistence: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
          // close; an explicit Connection header wins either way.
          keep_alive = request.version != "HTTP/1.0";
          if (auto it = request.headers.find("connection");
              it != request.headers.end()) {
            keep_alive = !ContainsIgnoreCase(it->second, "close") &&
                         (keep_alive ||
                          ContainsIgnoreCase(it->second, "keep-alive"));
          }
          response = handler_(request);
        }
      } else {
        response.status = 400;
        response.content_type = "text/plain";
        response.body = request_or.status().ToString();
        keep_alive = false;  // framing is unknown; bail after replying
      }

      if (!running_.load()) keep_alive = false;
      std::string out = StrFormat(
          "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
          "Connection: %s\r\n\r\n",
          response.status, ReasonPhrase(response.status),
          response.content_type.c_str(), response.body.size(),
          keep_alive ? "keep-alive" : "close");
      out += response.body;
      if (!WriteAll(fd, out)) goto done;
      if (drain_on_close) {
        drain();
        goto done;
      }
    }
  }
done:
  // Signal EOF to the peer but do NOT close: the fd number must stay
  // allocated until ReapFinished()/Stop() has joined this thread, or a
  // racing Stop() could shutdown() a recycled descriptor. The acceptor
  // (or Stop) closes the fd after the join.
  ::shutdown(fd, SHUT_RDWR);
  conn->finished.store(true);
}

}  // namespace rpg::ui
