#include "ui/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"
#include "ui/http_server.h"

namespace rpg::ui {

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(int port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IoError(StrFormat("connect(%d) failed", port));
  }
  fd_ = fd;
  port_ = port;
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<ClientResponse> HttpClient::Fetch(const std::string& method,
                                         const std::string& target,
                                         bool close_connection) {
  if (fd_ < 0) {
    if (port_ == 0) return Status::FailedPrecondition("not connected");
    RPG_RETURN_NOT_OK(Connect(port_));
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\n" +
                        (close_connection ? "Connection: close\r\n" : "") +
                        "\r\n";
  auto response_or = FetchOnce(request);
  if (!response_or.ok() && port_ != 0) {
    // The server may have closed an idle keep-alive connection between
    // requests; one reconnect-and-retry is safe for idempotent fetches.
    RPG_RETURN_NOT_OK(Connect(port_));
    return FetchOnce(request);
  }
  return response_or;
}

ResponseParseResult ParseHttpResponse(const std::string& buffer) {
  ResponseParseResult result;
  auto fail = [&result](std::string error) -> ResponseParseResult& {
    result.verdict = ResponseParseResult::Verdict::kError;
    result.error = std::move(error);
    return result;
  };
  size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;  // need more
  size_t line_end = buffer.find("\r\n");
  {
    // Status line: "HTTP/1.1 200 OK".
    std::vector<std::string> parts =
        SplitWhitespace(buffer.substr(0, line_end));
    if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/")) {
      return fail("malformed status line");
    }
    // Strict three-digit status parse: atoi would quietly turn "2x0" or
    // "junk" into a bogus code and mis-signal the caller.
    const std::string& code = parts[1];
    if (code.size() != 3 || code[0] < '1' || code[0] > '9' ||
        !std::isdigit(static_cast<unsigned char>(code[1])) ||
        !std::isdigit(static_cast<unsigned char>(code[2]))) {
      return fail("malformed status code: " + code);
    }
    result.response.status =
        (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
  }
  // Zero-header responses have header_end == line_end; the unclamped
  // subtraction would underflow (same guard as the server-side framing).
  size_t header_len =
      header_end >= line_end + 2 ? header_end - line_end - 2 : 0;
  ParseHeaderLines(buffer.substr(line_end + 2, header_len),
                   &result.response.headers);
  size_t body_len = 0;
  if (auto it = result.response.headers.find("content-length");
      it != result.response.headers.end()) {
    // Same strict parse as the server: a garbage length would misframe
    // every later response on this keep-alive connection.
    if (!ParseContentLength(it->second, &body_len)) {
      return fail("malformed Content-Length: " + it->second);
    }
  }
  size_t total = header_end + 4 + body_len;
  if (buffer.size() < total) {
    result.response = ClientResponse{};  // partial parse: report nothing
    return result;                       // need more (body incomplete)
  }
  result.response.body = buffer.substr(header_end + 4, body_len);
  result.verdict = ResponseParseResult::Verdict::kResponse;
  result.consumed = total;
  return result;
}

Result<ClientResponse> HttpClient::FetchOnce(const std::string& request) {
  size_t written = 0;
  while (written < request.size()) {
    ssize_t n =
        ::write(fd_, request.data() + written, request.size() - written);
    if (n <= 0) {
      Close();
      return Status::IoError("write failed");
    }
    written += static_cast<size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    ResponseParseResult parsed = ParseHttpResponse(buffer_);
    if (parsed.verdict == ResponseParseResult::Verdict::kError) {
      Close();
      return Status::IoError(parsed.error);
    }
    if (parsed.verdict == ResponseParseResult::Verdict::kResponse) {
      buffer_.erase(0, parsed.consumed);
      if (auto it = parsed.response.headers.find("connection");
          it != parsed.response.headers.end() &&
          ContainsIgnoreCase(it->second, "close")) {
        Close();
      }
      return std::move(parsed.response);
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      Close();
      return Status::IoError("connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace rpg::ui
