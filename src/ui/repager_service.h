#ifndef RPG_UI_REPAGER_SERVICE_H_
#define RPG_UI_REPAGER_SERVICE_H_

#include <string>
#include <vector>

#include "serve/serve_engine.h"
#include "ui/http_server.h"

namespace rpg::ui {

/// The RePaGer web application backend (§V). A thin route layer: every
/// query is served by serve::ServeEngine (sharded result cache ->
/// single-flight -> micro-batched BatchEngine; see docs/serving.md),
/// so repeated queries come back from the cache in microseconds and
/// concurrent misses share batches. Routes:
///
///   GET  /                      the single-page UI (embedded HTML)
///   GET  /api/path?q=<query>[&seeds=N][&year=Y]
///                               reading path as JSON: nodes (title, year,
///                               importance), reading-order edges, the
///                               flattened navigation-bar order, the
///                               seed/expanded marking used by the panel's
///                               node-weight legend, and cache_hit
///   GET  /api/stats             live serving metrics (cache hit/miss,
///                               batch sizes, latency percentiles) as JSON
///   POST /api/cache/clear       drops the query cache; returns the
///                               number of entries dropped
class RePagerService {
 public:
  /// All pointers must outlive the service. `engine` owns the serving
  /// state (cache, batcher, metrics); `repager` is only used for the
  /// per-paper Importance() rendering.
  RePagerService(serve::ServeEngine* engine, const core::RePaGer* repager,
                 const std::vector<std::string>* titles,
                 const std::vector<uint16_t>* years);

  /// The HttpServer handler.
  HttpResponse Handle(const HttpRequest& request) const;

  /// Serves /api/path for a query (exposed for tests).
  Result<std::string> PathJson(const std::string& query, int num_seeds,
                               int year_cutoff) const;

 private:
  /// Renders one served response as the /api/path JSON document.
  std::string RenderPathJson(const std::string& query,
                             const serve::ServeResponse& response) const;

  serve::ServeEngine* engine_;
  const core::RePaGer* repager_;
  const std::vector<std::string>* titles_;
  const std::vector<uint16_t>* years_;
};

/// The embedded single-page UI: input panel, navigation bar, and an SVG
/// rendering of the generated reading path (panels a-e of Fig. 7).
const char* RePagerIndexHtml();

}  // namespace rpg::ui

#endif  // RPG_UI_REPAGER_SERVICE_H_
