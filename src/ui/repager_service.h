#ifndef RPG_UI_REPAGER_SERVICE_H_
#define RPG_UI_REPAGER_SERVICE_H_

#include <string>
#include <vector>

#include "core/repager.h"
#include "ui/http_server.h"

namespace rpg::ui {

/// The RePaGer web application backend (§V). Routes:
///
///   GET /                       the single-page UI (embedded HTML)
///   GET /api/path?q=<query>[&seeds=N][&year=Y]
///                               reading path as JSON: nodes (title, year,
///                               importance), reading-order edges, the
///                               flattened navigation-bar order, and the
///                               seed/expanded marking used by the panel's
///                               node-weight legend
///
/// The service is stateless: each request runs the full pipeline.
class RePagerService {
 public:
  /// All pointers must outlive the service.
  RePagerService(const core::RePaGer* repager,
                 const std::vector<std::string>* titles,
                 const std::vector<uint16_t>* years);

  /// The HttpServer handler.
  HttpResponse Handle(const HttpRequest& request) const;

  /// Builds the /api/path JSON for a query (exposed for tests).
  Result<std::string> PathJson(const std::string& query, int num_seeds,
                               int year_cutoff) const;

 private:
  const core::RePaGer* repager_;
  const std::vector<std::string>* titles_;
  const std::vector<uint16_t>* years_;
};

/// The embedded single-page UI: input panel, navigation bar, and an SVG
/// rendering of the generated reading path (panels a-e of Fig. 7).
const char* RePagerIndexHtml();

}  // namespace rpg::ui

#endif  // RPG_UI_REPAGER_SERVICE_H_
