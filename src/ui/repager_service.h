#ifndef RPG_UI_REPAGER_SERVICE_H_
#define RPG_UI_REPAGER_SERVICE_H_

#include <string>
#include <vector>

#include "serve/serve_engine.h"
#include "ui/http_server.h"

namespace rpg::ui {

/// Strict bounded parse for numeric query parameters: ASCII digits only
/// (no sign, whitespace, or trailing garbage) and the value must land in
/// [min, max]. Exposed for unit tests and the fuzz harnesses.
bool ParseBoundedInt(const std::string& s, int min, int max, int* out);

/// The RePaGer web application backend (§V). A thin route layer: every
/// query is served by serve::ServeEngine (sharded result cache ->
/// single-flight -> micro-batched BatchEngine; see docs/serving.md),
/// so repeated queries come back from the cache in microseconds and
/// concurrent misses share batches. Routes:
///
///   GET  /                      the single-page UI (embedded HTML)
///   GET  /api/path?q=<query>[&seeds=N][&year=Y][&debug=1]
///                               reading path as JSON: nodes (title, year,
///                               importance), reading-order edges, the
///                               flattened navigation-bar order, the
///                               seed/expanded marking used by the panel's
///                               node-weight legend, and cache_hit.
///                               debug=1 appends a "debug" object with the
///                               per-stage latency breakdown, Steiner work
///                               counters, and the raw request-trace spans
///                               (docs/observability.md)
///   GET  /api/stats             live serving metrics (http reactor
///                               gauges, cache hit/miss incl. negative
///                               entries, batch sizes, latency
///                               percentiles, per-stage attribution) as
///                               JSON
///   GET  /metrics               the same instruments in Prometheus text
///                               exposition format (version 0.0.4), for
///                               scraping (includes rpg_epoch_id,
///                               rpg_epoch_flips_total,
///                               rpg_epoch_last_reload_unix_seconds)
///   POST /api/cache/clear       drops the query cache; returns the
///                               number of entries dropped
///   POST /api/admin/reload      body: a snapshot path. Loads + fully
///                               checksum-audits the snapshot, then
///                               flips the serving epoch
///                               (ServeEngine::SwapEpoch). Fail-closed:
///                               any load/verify error returns 400/404
///                               naming the offending layer and leaves
///                               the serving epoch untouched. In-flight
///                               requests finish on the old epoch.
///
/// HandleAsync is the reactor entry point: cheap routes complete inline
/// on the poller thread; /api/path hands compute to
/// ServeEngine::GenerateAsync and completes from the batcher's
/// dispatcher, so poller threads never block on a solve. Handle is the
/// blocking wrapper kept for tests and the serve_ui self-test.
class RePagerService {
 public:
  /// Epoch-serving constructor: every response renders from its own
  /// epoch's substrate (titles/years/repager ride on the
  /// ServeResponse's epoch handle), so the service needs nothing beyond
  /// the engine and reloads require no re-wiring here. The engine must
  /// outlive the service and its current epoch must carry rendering
  /// metadata (i.e. not Epoch::Borrowed).
  explicit RePagerService(serve::ServeEngine* engine);

  /// Compat constructor for borrowed-substrate engines (no epoch
  /// metadata): rendering falls back to these pointers, which must
  /// outlive the service. `repager` is only used for the per-paper
  /// Importance() rendering.
  RePagerService(serve::ServeEngine* engine, const core::RePaGer* repager,
                 const std::vector<std::string>* titles,
                 const std::vector<uint16_t>* years);

  /// Optional: lets /api/stats report the HTTP reactor's own gauges
  /// (open connections, accepted, protocol errors). The server must
  /// outlive the service's last Handle call. Typically called right
  /// after constructing the HttpServer whose handler is this service.
  void AttachServer(const HttpServer* server) { server_ = server; }

  /// The asynchronous HttpServer handler: `done` is invoked exactly
  /// once, inline for cheap routes, later (from the compute side) for
  /// /api/path misses.
  void HandleAsync(const HttpRequest& request, HttpServer::Done done) const;

  /// Blocking wrapper over HandleAsync (tests, self-checks).
  HttpResponse Handle(const HttpRequest& request) const;

  /// Serves /api/path for a query (exposed for tests).
  Result<std::string> PathJson(const std::string& query, int num_seeds,
                               int year_cutoff) const;

 private:
  /// Renders one served response as the /api/path JSON document. Static
  /// on purpose: the GenerateAsync continuation must not capture the
  /// service (`this`) — a compute finishing after the service was
  /// destroyed (server stopped mid-flight) may still run this. The
  /// response's own epoch handle supplies (and keeps alive) the
  /// substrate it renders from; the repager/titles/years parameters are
  /// only the fallback for metadata-free Borrowed epochs, where the
  /// old "must outlive the engine" contract still applies.
  /// `debug` appends the "debug" object (stage breakdown + trace spans);
  /// `trace` may be null even in debug mode (tracing disabled) — the
  /// result-attached stage spans still render.
  static std::string RenderPathJson(const std::string& query,
                                    const serve::ServeResponse& response,
                                    const core::RePaGer* repager,
                                    const std::vector<std::string>* titles,
                                    const std::vector<uint16_t>* years,
                                    bool debug,
                                    const obs::TraceContext* trace);

  /// Maps a pipeline error to the /api/path error response.
  static HttpResponse ErrorResponse(const Status& status);

  /// POST /api/admin/reload: body is a snapshot path. Loads and fully
  /// verifies it, then SwapEpoch. Runs inline on the calling (poller)
  /// thread — the load is milliseconds for mmap snapshots; other
  /// pollers keep serving meanwhile.
  HttpResponse HandleReload(const HttpRequest& request) const;

  /// The /api/stats document: engine stats + the reactor's http section.
  std::string StatsJson() const;

  /// The GET /metrics body: engine instruments (prefix "rpg_") plus the
  /// reactor's counters/gauges (prefix "rpg_http_") when a server is
  /// attached.
  std::string MetricsText() const;

  serve::ServeEngine* engine_;
  const core::RePaGer* repager_;
  const std::vector<std::string>* titles_;
  const std::vector<uint16_t>* years_;
  const HttpServer* server_ = nullptr;
};

/// The embedded single-page UI: input panel, navigation bar, and an SVG
/// rendering of the generated reading path (panels a-e of Fig. 7).
const char* RePagerIndexHtml();

}  // namespace rpg::ui

#endif  // RPG_UI_REPAGER_SERVICE_H_
