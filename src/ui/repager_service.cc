#include "ui/repager_service.h"

#include <cstdlib>
#include <future>
#include <unordered_set>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "serve/epoch.h"

namespace rpg::ui {

/// Strict bounded parse for numeric query parameters: ASCII digits
/// only (no sign, whitespace, or trailing garbage), value within
/// [min, max]. The old atoi turned "abc" into 0 (silently falling back
/// to defaults) and accepted negatives and absurd magnitudes.
bool ParseBoundedInt(const std::string& s, int min, int max, int* out) {
  if (s.empty() || s.size() > 9) return false;
  int value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value < min || value > max) return false;
  *out = value;
  return true;
}

namespace {

/// Parameter bounds for /api/path. Seeds beyond 1000 would dwarf the
/// corpus; years outside [1000, 2100] cannot match any paper (years are
/// uint16 publication years).
constexpr int kMinSeeds = 1, kMaxSeeds = 1000;
constexpr int kMinYear = 1000, kMaxYear = 2100;

HttpResponse BadParameter(const std::string& name, const std::string& value) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error").String("invalid " + name + " parameter: \"" + value + "\"");
  w.EndObject();
  return {400, "application/json", w.str()};
}

}  // namespace

RePagerService::RePagerService(serve::ServeEngine* engine)
    : engine_(engine), repager_(nullptr), titles_(nullptr), years_(nullptr) {
  RPG_CHECK(engine_ != nullptr);
  // Rendering needs titles/years; with no fallback pointers they must
  // come from the epoch. Catch a Borrowed-epoch misconfiguration at
  // construction, not on the first request.
  serve::EpochHandle epoch = engine_->CurrentEpoch();
  RPG_CHECK(epoch->titles() != nullptr && epoch->years() != nullptr);
}

RePagerService::RePagerService(serve::ServeEngine* engine,
                               const core::RePaGer* repager,
                               const std::vector<std::string>* titles,
                               const std::vector<uint16_t>* years)
    : engine_(engine), repager_(repager), titles_(titles), years_(years) {
  RPG_CHECK(engine_ != nullptr && repager_ != nullptr &&
            titles_ != nullptr && years_ != nullptr);
}

std::string RePagerService::RenderPathJson(
    const std::string& query, const serve::ServeResponse& response,
    const core::RePaGer* repager, const std::vector<std::string>* titles,
    const std::vector<uint16_t>* years, bool debug,
    const obs::TraceContext* trace) {
  // Prefer the substrate of the epoch this response was served on: the
  // response's handle keeps it alive through rendering, and after a
  // flip an in-flight old-epoch response must render with ITS titles /
  // years / importances, not the new epoch's. The parameters remain as
  // the fallback for metadata-free Borrowed epochs.
  if (response.epoch != nullptr) {
    repager = &response.epoch->repager();
    if (response.epoch->titles() != nullptr) {
      titles = response.epoch->titles();
      years = response.epoch->years();
    }
  }
  RPG_CHECK(repager != nullptr && titles != nullptr && years != nullptr);
  const core::RePagerResult& result = *response.result;
  std::unordered_set<graph::PaperId> seeds(result.initial_seeds.begin(),
                                           result.initial_seeds.end());
  JsonWriter w;
  w.BeginObject();
  w.Key("query").String(query);
  w.Key("subgraph_nodes").UInt(result.subgraph_nodes);
  w.Key("subgraph_edges").UInt(result.subgraph_edges);
  // Original pipeline compute time (a property of the cached result) vs
  // what this request actually waited inside the serving layer.
  w.Key("seconds").Double(result.total_seconds);
  w.Key("serve_seconds").Double(response.e2e_seconds);
  w.Key("cache_hit").Bool(response.cache_hit);
  w.Key("nodes").BeginArray();
  for (graph::PaperId p : result.path.nodes()) {
    w.BeginObject();
    w.Key("id").UInt(p);
    w.Key("title").String((*titles)[p]);
    w.Key("year").Int((*years)[p]);
    // Node-weight legend: a * pgscore + b * venue, higher = more
    // important in the whole reading path (§V panel e).
    w.Key("importance").Double(repager->Importance(p));
    // Green vs gray marking of Fig. 9: was the paper in the engine's
    // initial top-K, or surfaced by citation analysis?
    w.Key("from_engine").Bool(seeds.contains(p));
    w.EndObject();
  }
  w.EndArray();
  w.Key("edges").BeginArray();
  for (const auto& [first, next] : result.path.edges()) {
    w.BeginObject();
    w.Key("read_first").UInt(first);
    w.Key("read_next").UInt(next);
    w.EndObject();
  }
  w.EndArray();
  // Navigation bar (§V panel b): the flattened reading order.
  w.Key("reading_order").BeginArray();
  for (graph::PaperId p : result.path.FlattenedOrder(*years)) w.UInt(p);
  w.EndArray();
  if (debug) {
    // Stage breakdown of the result's own solve (cached results keep the
    // attribution of their original computation) plus, when this request
    // carried a trace, the raw request-scoped spans.
    w.Key("debug").BeginObject();
    w.Key("stages").BeginObject();
    for (obs::Stage stage : obs::kPipelineStages) {
      w.Key(obs::StageName(stage)).Double(result.stages.StageMs(stage));
    }
    w.EndObject();
    w.Key("stage_total_ms").Double(result.stages.TotalMs());
    w.Key("pipeline_total_ms").Double(result.total_seconds * 1e3);
    w.Key("steiner").BeginObject();
    w.Key("nodes_settled").UInt(result.steiner_stats.nodes_settled);
    w.Key("heap_pushes").UInt(result.steiner_stats.heap_pushes);
    w.Key("closure_edges").UInt(result.steiner_stats.closure_edges);
    w.Key("dijkstra_runs").UInt(result.steiner_stats.dijkstra_runs);
    w.Key("closure_seconds").Double(result.steiner_stats.closure_seconds);
    w.EndObject();
    if (trace != nullptr) {
      w.Key("trace").BeginObject();
      w.Key("request_id").UInt(trace->request_id());
      w.Key("query_key").String(trace->query_key());
      w.Key("spans");
      obs::AppendSpansJson(trace->spans(), &w);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

Result<std::string> RePagerService::PathJson(const std::string& query,
                                             int num_seeds,
                                             int year_cutoff) const {
  RPG_ASSIGN_OR_RETURN(serve::ServeResponse response,
                       engine_->Generate(query, num_seeds, year_cutoff));
  return RenderPathJson(query, response, repager_, titles_, years_,
                        /*debug=*/false, /*trace=*/nullptr);
}

HttpResponse RePagerService::ErrorResponse(const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error").String(status.ToString());
  w.EndObject();
  // Overload shed (batcher queue full) is the retryable case: 429 with
  // the batcher's measured drain time as the Retry-After hint (1 when
  // the status carries none). A request expired by the queue deadline
  // is 503 — the work was abandoned, not refused — with the same hint.
  if (status.IsUnavailable() || status.IsDeadlineExceeded()) {
    HttpResponse response{status.IsUnavailable() ? 429 : 503,
                          "application/json", w.str()};
    int retry_after = status.retry_after_seconds();
    response.headers["Retry-After"] =
        std::to_string(retry_after > 0 ? retry_after : 1);
    return response;
  }
  return {status.IsInvalidArgument() ? 400 : 404, "application/json",
          w.str()};
}

HttpResponse RePagerService::HandleReload(const HttpRequest& request) const {
  const std::string path(Trim(request.body));
  if (path.empty()) {
    return {400, "application/json",
            "{\"error\":\"reload body must be a snapshot path\"}"};
  }
  const uint64_t next_id = engine_->CurrentEpoch()->id() + 1;
  auto epoch_or = serve::LoadEpochFromSnapshot(path, next_id);
  if (!epoch_or.ok()) {
    // Fail-closed: nothing was swapped; the serving epoch is untouched.
    // Corrupt sections surface as InvalidArgument naming the layer
    // (snapshot format validation ladder) -> 400; a missing/unreadable
    // file -> 404; anything else is a server-side 500.
    const Status& status = epoch_or.status();
    JsonWriter w;
    w.BeginObject();
    w.Key("reloaded").Bool(false);
    w.Key("error").String(status.ToString());
    w.EndObject();
    int code = status.IsInvalidArgument() ? 400
               : (status.IsNotFound() || status.IsIoError()) ? 404
                                                             : 500;
    return {code, "application/json", w.str()};
  }
  serve::EpochHandle epoch = std::move(epoch_or).value();
  engine_->SwapEpoch(epoch);
  JsonWriter w;
  w.BeginObject();
  w.Key("reloaded").Bool(true);
  w.Key("epoch").UInt(epoch->id());
  w.Key("source").String(epoch->info().source);
  w.Key("num_papers").UInt(epoch->info().num_papers);
  w.Key("num_edges").UInt(epoch->info().num_edges);
  w.Key("load_seconds").Double(epoch->info().load_seconds);
  w.EndObject();
  return {200, "application/json", w.str()};
}

std::string RePagerService::StatsJson() const {
  std::string engine_json = engine_->StatsJson();
  if (server_ == nullptr) return engine_json;
  HttpServerStats http = server_->Stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("http").BeginObject();
  w.Key("open_connections").UInt(http.open_connections);
  w.Key("max_connections").UInt(http.max_connections);
  w.Key("connections_accepted").UInt(http.connections_accepted);
  w.Key("requests_handled").UInt(http.requests_handled);
  w.Key("responses_sent").UInt(http.responses_sent);
  w.Key("protocol_errors").UInt(http.protocol_errors);
  w.Key("connections_shed").UInt(http.connections_shed);
  w.Key("idle_closes").UInt(http.idle_closes);
  w.Key("timeout_closes").UInt(http.timeout_closes);
  w.Key("deadline_closes").UInt(http.deadline_closes);
  w.Key("per_ip_shed").UInt(http.per_ip_shed);
  w.EndObject();
  w.EndObject();
  // Splice the engine's own {"cache":...,"batcher":...,"metrics":...}
  // object after the http section; both are non-empty JSON objects.
  std::string merged = w.str();
  merged.back() = ',';
  merged.append(engine_json, 1, std::string::npos);
  return merged;
}

std::string RePagerService::MetricsText() const {
  std::string out = engine_->metrics().ToPrometheus("rpg");
  if (server_ == nullptr) return out;
  // The reactor's counters live in a plain struct, not the registry;
  // render them with the same exposition helpers under rpg_http_.
  HttpServerStats http = server_->Stats();
  obs::AppendGauge("rpg_http_open_connections",
                   static_cast<double>(http.open_connections), &out);
  obs::AppendGauge("rpg_http_max_connections",
                   static_cast<double>(http.max_connections), &out);
  obs::AppendCounter("rpg_http_connections_accepted",
                     http.connections_accepted, &out);
  obs::AppendCounter("rpg_http_requests_handled", http.requests_handled,
                     &out);
  obs::AppendCounter("rpg_http_responses_sent", http.responses_sent, &out);
  obs::AppendCounter("rpg_http_protocol_errors", http.protocol_errors, &out);
  obs::AppendCounter("rpg_http_connections_shed", http.connections_shed,
                     &out);
  obs::AppendCounter("rpg_http_idle_closes", http.idle_closes, &out);
  obs::AppendCounter("rpg_http_timeout_closes", http.timeout_closes, &out);
  obs::AppendCounter("rpg_http_deadline_closes", http.deadline_closes, &out);
  obs::AppendCounter("rpg_http_per_ip_shed", http.per_ip_shed, &out);
  return out;
}

void RePagerService::HandleAsync(const HttpRequest& request,
                                 HttpServer::Done done) const {
  if (request.method == "POST") {
    if (request.path == "/api/cache/clear") {
      size_t dropped = engine_->ClearCache();
      JsonWriter w;
      w.BeginObject();
      w.Key("cleared").Bool(true);
      w.Key("entries_dropped").UInt(dropped);
      w.EndObject();
      done({200, "application/json", w.str()});
      return;
    }
    if (request.path == "/api/admin/reload") {
      done(HandleReload(request));
      return;
    }
    done({request.path == "/api/path" || request.path == "/" ? 405 : 404,
          "text/plain",
          "POST only supported on /api/cache/clear and /api/admin/reload"});
    return;
  }
  if (request.method != "GET") {
    done({405, "text/plain", "only GET and POST are supported"});
    return;
  }
  if (request.path == "/" || request.path == "/index.html") {
    done({200, "text/html; charset=utf-8", RePagerIndexHtml()});
    return;
  }
  if (request.path == "/api/stats") {
    done({200, "application/json", StatsJson()});
    return;
  }
  if (request.path == "/metrics") {
    done({200, "text/plain; version=0.0.4; charset=utf-8", MetricsText()});
    return;
  }
  if (request.path == "/api/path") {
    auto q = request.query.find("q");
    if (q == request.query.end() || q->second.empty()) {
      done({400, "application/json",
            "{\"error\":\"missing query parameter q\"}"});
      return;
    }
    // Absent parameters mean pipeline defaults (0); present ones must
    // parse strictly and land in range, or the request is a 400 before
    // any engine state is touched.
    int num_seeds = 0, year = 0;
    if (auto it = request.query.find("seeds"); it != request.query.end()) {
      if (!ParseBoundedInt(it->second, kMinSeeds, kMaxSeeds, &num_seeds)) {
        done(BadParameter("seeds", it->second));
        return;
      }
    }
    if (auto it = request.query.find("year"); it != request.query.end()) {
      if (!ParseBoundedInt(it->second, kMinYear, kMaxYear, &year)) {
        done(BadParameter("year", it->second));
        return;
      }
    }
    bool debug = false;
    if (auto it = request.query.find("debug"); it != request.query.end()) {
      debug = it->second == "1" || it->second == "true";
    }
    // The compute handoff: cache hits complete inline (microseconds);
    // misses complete from the batcher's dispatcher thread. Either way
    // the calling poller thread returns to its event loop immediately.
    // The continuation deliberately does NOT capture `this`: a compute
    // finishing after server.Stop() may outlive the service object, so
    // it may only touch workbench-owned substrates (which outlive the
    // engine) and the post-Stop-safe `done`. The trace shared_ptr rides
    // along; by completion time every serving-layer span is in it.
    engine_->GenerateAsync(
        q->second, num_seeds, year, request.trace,
        [query = q->second, repager = repager_, titles = titles_,
         years = years_, debug, trace = request.trace,
         done = std::move(done)](Result<serve::ServeResponse> response) {
          if (!response.ok()) {
            done(ErrorResponse(response.status()));
            return;
          }
          done({200, "application/json",
                RenderPathJson(query, response.value(), repager, titles,
                               years, debug, trace.get())});
        });
    return;
  }
  done({404, "text/plain", "not found"});
}

HttpResponse RePagerService::Handle(const HttpRequest& request) const {
  // Every route except a cold /api/path completes inline; a cold
  // /api/path blocks here on the compute, which is exactly what the
  // synchronous callers (tests, self-checks) want.
  std::promise<HttpResponse> promise;
  std::future<HttpResponse> future = promise.get_future();
  HandleAsync(request, [&promise](HttpResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

const char* RePagerIndexHtml() {
  return R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>RePaGer - Reading Path Generation</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 70em; }
 #q { width: 30em; padding: .4em; }
 .nav li.seed { color: #444; }
 .nav li.added { color: #1a7f37; font-weight: bold; }
 #meta { color: #666; margin: .6em 0; }
</style></head>
<body>
<h1>RePaGer</h1>
<p>Enter a research topic to generate a reading path (papers marked in
green were surfaced by citation analysis, not by keyword search).</p>
<input id="q" placeholder="e.g. pretrained language model">
<button onclick="go()">Generate</button>
<div id="meta"></div>
<ol id="list" class="nav"></ol>
<script>
async function go() {
  const q = document.getElementById('q').value;
  if (!q) return;
  const r = await fetch('/api/path?q=' + encodeURIComponent(q));
  const data = await r.json();
  const meta = document.getElementById('meta');
  const list = document.getElementById('list');
  list.innerHTML = '';
  if (data.error) { meta.textContent = data.error; return; }
  meta.textContent = data.nodes.length + ' papers, sub-graph ' +
      data.subgraph_nodes + ' nodes / ' + data.subgraph_edges +
      ' edges, ' + data.seconds.toFixed(2) + 's' +
      (data.cache_hit ? ' (cached)' : '');
  const byId = {};
  data.nodes.forEach(n => byId[n.id] = n);
  data.reading_order.forEach(id => {
    const n = byId[id];
    const li = document.createElement('li');
    li.className = n.from_engine ? 'seed' : 'added';
    li.textContent = n.title + ' (' + n.year + ')';
    list.appendChild(li);
  });
}
</script>
</body></html>
)HTML";
}

}  // namespace rpg::ui
