#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON artifacts.

Compares the key metrics of freshly produced BENCH_table4.json /
BENCH_serve.json against the checked-in baselines under
bench/baselines/, with noise-aware thresholds: bench numbers on shared
CI machines jitter by tens of percent, so only changes beyond 2x
(lower-is-better metrics growing past 2x baseline, higher-is-better
metrics falling below 0.5x) fail the gate. Anything subtler is reported
but does not gate — a real perf story needs a human and a quiet
machine.

Usage:
  scripts/check_bench_regression.py [--build-dir build]
      [--baseline-dir bench/baselines] [--factor 2.0]
  scripts/check_bench_regression.py --self-test

Exit status: 0 when every present metric is within bounds (missing
bench files are skipped with a note: the gate only judges what ran),
1 on any regression beyond the factor, 2 on usage/IO errors.

The metric list is intentionally short and headline-grade: pipeline
solve time, serving throughput/latency, and the cache speedup. Adding
every counter would only manufacture flakes.
"""

import argparse
import json
import os
import sys

# (json_path, direction) — direction "lower" means smaller is better.
TABLE4_METRICS = [
    ("avg_total_seconds", "lower"),
    ("closure_comparison[0].total_speedup", "higher"),
]
SERVE_METRICS = [
    ("sweep[0].throughput_rps", "higher"),
    ("sweep[0].overall.p50_ms", "lower"),
    ("sweep[0].cache_median_speedup", "higher"),
    ("sweep[-1].throughput_rps", "higher"),
    ("sweep[-1].overall.p99_ms", "lower"),
]
SCALE_METRICS = [
    ("sweep[-1].snapshot_load_seconds", "lower"),
    ("sweep[-1].load_speedup", "higher"),
    ("sweep[-1].query_latency.p50_ms", "lower"),
]


def resolve(doc, path):
    """Walks 'a.b[0].c' through nested dicts/lists; None when absent."""
    node = doc
    for part in path.split("."):
        index = None
        if "[" in part:
            part, bracket = part.split("[", 1)
            index = int(bracket.rstrip("]"))
        if part:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        if index is not None:
            if not isinstance(node, list) or not (-len(node) <= index < len(node)):
                return None
            node = node[index]
    return node


def check_file(name, current_doc, baseline_doc, metrics, factor, report):
    failures = 0
    for path, direction in metrics:
        base = resolve(baseline_doc, path)
        cur = resolve(current_doc, path)
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
            report.append(f"  skip  {name}:{path} (missing in baseline or current)")
            continue
        if base <= 0:
            report.append(f"  skip  {name}:{path} (non-positive baseline {base})")
            continue
        ratio = cur / base
        if direction == "lower":
            bad = ratio > factor
            arrow = "slower" if ratio > 1 else "faster"
        else:
            bad = ratio < 1.0 / factor
            arrow = "worse" if ratio < 1 else "better"
        verdict = "FAIL" if bad else "ok"
        report.append(
            f"  {verdict:4}  {name}:{path}  baseline={base:.6g} "
            f"current={cur:.6g}  ({ratio:.2f}x, {arrow})"
        )
        if bad:
            failures += 1
    return failures


def run_gate(build_dir, baseline_dir, factor):
    pairs = [
        ("BENCH_table4.json", TABLE4_METRICS),
        ("BENCH_serve.json", SERVE_METRICS),
        ("BENCH_scale.json", SCALE_METRICS),
    ]
    report = []
    failures = 0
    compared = 0
    for filename, metrics in pairs:
        current_path = os.path.join(build_dir, filename)
        baseline_path = os.path.join(baseline_dir, filename)
        if not os.path.exists(current_path):
            report.append(f"  skip  {filename} (no current run at {current_path})")
            continue
        if not os.path.exists(baseline_path):
            report.append(f"  skip  {filename} (no baseline at {baseline_path})")
            continue
        with open(current_path) as f:
            current_doc = json.load(f)
        with open(baseline_path) as f:
            baseline_doc = json.load(f)
        compared += 1
        failures += check_file(filename, current_doc, baseline_doc, metrics,
                               factor, report)
    print(f"bench regression gate (fail beyond {factor}x):")
    for line in report:
        print(line)
    if compared == 0:
        print("nothing to compare: run the benches first "
              "(./bench_table4_runtime, ./bench_serve_load, ./bench_scale)")
    if failures:
        print(f"FAILED: {failures} metric(s) regressed beyond {factor}x")
        return 1
    print("passed")
    return 0


def self_test():
    """The gate must flag a synthetic 3x regression and pass identity."""
    baseline = {
        "avg_total_seconds": 0.010,
        "closure_comparison": [{"total_speedup": 12.0}],
    }
    regressed = {
        "avg_total_seconds": 0.030,  # 3x slower: must fail
        "closure_comparison": [{"total_speedup": 12.0}],
    }
    report = []
    if check_file("fixture", baseline, baseline, TABLE4_METRICS, 2.0, report) != 0:
        print("self-test FAILED: identity comparison flagged a regression")
        return 1
    if check_file("fixture", regressed, baseline, TABLE4_METRICS, 2.0, report) == 0:
        print("self-test FAILED: 3x regression not flagged")
        return 1
    # Higher-is-better direction: a collapsed speedup must fail too.
    collapsed = {
        "avg_total_seconds": 0.010,
        "closure_comparison": [{"total_speedup": 3.0}],  # 4x worse
    }
    if check_file("fixture", collapsed, baseline, TABLE4_METRICS, 2.0, report) == 0:
        print("self-test FAILED: collapsed speedup not flagged")
        return 1
    # Noise inside the band must NOT fail (1.5x slower < 2x threshold).
    noisy = {
        "avg_total_seconds": 0.015,
        "closure_comparison": [{"total_speedup": 8.5}],
    }
    if check_file("fixture", noisy, baseline, TABLE4_METRICS, 2.0, report) != 0:
        print("self-test FAILED: in-band noise flagged as regression")
        return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding the checked-in baselines")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="regression threshold (default 2.0)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches a synthetic 3x "
                             "regression, then exit")
    args = parser.parse_args()
    if args.factor <= 1.0:
        print("--factor must be > 1", file=sys.stderr)
        return 2
    if args.self_test:
        return self_test()
    return run_gate(args.build_dir, args.baseline_dir, args.factor)


if __name__ == "__main__":
    sys.exit(main())
