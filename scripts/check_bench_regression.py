#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON artifacts.

Compares the key metrics of freshly produced BENCH_table4.json /
BENCH_serve.json against the checked-in baselines under
bench/baselines/, with noise-aware thresholds: bench numbers on shared
CI machines jitter by tens of percent, so only changes beyond 2x
(lower-is-better metrics growing past 2x baseline, higher-is-better
metrics falling below 0.5x) fail the gate. Anything subtler is reported
but does not gate — a real perf story needs a human and a quiet
machine.

Usage:
  scripts/check_bench_regression.py [--build-dir build]
      [--baseline-dir bench/baselines] [--factor 2.0]
  scripts/check_bench_regression.py --self-test

Exit status: 0 when every present metric is within bounds (missing
bench files are skipped with a note: the gate only judges what ran),
1 on any regression beyond the factor, 2 on usage/IO errors.

The metric list is intentionally short and headline-grade: pipeline
solve time, serving throughput/latency, and the cache speedup. Adding
every counter would only manufacture flakes.

Besides the baseline ratios, a few *absolute* limits gate invariants of
the fresh run alone (no baseline needed): the request-tracing overhead
must stay under 2% (tracing.overhead_ratio <= 1.02) and the per-stage
spans must attribute >= 90% of pipeline wall time
(stages.attributed_fraction >= 0.9). See docs/observability.md.
"""

import argparse
import json
import os
import sys

# (json_path, direction) — direction "lower" means smaller is better.
TABLE4_METRICS = [
    ("avg_total_seconds", "lower"),
    ("closure_comparison[0].total_speedup", "higher"),
]
# Absolute limits on the fresh run, judged without a baseline ratio:
# (json_path, kind, bound[, guard_path]). "max" fails when current >
# bound, "min" when current < bound; a falsy guard_path value skips the
# check. These gate invariants rather than trajectories: tracing must
# stay cheap relative to the untraced pipeline, and the stage spans must
# explain >= 90% of the wall-clock solve time (docs/observability.md).
# Both are meaningless when the tracing layer is compiled out, hence the
# guard.
#
# The tracing bound moved 1.02 -> 1.05 when the intersection-kernel /
# d-ary-heap rewrite made the pipeline ~2.3x faster: the tracing clock
# reads cost the same absolute nanoseconds, so their RELATIVE overhead
# (and the run-to-run noise of the ratio itself) grew with the shrinking
# denominator; measured ratios now jitter ~0.95-1.04 on an idle machine.
#
# stages.edge_cost_ms is the ISSUE-9 optimization target pinned at its
# post-rewrite level: the capped common-neighbor counting that used to
# take ~13.4ms of the 20-query sample now measures ~4.3-5.7ms; 6.7 (2x
# the old baseline's headroom, ~17% above the worst observed run) fails
# the gate if the kernels or the ConScratch bitmap path fall off.
TABLE4_LIMITS = [
    ("tracing.overhead_ratio", "max", 1.05, "tracing.compiled_in"),
    ("stages.attributed_fraction", "min", 0.90, "tracing.compiled_in"),
    ("stages.edge_cost_ms", "max", 6.7, "tracing.compiled_in"),
]
SERVE_METRICS = [
    ("sweep[0].throughput_rps", "higher"),
    ("sweep[0].overall.p50_ms", "lower"),
    ("sweep[0].cache_median_speedup", "higher"),
    ("sweep[-1].throughput_rps", "higher"),
    ("sweep[-1].overall.p99_ms", "lower"),
]
SCALE_METRICS = [
    ("sweep[-1].snapshot_load_seconds", "lower"),
    ("sweep[-1].load_speedup", "higher"),
    ("sweep[-1].query_latency.p50_ms", "lower"),
]
INTERSECT_METRICS = [
    ("headline.adaptive_balanced_ns", "lower"),
    ("headline.adaptive_skewed_ns", "lower"),
]
# The adaptive dispatcher must never lose badly to the plain two-pointer
# merge anywhere on the size-ratio grid. Dimensionless (both sides are
# measured in the same run on the same machine), so unlike the ns gates
# it holds absolutely on any hardware; measured worst case ~1.1x, and
# 1.5 fails if dispatch ever routes a regime to the wrong kernel.
INTERSECT_LIMITS = [
    ("headline.adaptive_worst_ratio_vs_merge", "max", 1.5),
]
CHURN_METRICS = [
    ("flip_p99_ms", "lower"),
    ("churn.throughput_rps", "higher"),
    ("churn.cache_hit_rate", "higher"),
]
# Invariants of the churn run itself, no baseline needed: an epoch flip
# must be invisible to live traffic (zero request errors, in either
# phase), the churn phase must actually have flipped, and the stale
# stamps must drain lazily (rate > 0 proves no global clear hid them;
# the ceiling proves eviction stays bounded by the request stream — at
# most one stale entry can be evicted per lookup).
CHURN_LIMITS = [
    ("errors", "max", 0),
    ("churn.epoch_flips", "min", 1),
    ("stale_eviction_rate", "min", 1e-9),
    ("stale_eviction_rate", "max", 1.0),
]


def resolve(doc, path):
    """Walks 'a.b[0].c' through nested dicts/lists; None when absent."""
    node = doc
    for part in path.split("."):
        index = None
        if "[" in part:
            part, bracket = part.split("[", 1)
            index = int(bracket.rstrip("]"))
        if part:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        if index is not None:
            if not isinstance(node, list) or not (-len(node) <= index < len(node)):
                return None
            node = node[index]
    return node


def check_file(name, current_doc, baseline_doc, metrics, factor, report):
    failures = 0
    for path, direction in metrics:
        base = resolve(baseline_doc, path)
        cur = resolve(current_doc, path)
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
            report.append(f"  skip  {name}:{path} (missing in baseline or current)")
            continue
        if base <= 0:
            report.append(f"  skip  {name}:{path} (non-positive baseline {base})")
            continue
        ratio = cur / base
        if direction == "lower":
            bad = ratio > factor
            arrow = "slower" if ratio > 1 else "faster"
        else:
            bad = ratio < 1.0 / factor
            arrow = "worse" if ratio < 1 else "better"
        verdict = "FAIL" if bad else "ok"
        report.append(
            f"  {verdict:4}  {name}:{path}  baseline={base:.6g} "
            f"current={cur:.6g}  ({ratio:.2f}x, {arrow})"
        )
        if bad:
            failures += 1
    return failures


def check_limits(name, current_doc, limits, report):
    """Absolute bounds on the fresh run; no baseline involved."""
    failures = 0
    for entry in limits:
        path, kind, bound = entry[:3]
        guard = entry[3] if len(entry) > 3 else None
        if guard is not None and not resolve(current_doc, guard):
            report.append(f"  skip  {name}:{path} (guard {guard} is off)")
            continue
        cur = resolve(current_doc, path)
        if not isinstance(cur, (int, float)):
            report.append(f"  skip  {name}:{path} (missing in current)")
            continue
        bad = cur > bound if kind == "max" else cur < bound
        verdict = "FAIL" if bad else "ok"
        report.append(f"  {verdict:4}  {name}:{path}  current={cur:.6g}  "
                      f"(limit: {kind} {bound:g})")
        if bad:
            failures += 1
    return failures


def run_gate(build_dir, baseline_dir, factor):
    pairs = [
        ("BENCH_table4.json", TABLE4_METRICS, TABLE4_LIMITS),
        ("BENCH_serve.json", SERVE_METRICS, []),
        ("BENCH_scale.json", SCALE_METRICS, []),
        ("BENCH_intersect.json", INTERSECT_METRICS, INTERSECT_LIMITS),
        ("BENCH_churn.json", CHURN_METRICS, CHURN_LIMITS),
    ]
    report = []
    failures = 0
    compared = 0
    for filename, metrics, limits in pairs:
        current_path = os.path.join(build_dir, filename)
        baseline_path = os.path.join(baseline_dir, filename)
        if not os.path.exists(current_path):
            report.append(f"  skip  {filename} (no current run at {current_path})")
            continue
        with open(current_path) as f:
            current_doc = json.load(f)
        # Absolute limits only need the fresh run, so they gate even when
        # a baseline has not been checked in yet.
        failures += check_limits(filename, current_doc, limits, report)
        if not os.path.exists(baseline_path):
            report.append(f"  skip  {filename} (no baseline at {baseline_path})")
            continue
        with open(baseline_path) as f:
            baseline_doc = json.load(f)
        compared += 1
        failures += check_file(filename, current_doc, baseline_doc, metrics,
                               factor, report)
    print(f"bench regression gate (fail beyond {factor}x):")
    for line in report:
        print(line)
    if compared == 0:
        print("nothing to compare: run the benches first "
              "(./bench_table4_runtime, ./bench_serve_load, ./bench_scale, "
              "./bench_intersect, ./bench_churn)")
    if failures:
        print(f"FAILED: {failures} metric(s) regressed beyond {factor}x")
        return 1
    print("passed")
    return 0


def self_test():
    """The gate must flag a synthetic 3x regression and pass identity."""
    baseline = {
        "avg_total_seconds": 0.010,
        "closure_comparison": [{"total_speedup": 12.0}],
    }
    regressed = {
        "avg_total_seconds": 0.030,  # 3x slower: must fail
        "closure_comparison": [{"total_speedup": 12.0}],
    }
    report = []
    if check_file("fixture", baseline, baseline, TABLE4_METRICS, 2.0, report) != 0:
        print("self-test FAILED: identity comparison flagged a regression")
        return 1
    if check_file("fixture", regressed, baseline, TABLE4_METRICS, 2.0, report) == 0:
        print("self-test FAILED: 3x regression not flagged")
        return 1
    # Higher-is-better direction: a collapsed speedup must fail too.
    collapsed = {
        "avg_total_seconds": 0.010,
        "closure_comparison": [{"total_speedup": 3.0}],  # 4x worse
    }
    if check_file("fixture", collapsed, baseline, TABLE4_METRICS, 2.0, report) == 0:
        print("self-test FAILED: collapsed speedup not flagged")
        return 1
    # Noise inside the band must NOT fail (1.5x slower < 2x threshold).
    noisy = {
        "avg_total_seconds": 0.015,
        "closure_comparison": [{"total_speedup": 8.5}],
    }
    if check_file("fixture", noisy, baseline, TABLE4_METRICS, 2.0, report) != 0:
        print("self-test FAILED: in-band noise flagged as regression")
        return 1
    # Absolute limits: the tracing-overhead ceiling and the attribution
    # floor must both trip, a healthy run must pass, and a compiled-out
    # tracing build must be skipped rather than failed.
    healthy = {
        "tracing": {"compiled_in": True, "overhead_ratio": 1.005},
        "stages": {"attributed_fraction": 0.97, "edge_cost_ms": 4.5},
    }
    if check_limits("fixture", healthy, TABLE4_LIMITS, report) != 0:
        print("self-test FAILED: in-bound limits flagged")
        return 1
    over_budget = {
        "tracing": {"compiled_in": True, "overhead_ratio": 1.10},
        "stages": {"attributed_fraction": 0.97, "edge_cost_ms": 4.5},
    }
    if check_limits("fixture", over_budget, TABLE4_LIMITS, report) != 1:
        print("self-test FAILED: 10% tracing overhead not flagged")
        return 1
    unattributed = {
        "tracing": {"compiled_in": True, "overhead_ratio": 1.0},
        "stages": {"attributed_fraction": 0.5, "edge_cost_ms": 4.5},
    }
    if check_limits("fixture", unattributed, TABLE4_LIMITS, report) != 1:
        print("self-test FAILED: 50% stage attribution not flagged")
        return 1
    slow_edge_cost = {
        "tracing": {"compiled_in": True, "overhead_ratio": 1.0},
        "stages": {"attributed_fraction": 0.97, "edge_cost_ms": 13.4},
    }
    if check_limits("fixture", slow_edge_cost, TABLE4_LIMITS, report) != 1:
        print("self-test FAILED: pre-optimization edge_cost_ms not flagged")
        return 1
    compiled_out = {
        "tracing": {"compiled_in": False, "overhead_ratio": 1.0},
        "stages": {"attributed_fraction": 0.0, "edge_cost_ms": 99.0},
    }
    if check_limits("fixture", compiled_out, TABLE4_LIMITS, report) != 0:
        print("self-test FAILED: compiled-out tracing should skip limits")
        return 1
    # Intersect-kernel gate: a dispatcher that loses 2x to the plain
    # merge somewhere on the grid must fail its dimensionless limit.
    sane_dispatch = {"headline": {"adaptive_worst_ratio_vs_merge": 1.1}}
    bad_dispatch = {"headline": {"adaptive_worst_ratio_vs_merge": 2.0}}
    if check_limits("fixture", sane_dispatch, INTERSECT_LIMITS, report) != 0:
        print("self-test FAILED: sane kernel dispatch flagged")
        return 1
    if check_limits("fixture", bad_dispatch, INTERSECT_LIMITS, report) != 1:
        print("self-test FAILED: 2x kernel-dispatch loss not flagged")
        return 1
    # Churn gate: a flip that errors live requests, a churn phase that
    # never flipped, and a globally-cleared cache (stale rate 0) must
    # each fail; a healthy churn run must pass.
    healthy_churn = {
        "errors": 0,
        "stale_eviction_rate": 0.2,
        "churn": {"epoch_flips": 30},
    }
    if check_limits("fixture", healthy_churn, CHURN_LIMITS, report) != 0:
        print("self-test FAILED: healthy churn run flagged")
        return 1
    erroring_churn = {
        "errors": 3,
        "stale_eviction_rate": 0.2,
        "churn": {"epoch_flips": 30},
    }
    if check_limits("fixture", erroring_churn, CHURN_LIMITS, report) != 1:
        print("self-test FAILED: request errors under churn not flagged")
        return 1
    cleared_cache = {
        "errors": 0,
        "stale_eviction_rate": 0.0,
        "churn": {"epoch_flips": 30},
    }
    if check_limits("fixture", cleared_cache, CHURN_LIMITS, report) != 1:
        print("self-test FAILED: zero stale evictions not flagged")
        return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding the checked-in baselines")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="regression threshold (default 2.0)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches a synthetic 3x "
                             "regression, then exit")
    args = parser.parse_args()
    if args.factor <= 1.0:
        print("--factor must be > 1", file=sys.stderr)
        return 2
    if args.self_test:
        return self_test()
    return run_gate(args.build_dir, args.baseline_dir, args.factor)


if __name__ == "__main__":
    sys.exit(main())
