#!/usr/bin/env python3
"""Checks that documentation references point at things that exist.

Scans the backtick-quoted tokens in README.md and docs/*.md (including
docs/architecture.md, whose module map names every src/ directory) and
fails (exit 1) when one references:

  - a missing file or directory (tokens starting with src/, tests/,
    bench/, docs/, examples/, scripts/; brace groups like repager.{h,cc}
    are expanded),
  - an unknown bench binary (`bench_*` must have bench/<name>.cpp),
  - an unknown test binary (`rpg_<dir>_test` must have tests/<dir>/),
  - an unknown CMake target in a `./build/<name>` invocation (the target
    set is derived from bench/*.cpp and examples/*.cpp stems, tests/
    directories, and the static targets `rpg` / `docs_check`).

Wired into the tier-1 flow as the `docs_check` ctest and the
`docs_check` build target, so docs rot is caught the same way a failing
unit test is.

Run from the repository root: python3 scripts/check_docs.py
"""

import itertools
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md"] + sorted(
    str(p.relative_to(ROOT)) for p in (ROOT / "docs").glob("*.md")
)

# Backticked tokens that look like repo paths must exist on disk.
PATH_PREFIXES = ("src/", "tests/", "bench/", "docs/", "examples/", "scripts/")
PATH_RE = re.compile(r"^[A-Za-z0-9_.{},/-]+$")


def known_cmake_targets():
    """Every binary/library target the top-level CMakeLists generates."""
    targets = {"rpg", "docs_check"}
    for src in (ROOT / "bench").glob("*.cpp"):
        targets.add(src.stem)
    for src in (ROOT / "examples").glob("*.cpp"):
        targets.add(src.stem)
    for test_dir in (ROOT / "tests").iterdir():
        if test_dir.is_dir():
            targets.add(f"rpg_{test_dir.name}_test")
    return targets


TARGETS = known_cmake_targets()


def expand_braces(token: str):
    """repager.{h,cc} -> [repager.h, repager.cc]; nested braces unsupported."""
    m = re.search(r"\{([^{}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[: m.start()], token[m.end():]
    return list(
        itertools.chain.from_iterable(
            expand_braces(head + alt + tail) for alt in m.group(1).split(",")
        )
    )


def check_token(token: str):
    """Returns a list of problems for one backticked token."""
    problems = []
    if token.startswith(PATH_PREFIXES) and PATH_RE.match(token):
        for path in expand_braces(token):
            target = ROOT / path.rstrip("/")
            if not target.exists():
                problems.append(f"path `{token}` -> missing {path}")
    elif re.fullmatch(r"bench_[a-z0-9_]+", token):
        if not (ROOT / "bench" / f"{token}.cpp").exists():
            problems.append(f"bench target `{token}` has no bench/{token}.cpp")
    elif re.fullmatch(r"rpg_([a-z0-9]+)_test", token):
        suite = re.fullmatch(r"rpg_([a-z0-9]+)_test", token).group(1)
        if not (ROOT / "tests" / suite).is_dir():
            problems.append(f"test binary `{token}` has no tests/{suite}/")
    else:
        # `./build/<name> ...` invocations must name a real CMake target.
        m = re.match(r"\./build/([A-Za-z0-9_]+)", token)
        if m and m.group(1) not in TARGETS:
            problems.append(
                f"`{token}` names unknown CMake target {m.group(1)}")
    return problems


def main() -> int:
    failures = []
    for doc in DOC_FILES:
        doc_path = ROOT / doc
        if not doc_path.exists():
            failures.append(f"{doc}: file missing")
            continue
        text = doc_path.read_text(encoding="utf-8")
        # Strip fenced code blocks (commands there may reference build
        # outputs that only exist after a build), preserving line numbers.
        text = re.sub(
            r"```.*?```", lambda m: "\n" * m.group(0).count("\n"), text,
            flags=re.S)
        for line_no, line in enumerate(text.splitlines(), 1):
            for token in re.findall(r"`([^`\n]+)`", line):
                for problem in check_token(token.strip()):
                    failures.append(f"{doc}:{line_no}: {problem}")
    if failures:
        print("docs_check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"docs_check OK ({', '.join(DOC_FILES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
