#!/usr/bin/env bash
# Builds and runs the serving-layer load bench (bench/bench_serve_load.cpp),
# leaving BENCH_serve.json in the build directory.
#
# Usage: scripts/run_serve_bench.sh [build_dir]
#   Scale knobs are environment variables, forwarded to the bench:
#     RPG_SERVE_CLIENT_SWEEP (e.g. "4,64,256"), RPG_SERVE_CLIENTS
#     (single point), RPG_SERVE_REQUESTS, RPG_SERVE_QUERIES,
#     RPG_SERVE_ZIPF_S, RPG_SERVE_THREADS, RPG_SERVE_POLLERS
#
# Example (bigger sweep):
#   RPG_SERVE_CLIENT_SWEEP=8,128,512 RPG_SERVE_REQUESTS=100 \
#     scripts/run_serve_bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DRPG_BUILD_BENCHES=ON > /dev/null
cmake --build "$BUILD_DIR" -j -t bench_serve_load

(cd "$BUILD_DIR" && ./bench_serve_load)
echo "results: $BUILD_DIR/BENCH_serve.json"
