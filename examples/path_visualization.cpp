// Path visualization: generate reading paths for several queries and
// export them as Graphviz DOT + JSON files (the artifacts the RePaGer web
// UI of §V renders). Also demonstrates the ablation switches.
//
// Usage: path_visualization [output_dir]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "core/repager.h"
#include "eval/workbench.h"

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  if (!os) return false;
  os << content;
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpg;
  std::string out_dir = argc > 1 ? argv[1] : "paths_out";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  auto wb_or = eval::Workbench::Create();
  if (!wb_or.ok()) {
    std::fprintf(stderr, "workbench: %s\n", wb_or.status().ToString().c_str());
    return 1;
  }
  const eval::Workbench& wb = *wb_or.value();

  // Three recent, well-connected queries from different surveys.
  std::vector<size_t> picks;
  for (size_t candidate : wb.bank().HighScoreSubset(100)) {
    if (wb.bank().Get(candidate).year >= 2012) picks.push_back(candidate);
    if (picks.size() == 3) break;
  }
  if (picks.empty()) picks = wb.bank().HighScoreSubset(3);

  int file_index = 0;
  for (size_t index : picks) {
    const auto& entry = wb.bank().Get(index);
    core::RePagerOptions options;
    options.year_cutoff = entry.year;
    options.exclude = {entry.paper};
    auto result_or = wb.repager().Generate(entry.query, options);
    if (!result_or.ok()) {
      std::fprintf(stderr, "skip \"%s\": %s\n", entry.query.c_str(),
                   result_or.status().ToString().c_str());
      continue;
    }
    const core::RePagerResult& result = result_or.value();
    std::unordered_set<graph::PaperId> seeds(result.initial_seeds.begin(),
                                             result.initial_seeds.end());
    std::unordered_set<graph::PaperId> added;
    for (graph::PaperId p : result.path.nodes()) {
      if (!seeds.contains(p)) added.insert(p);
    }
    std::string base = out_dir + "/path_" + std::to_string(file_index++);
    bool ok = WriteFile(base + ".dot",
                        result.path.ToDot(wb.paper_info(), added)) &&
              WriteFile(base + ".json", result.path.ToJson(wb.paper_info()));
    std::printf("%s query \"%s\": %zu papers, %zu edges -> %s.{dot,json}\n",
                ok ? "ok " : "FAIL", entry.query.c_str(), result.path.size(),
                result.path.edges().size(), base.c_str());

    // The same query without the Steiner step (NEWST-C ablation): a flat
    // list, no path — this is what "what to read" without "how to read"
    // looks like.
    core::RePagerOptions flat = options;
    flat.run_steiner = false;
    auto flat_result = wb.repager().Generate(entry.query, flat);
    if (flat_result.ok()) {
      std::printf("     without Steiner step: %zu ranked papers, path size "
                  "%zu (no reading order)\n",
                  flat_result->ranked.size(), flat_result->path.size());
    }
  }
  std::printf("\nrender with: dot -Tsvg %s/path_0.dot -o path_0.svg\n",
              out_dir.c_str());
  return 0;
}
