// SurveyBank construction walk-through (§III / Fig. 3): generate the raw
// corpus, run the collection -> dedup -> filter funnel, and print dataset
// statistics plus a few sample benchmark entries with their key phrases
// and multi-level ground truth.
//
// Usage: build_surveybank [num_surveys]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "surveybank/builder.h"
#include "surveybank/stats.h"
#include "synth/corpus_generator.h"

int main(int argc, char** argv) {
  using namespace rpg;

  synth::CorpusOptions corpus_options;
  if (argc > 1) {
    corpus_options.num_surveys = std::atoi(argv[1]);
    if (corpus_options.num_surveys <= 0) {
      std::fprintf(stderr, "num_surveys must be positive\n");
      return 1;
    }
  }
  auto corpus_or = synth::GenerateCorpus(corpus_options);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "corpus: %s\n",
                 corpus_or.status().ToString().c_str());
    return 1;
  }
  const synth::Corpus& corpus = *corpus_or.value();
  std::printf("corpus: %zu papers, %zu citation edges, %zu raw surveys\n\n",
              corpus.num_papers(), corpus.citations.num_edges(),
              corpus.surveys.size());

  auto bank_or = surveybank::BuildSurveyBank(corpus);
  if (!bank_or.ok()) {
    std::fprintf(stderr, "builder: %s\n",
                 bank_or.status().ToString().c_str());
    return 1;
  }
  const surveybank::SurveyBank& bank = bank_or.value();
  const auto& funnel = bank.build_stats();
  std::printf("construction funnel (Fig. 3):\n");
  std::printf("  initial collection      %zu\n", funnel.initial_collection);
  std::printf("  after deduplication     %zu\n", funnel.after_deduplication);
  std::printf("  - unparseable PDFs      %zu\n", funnel.dropped_unparseable);
  std::printf("  - page-range outliers   %zu\n", funnel.dropped_page_range);
  std::printf("  final SurveyBank        %zu\n\n", funnel.final_dataset);

  surveybank::SurveyBankStats stats = ComputeStats(bank, corpus);
  std::printf("avg references per survey: %.1f\n", stats.avg_references);
  std::printf("never cited: %.1f%%   cited > 500x: %.1f%%\n\n",
              100.0 * stats.fraction_never_cited,
              100.0 * stats.fraction_cited_over_500);
  std::printf("%s\n", FormatTableOne(stats).c_str());

  std::printf("sample benchmark entries:\n");
  for (size_t i = 0; i < bank.size() && i < 5; ++i) {
    const auto& e = bank.Get(i);
    std::printf("  [%zu] \"%s\" (%d)\n", i, e.title.c_str(), e.year);
    std::printf("       query: \"%s\"\n", e.query.c_str());
    std::printf("       labels: |L1|=%zu |L2|=%zu |L3|=%zu  score=%.2f\n",
                e.label_l1.size(), e.label_l2.size(), e.label_l3.size(),
                e.score);
  }
  return 0;
}
