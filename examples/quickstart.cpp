// Quickstart: generate a corpus, build the substrates, and produce a
// reading path for the key phrases of one SurveyBank survey — the
// end-to-end flow a RePaGer user runs.
//
// Usage: quickstart [query]
//   With no argument, the query of the highest-scoring survey is used.

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/repager.h"
#include "eval/workbench.h"

int main(int argc, char** argv) {
  using namespace rpg;

  // 1. Build the workbench: synthetic corpus (S2ORC substitute),
  //    SurveyBank, search engines, PageRank/venue weights, RePaGer.
  eval::WorkbenchOptions options;
  options.corpus.seed = 42;
  auto wb_or = eval::Workbench::Create(options);
  if (!wb_or.ok()) {
    std::fprintf(stderr, "workbench: %s\n",
                 wb_or.status().ToString().c_str());
    return 1;
  }
  const eval::Workbench& wb = *wb_or.value();
  std::printf("corpus: %zu papers, %zu citation edges, %zu surveys\n",
              wb.corpus().num_papers(), wb.corpus().citations.num_edges(),
              wb.corpus().surveys.size());
  std::printf("surveybank: %zu benchmark entries\n\n", wb.bank().size());

  // 2. Pick a query: user-provided, or the top survey's key phrases.
  std::string query;
  core::RePagerOptions repager_options;
  if (argc > 1) {
    query = argv[1];
  } else {
    size_t best = wb.bank().HighScoreSubset(1).front();
    for (size_t candidate : wb.bank().HighScoreSubset(50)) {
      if (wb.bank().Get(candidate).year >= 2015) {
        best = candidate;
        break;
      }
    }
    const auto& entry = wb.bank().Get(best);
    query = entry.query;
    repager_options.year_cutoff = entry.year;
    repager_options.exclude = {entry.paper};
    std::printf("query from survey \"%s\" (%d)\n", entry.title.c_str(),
                entry.year);
  }
  std::printf("query: \"%s\"\n\n", query.c_str());

  // 3. Generate the reading path.
  auto result_or = wb.repager().Generate(query, repager_options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "repager: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const core::RePagerResult& result = result_or.value();
  std::printf("initial seeds: %zu, terminals after reallocation: %zu\n",
              result.initial_seeds.size(), result.terminals.size());
  std::printf("sub-citation graph: %zu nodes, %zu edges\n",
              result.subgraph_nodes, result.subgraph_edges);
  std::printf("reading path: %zu papers, %zu reading-order edges\n",
              result.path.size(), result.path.edges().size());
  std::printf("steiner time: %.3fs, total: %.3fs\n\n",
              result.steiner_seconds, result.total_seconds);

  // 4. Render it. Papers marked '*' were NOT in the engine's top results
  //    — the prerequisites RePaGer adds (Fig. 9's green nodes).
  std::unordered_set<graph::PaperId> seeds(result.initial_seeds.begin(),
                                           result.initial_seeds.end());
  std::unordered_set<graph::PaperId> added;
  for (graph::PaperId p : result.path.nodes()) {
    if (!seeds.contains(p)) added.insert(p);
  }
  std::printf("reading path (prerequisites RePaGer added are marked *):\n%s\n",
              result.path.ToAscii(wb.paper_info(), added).c_str());

  // 5. The flattened navigation-bar order (first 10).
  std::printf("flattened reading order (first 10):\n");
  auto order = result.path.FlattenedOrder(wb.years());
  for (size_t i = 0; i < order.size() && i < 10; ++i) {
    std::printf("  %2zu. [%d] %s\n", i + 1, wb.years()[order[i]],
                wb.titles()[order[i]].c_str());
  }
  return 0;
}
