// RePaGer web UI (§V) behind the production serving layer: builds the
// substrates, wires a serve::ServeEngine (sharded query cache ->
// single-flight -> micro-batched BatchEngine; see docs/serving.md), and
// serves the single-page interface plus the JSON API.
//
// Usage: serve_ui [port] [--threads=N] [--cache-mb=M] [--batch-window-us=U]
//                 [--pollers=P] [--max-conns=C] [--idle-timeout-ms=T]
//                 [--queue-depth=D] [--snapshot=FILE]
//   --snapshot=FILE      boot from an mmap'd snapshot (snapshot_build)
//                        instead of generating the corpus — the serving
//                        substrate loads in milliseconds instead of the
//                        multi-second rebuild
//   --threads=N          BatchEngine worker threads (default: hardware)
//   --cache-mb=M         query-cache budget in MiB (0 disables the cache)
//   --batch-window-us=U  micro-batch flush window in microseconds
//   --pollers=P          epoll reactor threads (default 2)
//   --max-conns=C        connection cap; 503-shed past it (0 = unlimited)
//   --idle-timeout-ms=T  idle/slow-loris reap deadline (0 disables)
//   --queue-depth=D      batcher backlog bound; 429-shed past it (0 = off)
//
// By default the server performs a cold + cached self-request pair as a
// smoke test and exits; set RPG_SERVE_FOREVER=1 to keep serving until
// interrupted.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "eval/workbench.h"
#include "serve/serve_engine.h"
#include "snapshot/serving_state.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace {

/// Parses "--name=value" into `out`; returns true when `arg` matched.
bool ParseIntFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpg;
  int port = 0;
  long threads = 0, cache_mb = 64, batch_window_us = 2000, pollers = 2;
  long max_conns = 1024, idle_timeout_ms = 60'000, queue_depth = 256;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    if (ParseIntFlag(argv[i], "--threads", &threads) ||
        ParseIntFlag(argv[i], "--cache-mb", &cache_mb) ||
        ParseIntFlag(argv[i], "--batch-window-us", &batch_window_us) ||
        ParseIntFlag(argv[i], "--pollers", &pollers) ||
        ParseIntFlag(argv[i], "--max-conns", &max_conns) ||
        ParseIntFlag(argv[i], "--idle-timeout-ms", &idle_timeout_ms) ||
        ParseIntFlag(argv[i], "--queue-depth", &queue_depth) ||
        ParseStringFlag(argv[i], "--snapshot", &snapshot_path)) {
      continue;
    }
    port = std::atoi(argv[i]);
  }

  // The serving substrate comes from exactly one of two places: a
  // multi-second from-scratch build (Workbench), or a snapshot file that
  // mmaps in milliseconds. Both expose the same repager/titles/years.
  std::unique_ptr<eval::Workbench> wb;
  std::unique_ptr<snapshot::ServingState> state;
  const core::RePaGer* repager = nullptr;
  const std::vector<std::string>* titles = nullptr;
  const std::vector<uint16_t>* years = nullptr;
  std::string self_test_query;
  int self_test_year = 0;
  if (!snapshot_path.empty()) {
    auto state_or = snapshot::ServingState::Load(snapshot_path);
    if (!state_or.ok()) {
      std::fprintf(stderr, "snapshot: %s\n",
                   state_or.status().ToString().c_str());
      return 1;
    }
    state = std::move(state_or).value();
    repager = &state->repager();
    titles = &state->titles();
    years = &state->years();
    // Self-test query: the title of the most-cited paper — deterministic
    // and guaranteed to hit the index (no SurveyBank in a snapshot).
    graph::PaperId best = 0;
    for (graph::PaperId p = 1; p < state->graph().num_nodes(); ++p) {
      if (state->graph().InDegree(p) > state->graph().InDegree(best)) best = p;
    }
    self_test_query = (*titles)[best];
    self_test_year = INT32_MAX;
    std::printf("booted %llu papers / %llu edges from %s%s\n",
                static_cast<unsigned long long>(state->reader().num_papers()),
                static_cast<unsigned long long>(state->reader().num_edges()),
                snapshot_path.c_str(),
                state->relabeled() ? " (relabeled)" : "");
  } else {
    auto wb_or = eval::Workbench::Create();
    if (!wb_or.ok()) {
      std::fprintf(stderr, "workbench: %s\n",
                   wb_or.status().ToString().c_str());
      return 1;
    }
    wb = std::move(wb_or).value();
    repager = &wb->repager();
    titles = &wb->titles();
    years = &wb->years();
    const auto& entry = wb->bank().Get(wb->bank().HighScoreSubset(1).front());
    self_test_query = entry.query;
    self_test_year = entry.year;
  }

  serve::ServeEngineOptions serve_options;
  serve_options.num_threads = static_cast<int>(threads);
  serve_options.enable_cache = cache_mb > 0;
  serve_options.cache.max_bytes = static_cast<size_t>(cache_mb) << 20;
  serve_options.batcher.flush_window =
      std::chrono::microseconds(batch_window_us);
  serve_options.batcher.max_queue_depth = static_cast<size_t>(queue_depth);
  serve::ServeEngine engine(repager, serve_options);

  ui::RePagerService service(&engine, repager, titles, years);
  ui::HttpServerOptions http_options;
  http_options.num_pollers = static_cast<int>(pollers);
  http_options.max_connections = static_cast<size_t>(max_conns);
  http_options.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  // Async handler: poller threads hand /api/path compute to the engine
  // and return to their event loop (docs/serving.md "Threading model").
  ui::HttpServer server(
      [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        service.HandleAsync(request, std::move(done));
      },
      http_options);
  service.AttachServer(&server);
  auto port_or = server.Start(port);
  if (!port_or.ok()) {
    std::fprintf(stderr, "server: %s\n", port_or.status().ToString().c_str());
    return 1;
  }
  std::printf("RePaGer UI listening on http://127.0.0.1:%d/  "
              "(threads=%zu cache-mb=%ld batch-window-us=%ld pollers=%ld "
              "max-conns=%ld idle-timeout-ms=%ld queue-depth=%ld)\n",
              port_or.value(), engine.num_threads(), cache_mb,
              batch_window_us, pollers, max_conns, idle_timeout_ms,
              queue_depth);
  std::printf("try:  curl 'http://127.0.0.1:%d/api/path?q=%s'\n",
              port_or.value(), "citation+analysis");
  std::printf("      curl 'http://127.0.0.1:%d/api/stats'\n", port_or.value());
  std::printf("      curl -X POST 'http://127.0.0.1:%d/api/cache/clear'\n",
              port_or.value());

  if (std::getenv("RPG_SERVE_FOREVER") != nullptr) {
    std::printf("serving until interrupted (RPG_SERVE_FOREVER set)\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }

  // Smoke test: one cold request, then the same query again — the second
  // must come back from the cache.
  for (int round = 0; round < 2; ++round) {
    auto json_or = service.PathJson(self_test_query, 30, self_test_year);
    if (!json_or.ok()) {
      std::fprintf(stderr, "self-test failed: %s\n",
                   json_or.status().ToString().c_str());
      return 1;
    }
    bool cached =
        json_or.value().find("\"cache_hit\":true") != std::string::npos;
    std::printf("self-test %s: /api/path?q=\"%s\" -> %zu bytes of JSON%s\n",
                round == 0 ? "cold" : "warm", self_test_query.c_str(),
                json_or.value().size(), cached ? " (cache hit)" : "");
    if ((round == 1) != cached && cache_mb > 0) {
      std::fprintf(stderr, "self-test cache behaviour unexpected\n");
      return 1;
    }
  }
  server.Stop();
  std::printf("server stopped cleanly\n");
  return 0;
}
