// RePaGer web UI (§V) behind the production serving layer: builds the
// substrates into a serving Epoch, wires a serve::ServeEngine (sharded
// query cache -> single-flight -> micro-batched BatchEngine; see
// docs/serving.md), and serves the single-page interface plus the JSON
// API. The engine serves from a swappable epoch: POST /api/admin/reload
// (or --watch-snapshot) flips to a new snapshot with zero downtime —
// in-flight requests finish on the old epoch.
//
// Usage: serve_ui [port] [--threads=N] [--cache-mb=M] [--batch-window-us=U]
//                 [--pollers=P] [--max-conns=C] [--idle-timeout-ms=T]
//                 [--queue-depth=D] [--snapshot=FILE] [--watch-snapshot]
//                 [--watch-snapshot-ms=I]
//   --snapshot=FILE      boot from an mmap'd snapshot (snapshot_build)
//                        instead of generating the corpus — the serving
//                        substrate loads in milliseconds instead of the
//                        multi-second rebuild
//   --watch-snapshot     poll the snapshot file's mtime and hot-reload
//                        it into a new serving epoch when it changes
//                        (requires --snapshot)
//   --watch-snapshot-ms=I  poll interval in milliseconds (default 2000)
//   --threads=N          BatchEngine worker threads (default: hardware)
//   --cache-mb=M         query-cache budget in MiB (0 disables the cache)
//   --batch-window-us=U  micro-batch flush window in microseconds
//   --pollers=P          epoll reactor threads (default 2)
//   --max-conns=C        connection cap; 503-shed past it (0 = unlimited)
//   --idle-timeout-ms=T  idle/slow-loris reap deadline (0 disables)
//   --queue-depth=D      batcher backlog bound; 429-shed past it (0 = off)
//
// By default the server performs a cold + cached self-request pair as a
// smoke test and exits; set RPG_SERVE_FOREVER=1 to keep serving until
// interrupted.

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/timer.h"
#include "eval/workbench.h"
#include "serve/epoch.h"
#include "serve/serve_engine.h"
#include "snapshot/serving_state.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace {

/// Parses "--name=value" into `out`; returns true when `arg` matched.
bool ParseIntFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// The snapshot file's mtime in nanoseconds, or 0 when unreadable.
int64_t FileMtimeNs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
         st.st_mtim.tv_nsec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpg;
  int port = 0;
  long threads = 0, cache_mb = 64, batch_window_us = 2000, pollers = 2;
  long max_conns = 1024, idle_timeout_ms = 60'000, queue_depth = 256;
  long watch_ms = 2000;
  bool watch_snapshot = false;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--watch-snapshot") == 0) {
      watch_snapshot = true;
      continue;
    }
    if (ParseIntFlag(argv[i], "--threads", &threads) ||
        ParseIntFlag(argv[i], "--cache-mb", &cache_mb) ||
        ParseIntFlag(argv[i], "--batch-window-us", &batch_window_us) ||
        ParseIntFlag(argv[i], "--pollers", &pollers) ||
        ParseIntFlag(argv[i], "--max-conns", &max_conns) ||
        ParseIntFlag(argv[i], "--idle-timeout-ms", &idle_timeout_ms) ||
        ParseIntFlag(argv[i], "--queue-depth", &queue_depth) ||
        ParseIntFlag(argv[i], "--watch-snapshot-ms", &watch_ms) ||
        ParseStringFlag(argv[i], "--snapshot", &snapshot_path)) {
      continue;
    }
    port = std::atoi(argv[i]);
  }
  if (watch_snapshot && snapshot_path.empty()) {
    std::fprintf(stderr, "--watch-snapshot requires --snapshot=FILE\n");
    return 1;
  }

  // The serving substrate comes from exactly one of two places — a
  // snapshot file that mmaps in milliseconds, or a multi-second
  // from-scratch build (Workbench) — and either way it is wrapped in a
  // serving Epoch: one owning handle the engine can later swap out for
  // a newer generation without restarting.
  serve::EpochHandle epoch;
  std::string self_test_query;
  int self_test_year = 0;
  if (!snapshot_path.empty()) {
    Timer load;
    auto state_or = snapshot::ServingState::Load(snapshot_path);
    if (!state_or.ok()) {
      std::fprintf(stderr, "snapshot: %s\n",
                   state_or.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<snapshot::ServingState> state = std::move(state_or).value();
    // Self-test query: the title of the most-cited paper — deterministic
    // and guaranteed to hit the index (no SurveyBank in a snapshot).
    graph::PaperId best = 0;
    for (graph::PaperId p = 1; p < state->graph().num_nodes(); ++p) {
      if (state->graph().InDegree(p) > state->graph().InDegree(best)) best = p;
    }
    self_test_query = state->titles()[best];
    self_test_year = INT32_MAX;
    epoch = serve::Epoch::FromSnapshot(std::move(state), /*id=*/1,
                                       snapshot_path, load.ElapsedSeconds());
    std::printf("booted epoch %llu: %llu papers / %llu edges from %s "
                "(%.1f ms load)\n",
                static_cast<unsigned long long>(epoch->id()),
                static_cast<unsigned long long>(epoch->info().num_papers),
                static_cast<unsigned long long>(epoch->info().num_edges),
                snapshot_path.c_str(), epoch->info().load_seconds * 1e3);
  } else {
    auto wb_or = eval::Workbench::Create();
    if (!wb_or.ok()) {
      std::fprintf(stderr, "workbench: %s\n",
                   wb_or.status().ToString().c_str());
      return 1;
    }
    std::shared_ptr<eval::Workbench> wb = std::move(wb_or).value();
    const auto& entry = wb->bank().Get(wb->bank().HighScoreSubset(1).front());
    self_test_query = entry.query;
    self_test_year = entry.year;
    serve::Epoch::Info info;
    info.id = 1;
    info.source = "in-process";
    info.num_papers = wb->titles().size();
    epoch = serve::Epoch::Create(&wb->repager(), &wb->titles(), &wb->years(),
                                 wb, info);
  }

  serve::ServeEngineOptions serve_options;
  serve_options.num_threads = static_cast<int>(threads);
  serve_options.enable_cache = cache_mb > 0;
  serve_options.cache.max_bytes = static_cast<size_t>(cache_mb) << 20;
  serve_options.batcher.flush_window =
      std::chrono::microseconds(batch_window_us);
  serve_options.batcher.max_queue_depth = static_cast<size_t>(queue_depth);
  serve::ServeEngine engine(epoch, serve_options);

  ui::RePagerService service(&engine);
  ui::HttpServerOptions http_options;
  http_options.num_pollers = static_cast<int>(pollers);
  http_options.max_connections = static_cast<size_t>(max_conns);
  http_options.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  // Async handler: poller threads hand /api/path compute to the engine
  // and return to their event loop (docs/serving.md "Threading model").
  ui::HttpServer server(
      [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        service.HandleAsync(request, std::move(done));
      },
      http_options);
  service.AttachServer(&server);
  auto port_or = server.Start(port);
  if (!port_or.ok()) {
    std::fprintf(stderr, "server: %s\n", port_or.status().ToString().c_str());
    return 1;
  }

  // Snapshot watcher: poll the file's mtime; on change, load + verify
  // the new bytes into the next epoch and flip. A corrupt or half-
  // written candidate is rejected (fail-closed) and its mtime
  // remembered so the loop doesn't spin on the same bad file.
  std::atomic<bool> stop_watch{false};
  std::thread watcher;
  if (watch_snapshot) {
    watcher = std::thread([&] {
      int64_t serving_mtime = FileMtimeNs(snapshot_path);
      int64_t rejected_mtime = 0;
      while (!stop_watch.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            watch_ms > 0 ? watch_ms : 2000));
        int64_t mtime = FileMtimeNs(snapshot_path);
        if (mtime == 0 || mtime == serving_mtime || mtime == rejected_mtime) {
          continue;
        }
        uint64_t next_id = engine.CurrentEpoch()->id() + 1;
        auto epoch_or = serve::LoadEpochFromSnapshot(snapshot_path, next_id);
        if (!epoch_or.ok()) {
          std::fprintf(stderr, "watch-snapshot: reload rejected: %s\n",
                       epoch_or.status().ToString().c_str());
          rejected_mtime = mtime;
          continue;
        }
        engine.SwapEpoch(epoch_or.value());
        serving_mtime = mtime;
        rejected_mtime = 0;
        std::printf("watch-snapshot: flipped to epoch %llu\n",
                    static_cast<unsigned long long>(next_id));
      }
    });
  }

  std::printf("RePaGer UI listening on http://127.0.0.1:%d/  "
              "(threads=%zu cache-mb=%ld batch-window-us=%ld pollers=%ld "
              "max-conns=%ld idle-timeout-ms=%ld queue-depth=%ld "
              "epoch=%llu%s)\n",
              port_or.value(), engine.num_threads(), cache_mb,
              batch_window_us, pollers, max_conns, idle_timeout_ms,
              queue_depth,
              static_cast<unsigned long long>(engine.CurrentEpoch()->id()),
              watch_snapshot ? " watch-snapshot" : "");
  std::printf("try:  curl 'http://127.0.0.1:%d/api/path?q=%s'\n",
              port_or.value(), "citation+analysis");
  std::printf("      curl 'http://127.0.0.1:%d/api/stats'\n", port_or.value());
  std::printf("      curl -X POST 'http://127.0.0.1:%d/api/cache/clear'\n",
              port_or.value());
  std::printf("      curl -X POST -d /path/to/new.snap "
              "'http://127.0.0.1:%d/api/admin/reload'\n",
              port_or.value());

  if (std::getenv("RPG_SERVE_FOREVER") != nullptr) {
    std::printf("serving until interrupted (RPG_SERVE_FOREVER set)\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }

  // Smoke test: one cold request, then the same query again — the second
  // must come back from the cache.
  int exit_code = 0;
  for (int round = 0; round < 2; ++round) {
    auto json_or = service.PathJson(self_test_query, 30, self_test_year);
    if (!json_or.ok()) {
      std::fprintf(stderr, "self-test failed: %s\n",
                   json_or.status().ToString().c_str());
      exit_code = 1;
      break;
    }
    bool cached =
        json_or.value().find("\"cache_hit\":true") != std::string::npos;
    std::printf("self-test %s: /api/path?q=\"%s\" -> %zu bytes of JSON%s\n",
                round == 0 ? "cold" : "warm", self_test_query.c_str(),
                json_or.value().size(), cached ? " (cache hit)" : "");
    if ((round == 1) != cached && cache_mb > 0) {
      std::fprintf(stderr, "self-test cache behaviour unexpected\n");
      exit_code = 1;
      break;
    }
  }
  stop_watch.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  server.Stop();
  if (exit_code == 0) std::printf("server stopped cleanly\n");
  return exit_code;
}
