// RePaGer web UI (§V): builds the substrates, starts the HTTP server, and
// serves the single-page interface + the /api/path JSON endpoint.
//
// Usage: serve_ui [port]
//   By default the server performs one self-request as a smoke test and
//   exits; set RPG_SERVE_FOREVER=1 to keep serving until interrupted.

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "eval/workbench.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

int main(int argc, char** argv) {
  using namespace rpg;
  int port = argc > 1 ? std::atoi(argv[1]) : 0;

  auto wb_or = eval::Workbench::Create();
  if (!wb_or.ok()) {
    std::fprintf(stderr, "workbench: %s\n", wb_or.status().ToString().c_str());
    return 1;
  }
  const eval::Workbench& wb = *wb_or.value();
  ui::RePagerService service(&wb.repager(), &wb.titles(), &wb.years());
  ui::HttpServer server(
      [&](const ui::HttpRequest& request) { return service.Handle(request); });
  auto port_or = server.Start(port);
  if (!port_or.ok()) {
    std::fprintf(stderr, "server: %s\n", port_or.status().ToString().c_str());
    return 1;
  }
  std::printf("RePaGer UI listening on http://127.0.0.1:%d/\n",
              port_or.value());
  std::printf("try:  curl 'http://127.0.0.1:%d/api/path?q=%s'\n",
              port_or.value(), "citation+analysis");

  if (std::getenv("RPG_SERVE_FOREVER") != nullptr) {
    std::printf("serving until interrupted (RPG_SERVE_FOREVER set)\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }

  // Smoke test: generate a path for one SurveyBank query via the service
  // layer, then shut down.
  const auto& entry = wb.bank().Get(wb.bank().HighScoreSubset(1).front());
  auto json_or = service.PathJson(entry.query, 30, entry.year);
  if (!json_or.ok()) {
    std::fprintf(stderr, "self-test failed: %s\n",
                 json_or.status().ToString().c_str());
    return 1;
  }
  std::printf("self-test: /api/path?q=\"%s\" -> %zu bytes of JSON\n",
              entry.query.c_str(), json_or.value().size());
  server.Stop();
  std::printf("server stopped cleanly\n");
  return 0;
}
