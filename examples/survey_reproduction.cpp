// Survey reproduction: take a real SurveyBank entry, run every compared
// system on its title's key phrases, and show how well each recovers the
// survey's actual reference list (the paper's core evaluation, §VI, on a
// single concrete query).
//
// Usage: survey_reproduction [entry_index]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/baselines.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

int main(int argc, char** argv) {
  using namespace rpg;
  auto wb_or = eval::Workbench::Create();
  if (!wb_or.ok()) {
    std::fprintf(stderr, "workbench: %s\n", wb_or.status().ToString().c_str());
    return 1;
  }
  const eval::Workbench& wb = *wb_or.value();

  // Pick the survey: CLI-provided index, or a recent high-score one.
  size_t index;
  if (argc > 1) {
    index = std::strtoull(argv[1], nullptr, 10);
    if (index >= wb.bank().size()) {
      std::fprintf(stderr, "entry_index must be < %zu\n", wb.bank().size());
      return 1;
    }
  } else {
    index = wb.bank().HighScoreSubset(1).front();
    for (size_t candidate : wb.bank().HighScoreSubset(50)) {
      if (wb.bank().Get(candidate).year >= 2015) {
        index = candidate;
        break;
      }
    }
  }
  const auto& entry = wb.bank().Get(index);
  std::printf("survey:      \"%s\" (%d)\n", entry.title.c_str(), entry.year);
  std::printf("query:       \"%s\"\n", entry.query.c_str());
  std::printf("ground truth: %zu references (L1), %zu cited>=2 (L2), "
              "%zu cited>=3 (L3)\n\n",
              entry.label_l1.size(), entry.label_l2.size(),
              entry.label_l3.size());

  // Run every system at K = 30 and compare against L1.
  eval::QuerySpec spec{entry.query, entry.year, entry.paper};
  TablePrinter table({"method", "P@30", "R@30", "F1@30", "hits"});
  for (eval::Method method : eval::AllMethods()) {
    auto ranked_or = RankedListFor(wb, method, spec, 30);
    if (!ranked_or.ok()) {
      std::fprintf(stderr, "%s: %s\n", MethodName(method),
                   ranked_or.status().ToString().c_str());
      continue;
    }
    eval::PrfAtK m = eval::ComputePrfAtK(ranked_or.value(), entry.label_l1, 30);
    size_t hits = eval::CountOverlap(ranked_or.value(), entry.label_l1);
    table.AddRow({MethodName(method), FormatDouble(m.precision, 3),
                  FormatDouble(m.recall, 3), FormatDouble(m.f1, 3),
                  std::to_string(hits)});
  }
  table.Print(std::cout);

  // Show NEWST's top hits, marking true references.
  auto newst = RankedListFor(wb, eval::Method::kNewst, spec, 15).value();
  std::printf("\nNEWST top 15 ('#' marks papers on the survey's reference "
              "list):\n");
  for (size_t i = 0; i < newst.size(); ++i) {
    bool hit = std::binary_search(entry.label_l1.begin(),
                                  entry.label_l1.end(), newst[i]);
    std::printf("  %2zu. %s [%d] %s\n", i + 1, hit ? "#" : " ",
                wb.years()[newst[i]], wb.titles()[newst[i]].c_str());
  }
  return 0;
}
