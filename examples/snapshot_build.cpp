// Offline snapshot builder: generates the synthetic corpus at a chosen
// scale, builds the full serving substrate (engines, PageRank, weight
// model, embeddings), and serializes it into one mmap-loadable snapshot
// file (docs/snapshot.md). Pay the multi-second build cost once here;
// `serve_ui --snapshot=FILE` then boots in milliseconds.
//
// Usage: snapshot_build [--out=FILE] [--papers=N] [--seed=S] [--relabel]
//   --out=FILE   output path (default corpus.snap)
//   --papers=N   target corpus size via the scale axis (default 0 =
//                the standard ~27k-paper corpus options)
//   --seed=S     corpus generator seed (default 42)
//   --relabel    renumber papers in BFS order from high-in-degree roots
//                (cache-friendly layout; kIdMap maps ids back)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/timer.h"
#include "eval/workbench.h"
#include "snapshot/snapshot_writer.h"

namespace {

bool ParseLongFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpg;
  std::string out_path = "corpus.snap";
  long papers = 0, seed = 42;
  bool relabel = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseStringFlag(argv[i], "--out", &out_path) ||
        ParseLongFlag(argv[i], "--papers", &papers) ||
        ParseLongFlag(argv[i], "--seed", &seed)) {
      continue;
    }
    if (std::strcmp(argv[i], "--relabel") == 0) {
      relabel = true;
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  eval::WorkbenchOptions options;
  options.corpus.seed = static_cast<uint64_t>(seed);
  if (papers > 0) {
    options.corpus = synth::ScaledCorpusOptions(
        static_cast<uint64_t>(papers), static_cast<uint64_t>(seed));
  }

  Timer build_watch;
  auto wb_or = eval::Workbench::Create(options);
  if (!wb_or.ok()) {
    std::fprintf(stderr, "workbench: %s\n", wb_or.status().ToString().c_str());
    return 1;
  }
  const eval::Workbench& wb = *wb_or.value();
  const double build_s = build_watch.ElapsedSeconds();

  snapshot::SnapshotInput input;
  input.graph = &wb.corpus().citations;
  input.titles = &wb.titles();
  input.years = &wb.years();
  input.pagerank = &wb.pagerank();
  input.venue_scores = &wb.venue_scores();
  input.engine = &wb.google();
  input.matcher = &wb.matcher();
  input.params = options.params;
  input.corpus_seed = options.corpus.seed;

  snapshot::SnapshotWriterOptions writer_options;
  writer_options.relabel = relabel;

  Timer write_watch;
  Status status = snapshot::WriteSnapshot(input, out_path, writer_options);
  if (!status.ok()) {
    std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %zu papers, %zu edges%s (build %.2fs, serialize %.2fs)\n",
      out_path.c_str(), wb.corpus().citations.num_nodes(),
      wb.corpus().citations.num_edges(), relabel ? ", relabeled" : "",
      build_s, write_watch.ElapsedSeconds());
  return 0;
}
