#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/citation_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"

namespace rpg::graph {
namespace {

std::vector<uint32_t> ToVector(std::span<const uint32_t> s) {
  return {s.begin(), s.end()};
}

CitationGraph BuildDiamond() {
  // 0 cites 1 and 2; 1 and 2 cite 3.
  GraphBuilder b(4);
  b.AddCitation(0, 1);
  b.AddCitation(0, 2);
  b.AddCitation(1, 3);
  b.AddCitation(2, 3);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(GraphBuilderTest, BasicCounts) {
  CitationGraph g = BuildDiamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.CitationCount(3), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(GraphBuilderTest, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.AddCitation(0, 4);
  b.AddCitation(0, 2);
  b.AddCitation(0, 3);
  b.AddCitation(4, 0);
  b.AddCitation(2, 0);
  auto g = b.Build().value();
  auto out = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  auto in = g.InNeighbors(0);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

TEST(GraphBuilderTest, DropsDuplicatesAndSelfLoops) {
  GraphBuilder b(3);
  b.AddCitation(0, 1);
  b.AddCitation(0, 1);
  b.AddCitation(1, 1);
  auto g = b.Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutDegree(1), 0u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeIds) {
  GraphBuilder b(2);
  b.AddCitation(0, 5);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b(3);
  auto g = b.Build().value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.OutNeighbors(0).empty());
}

TEST(GraphTest, HasEdge) {
  CitationGraph g = BuildDiamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));  // direction matters
  EXPECT_FALSE(g.HasEdge(0, 3));
}

// ------------------------------------------------------------- traversal

TEST(TraversalTest, KHopOutLevels) {
  CitationGraph g = BuildDiamond();
  KHopResult r = KHopNeighborhood(g, {0}, 2, Direction::kOut);
  ASSERT_EQ(r.levels.size(), 3u);
  EXPECT_EQ(r.levels[0], (std::vector<PaperId>{0}));
  EXPECT_EQ(r.levels[1], (std::vector<PaperId>{1, 2}));
  EXPECT_EQ(r.levels[2], (std::vector<PaperId>{3}));
  EXPECT_EQ(r.TotalCount(), 4u);
  EXPECT_EQ(r.AllNodes().size(), 4u);
}

TEST(TraversalTest, KHopInDirection) {
  CitationGraph g = BuildDiamond();
  KHopResult r = KHopNeighborhood(g, {3}, 2, Direction::kIn);
  EXPECT_EQ(r.levels[1], (std::vector<PaperId>{1, 2}));
  EXPECT_EQ(r.levels[2], (std::vector<PaperId>{0}));
}

TEST(TraversalTest, KHopDeduplicatesSeeds) {
  CitationGraph g = BuildDiamond();
  KHopResult r = KHopNeighborhood(g, {0, 0, 0}, 1, Direction::kOut);
  EXPECT_EQ(r.levels[0].size(), 1u);
}

TEST(TraversalTest, KHopSkipsInvalidSeeds) {
  CitationGraph g = BuildDiamond();
  KHopResult r = KHopNeighborhood(g, {99}, 1, Direction::kOut);
  EXPECT_TRUE(r.levels[0].empty());
}

TEST(TraversalTest, KHopZeroHops) {
  CitationGraph g = BuildDiamond();
  KHopResult r = KHopNeighborhood(g, {0}, 0, Direction::kOut);
  EXPECT_EQ(r.levels.size(), 1u);
}

TEST(TraversalTest, NodesVisitedOnceAcrossLevels) {
  // 0 -> 1 -> 2 and 0 -> 2: node 2 is reachable at hop 1 and 2 but must
  // appear only once (at hop 1).
  GraphBuilder b(3);
  b.AddCitation(0, 1);
  b.AddCitation(1, 2);
  b.AddCitation(0, 2);
  auto g = b.Build().value();
  KHopResult r = KHopNeighborhood(g, {0}, 2, Direction::kOut);
  EXPECT_EQ(r.levels[1], (std::vector<PaperId>{1, 2}));
  EXPECT_TRUE(r.levels[2].empty());
}

TEST(TraversalTest, KHopScratchReuseMatchesOneShot) {
  CitationGraph g = BuildDiamond();
  TraversalScratch scratch;
  KHopResult reused;
  // Successive traversals with one scratch/result pair — including a
  // wider run followed by a narrower one — must match fresh calls.
  struct Case {
    std::vector<PaperId> seeds;
    int hops;
    Direction dir;
  };
  std::vector<Case> cases = {{{0}, 2, Direction::kOut},
                             {{3}, 2, Direction::kIn},
                             {{0}, 0, Direction::kOut},
                             {{1, 2}, 1, Direction::kUndirected},
                             {{0}, 2, Direction::kOut}};
  for (const Case& c : cases) {
    KHopNeighborhood(g, c.seeds, c.hops, c.dir, &scratch, &reused);
    KHopResult fresh = KHopNeighborhood(g, c.seeds, c.hops, c.dir);
    EXPECT_EQ(reused.levels, fresh.levels);
  }
}

TEST(TraversalTest, ConnectedComponents) {
  GraphBuilder b(6);
  b.AddCitation(0, 1);
  b.AddCitation(2, 3);
  // 4 and 5 isolated.
  auto g = b.Build().value();
  size_t n = 0;
  auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[5]);
  EXPECT_EQ(LargestComponentSize(g), 2u);
}

TEST(TraversalTest, ComponentsIgnoreDirection) {
  GraphBuilder b(3);
  b.AddCitation(0, 1);
  b.AddCitation(2, 1);
  auto g = b.Build().value();
  EXPECT_EQ(LargestComponentSize(g), 3u);
}

// -------------------------------------------------------------- subgraph

TEST(SubgraphTest, InducedEdgesOnly) {
  CitationGraph g = BuildDiamond();
  Subgraph sg(g, {0, 1, 3});
  EXPECT_EQ(sg.num_nodes(), 3u);
  // Edges 0->1 and 1->3 survive; 0->2->3 is cut.
  EXPECT_EQ(sg.num_edges(), 2u);
  uint32_t l0 = sg.ToLocal(0), l1 = sg.ToLocal(1), l3 = sg.ToLocal(3);
  EXPECT_EQ(ToVector(sg.OutNeighbors(l0)), (std::vector<uint32_t>{l1}));
  EXPECT_EQ(ToVector(sg.InNeighbors(l3)), (std::vector<uint32_t>{l1}));
}

TEST(SubgraphTest, LocalGlobalRoundTrip) {
  CitationGraph g = BuildDiamond();
  Subgraph sg(g, {3, 1});
  for (uint32_t local = 0; local < sg.num_nodes(); ++local) {
    EXPECT_EQ(sg.ToLocal(sg.ToGlobal(local)), local);
  }
  // Locals assigned in first-appearance order.
  EXPECT_EQ(sg.ToGlobal(0), 3u);
  EXPECT_EQ(sg.ToGlobal(1), 1u);
}

TEST(SubgraphTest, ContainsAndMisses) {
  CitationGraph g = BuildDiamond();
  Subgraph sg(g, {0, 2});
  EXPECT_TRUE(sg.Contains(0));
  EXPECT_FALSE(sg.Contains(1));
  EXPECT_EQ(sg.ToLocal(1), UINT32_MAX);
}

TEST(SubgraphTest, DuplicatesAndInvalidIdsIgnored) {
  CitationGraph g = BuildDiamond();
  Subgraph sg(g, {0, 0, 99, 2});
  EXPECT_EQ(sg.num_nodes(), 2u);
}

TEST(SubgraphTest, UndirectedNeighborsMergesBothDirections) {
  CitationGraph g = BuildDiamond();
  Subgraph sg(g, {0, 1, 3});
  uint32_t l1 = sg.ToLocal(1);
  auto undirected = sg.UndirectedNeighbors(l1);
  EXPECT_EQ(undirected.size(), 2u);  // 0 (citer) and 3 (cited)
}

TEST(SubgraphTest, AssignWithSharedScratchMatchesFreshBuilds) {
  CitationGraph g = BuildDiamond();
  SubgraphScratch scratch;
  Subgraph reused;
  // Re-assigning the same object with one scratch must reproduce every
  // fresh single-shot build, including after shrinking node sets.
  std::vector<std::vector<PaperId>> node_sets = {
      {0, 1, 2, 3}, {0, 1, 3}, {3, 1}, {2}, {0, 1, 2, 3}};
  for (const auto& nodes : node_sets) {
    reused.Assign(g, nodes, &scratch);
    Subgraph fresh(g, nodes);
    ASSERT_EQ(reused.num_nodes(), fresh.num_nodes());
    ASSERT_EQ(reused.num_edges(), fresh.num_edges());
    for (uint32_t local = 0; local < fresh.num_nodes(); ++local) {
      EXPECT_EQ(reused.ToGlobal(local), fresh.ToGlobal(local));
      EXPECT_EQ(ToVector(reused.OutNeighbors(local)),
                ToVector(fresh.OutNeighbors(local)));
      EXPECT_EQ(ToVector(reused.InNeighbors(local)),
                ToVector(fresh.InNeighbors(local)));
    }
    for (PaperId p = 0; p < g.num_nodes(); ++p) {
      EXPECT_EQ(reused.ToLocal(p), fresh.ToLocal(p));
    }
  }
}

TEST(SubgraphTest, DefaultConstructedIsEmpty) {
  Subgraph sg;
  EXPECT_EQ(sg.num_nodes(), 0u);
  EXPECT_EQ(sg.num_edges(), 0u);
  EXPECT_FALSE(sg.Contains(0));
}

// -------------------------------------------------------------- graph io

TEST(GraphIoTest, BinaryRoundTrip) {
  CitationGraph g = BuildDiamond();
  std::string path =
      (std::filesystem::temp_directory_path() / "rpg_graph_test.bin").string();
  ASSERT_TRUE(GraphIo::WriteBinary(g, path).ok());
  auto loaded = GraphIo::ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (PaperId p = 0; p < g.num_nodes(); ++p) {
    auto a = g.OutNeighbors(p);
    auto b = loaded->OutNeighbors(p);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, ReadMissingFileFails) {
  EXPECT_TRUE(GraphIo::ReadBinary("/nonexistent/graph.bin").status()
                  .IsIoError());
}

TEST(GraphIoTest, ReadCorruptHeaderFails) {
  std::string path =
      (std::filesystem::temp_directory_path() / "rpg_graph_bad.bin").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a graph file at all";
  }
  EXPECT_TRUE(GraphIo::ReadBinary(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

// ------------------------------------------- adversarial input framing
// Regressions for the bugs the fuzz_graph_io harness found (the same
// inputs are checked in under fuzz/corpus/graph_io/): a length prefix
// claiming 2^60 elements used to be resize()d before any byte was read
// (multi-GB allocation from a 20-byte file), and CSR structure was
// never validated, so a lying offsets array meant out-of-bounds reads
// on first traversal.

/// Assembles a graph file image in the exact wire format:
/// magic u64 | version u32 | 4 x (count u64 + elements).
class WireImage {
 public:
  WireImage& Magic(uint64_t magic = 0x5250475f47524146ULL) {
    return Raw64(magic);
  }
  WireImage& Version(uint32_t version = 1) {
    bytes_.append(reinterpret_cast<const char*>(&version), sizeof(version));
    return *this;
  }
  WireImage& Vec64(const std::vector<uint64_t>& v) {
    Raw64(v.size());
    for (uint64_t x : v) Raw64(x);
    return *this;
  }
  WireImage& Vec32(const std::vector<uint32_t>& v) {
    Raw64(v.size());
    for (uint32_t x : v) {
      bytes_.append(reinterpret_cast<const char*>(&x), sizeof(x));
    }
    return *this;
  }
  WireImage& Raw64(uint64_t x) {
    bytes_.append(reinterpret_cast<const char*>(&x), sizeof(x));
    return *this;
  }
  Result<CitationGraph> Read() const {
    std::istringstream is(bytes_, std::ios::binary);
    return GraphIo::ReadBinaryFromStream(is, "test image");
  }
  WireImage& Truncate(size_t keep) {
    bytes_.resize(keep);
    return *this;
  }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

TEST(GraphIoTest, WellFormedImageAccepted) {
  // 0 -> 1, 1 -> 0 assembled by hand: the wire helper itself is sane.
  auto g = WireImage()
               .Magic()
               .Version()
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Read();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 2u);
  EXPECT_EQ(ToVector(g->OutNeighbors(0)), std::vector<uint32_t>{1});
}

TEST(GraphIoTest, ResizeBombLengthPrefixRejectedCheaply) {
  // A 28-byte file claiming 2^60 out_offsets: must fail on the first
  // short read, not allocate.
  auto g = WireImage().Magic().Version().Raw64(uint64_t{1} << 60).Read();
  EXPECT_TRUE(g.status().IsInvalidArgument()) << g.status().ToString();
  // The overflow edge: a count whose byte size wraps uint64.
  auto wrap = WireImage().Magic().Version().Raw64(UINT64_MAX).Read();
  EXPECT_TRUE(wrap.status().IsInvalidArgument());
}

TEST(GraphIoTest, NonMonotonicOffsetsRejected) {
  auto g = WireImage()
               .Magic()
               .Version()
               .Vec64({0, 2, 1})  // walks backwards
               .Vec32({1, 0, 1})
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Read();
  ASSERT_TRUE(g.status().IsInvalidArgument());
  EXPECT_NE(g.status().ToString().find("monotonic"), std::string::npos);
}

TEST(GraphIoTest, OffsetsNotStartingAtZeroRejected) {
  auto g = WireImage()
               .Magic()
               .Version()
               .Vec64({1, 1, 2})
               .Vec32({1, 0})
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Read();
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphIoTest, TargetOutOfRangeRejected) {
  // Node 1 cites node 9 of a 2-node graph: traversal would read
  // out_offsets_[10] off the end.
  auto g = WireImage()
               .Magic()
               .Version()
               .Vec64({0, 1, 2})
               .Vec32({1, 9})
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Read();
  ASSERT_TRUE(g.status().IsInvalidArgument());
  EXPECT_NE(g.status().ToString().find("out of range"), std::string::npos);
}

TEST(GraphIoTest, OffsetsTargetsLengthMismatchRejected) {
  // offsets.back() says 3 edges, targets has 2.
  auto g = WireImage()
               .Magic()
               .Version()
               .Vec64({0, 1, 3})
               .Vec32({1, 0})
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Read();
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphIoTest, TruncatedImageRejectedAtEveryPrefix) {
  WireImage full;
  full.Magic().Version().Vec64({0, 1, 2}).Vec32({1, 0}).Vec64({0, 1, 2})
      .Vec32({1, 0});
  const size_t total = full.size();
  // Every proper prefix must fail cleanly (never crash, never accept).
  for (size_t keep = 0; keep < total; ++keep) {
    WireImage image;
    image.Magic().Version().Vec64({0, 1, 2}).Vec32({1, 0}).Vec64({0, 1, 2})
        .Vec32({1, 0});
    auto g = image.Truncate(keep).Read();
    EXPECT_TRUE(g.status().IsInvalidArgument()) << "prefix " << keep;
  }
}

TEST(GraphIoTest, UnsupportedVersionRejected) {
  auto g = WireImage()
               .Magic()
               .Version(9)
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Vec64({0, 1, 2})
               .Vec32({1, 0})
               .Read();
  ASSERT_TRUE(g.status().IsInvalidArgument());
  EXPECT_NE(g.status().ToString().find("version"), std::string::npos);
}

TEST(GraphIoTest, DotContainsInducedEdgesOnly) {
  CitationGraph g = BuildDiamond();
  std::string dot = GraphIo::ToDot(g, {0, 1});
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -> n3"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(GraphIoTest, DotUsesLabelsWhenProvided) {
  CitationGraph g = BuildDiamond();
  std::string dot = GraphIo::ToDot(g, {0}, {"BERT paper"});
  EXPECT_NE(dot.find("BERT paper"), std::string::npos);
}

}  // namespace
}  // namespace rpg::graph
