#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/graph_builder.h"
#include "rank/pagerank.h"
#include "rank/weight_model.h"

namespace rpg::rank {
namespace {

graph::CitationGraph Star() {
  // Papers 1..4 all cite paper 0.
  graph::GraphBuilder b(5);
  for (graph::PaperId u = 1; u < 5; ++u) b.AddCitation(u, 0);
  return b.Build().value();
}

TEST(PageRankTest, ScoresSumToOne) {
  auto g = Star();
  auto pr = PageRank(g);
  double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, HighlyCitedPaperDominates) {
  auto g = Star();
  auto pr = PageRank(g);
  for (graph::PaperId u = 1; u < 5; ++u) EXPECT_GT(pr[0], pr[u]);
}

TEST(PageRankTest, SymmetricNodesGetEqualScores) {
  auto g = Star();
  auto pr = PageRank(g);
  for (graph::PaperId u = 2; u < 5; ++u) EXPECT_NEAR(pr[1], pr[u], 1e-9);
}

TEST(PageRankTest, EmptyGraphNoScores) {
  graph::GraphBuilder b(0);
  auto g = b.Build().value();
  EXPECT_TRUE(PageRank(g).empty());
}

TEST(PageRankTest, NoEdgesIsUniform) {
  graph::GraphBuilder b(4);
  auto g = b.Build().value();
  auto pr = PageRank(g);
  for (double s : pr) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(PageRankTest, CycleIsUniform) {
  graph::GraphBuilder b(3);
  b.AddCitation(0, 1);
  b.AddCitation(1, 2);
  b.AddCitation(2, 0);
  auto g = b.Build().value();
  auto pr = PageRank(g);
  EXPECT_NEAR(pr[0], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(pr[1], 1.0 / 3.0, 1e-6);
}

TEST(PageRankTest, ChainAccumulatesDownstream) {
  // 2 cites 1 cites 0: rank(0) > rank(1) > rank(2).
  graph::GraphBuilder b(3);
  b.AddCitation(2, 1);
  b.AddCitation(1, 0);
  auto g = b.Build().value();
  auto pr = PageRank(g);
  EXPECT_GT(pr[0], pr[1]);
  EXPECT_GT(pr[1], pr[2]);
}

TEST(PageRankTest, SubgraphVariantAgreesOnWholeGraph) {
  auto g = Star();
  std::vector<graph::PaperId> all = {0, 1, 2, 3, 4};
  graph::Subgraph sg(g, all);
  auto whole = PageRank(g);
  auto sub = PageRankOnSubgraph(sg);
  for (uint32_t local = 0; local < sg.num_nodes(); ++local) {
    EXPECT_NEAR(sub[local], whole[sg.ToGlobal(local)], 1e-9);
  }
}

TEST(NormalizeByMaxTest, TopBecomesOne) {
  auto norm = NormalizeByMax({0.1, 0.4, 0.2});
  EXPECT_DOUBLE_EQ(norm[1], 1.0);
  EXPECT_DOUBLE_EQ(norm[0], 0.25);
}

TEST(NormalizeByMaxTest, DegenerateInputs) {
  EXPECT_TRUE(NormalizeByMax({}).empty());
  auto zeros = NormalizeByMax({0.0, 0.0});
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

// ------------------------------------------------------------ WeightModel

class WeightModelFixture : public ::testing::Test {
 protected:
  WeightModelFixture() : graph_(BuildGraph()) {}

  static graph::CitationGraph BuildGraph() {
    // 0 and 1 both cite 2 and 3 (strong coupling); 4 isolated-ish.
    graph::GraphBuilder b(5);
    b.AddCitation(0, 2);
    b.AddCitation(0, 3);
    b.AddCitation(1, 2);
    b.AddCitation(1, 3);
    b.AddCitation(4, 0);
    return b.Build().value();
  }

  graph::CitationGraph graph_;
};

TEST_F(WeightModelFixture, NodeWeightFollowsEquation3) {
  std::vector<double> pr = {1.0, 0.5, 0.2, 0.2, 0.0};
  std::vector<double> venue = {1.0, 0.0, 0.5, 0.0, 0.0};
  NewstParams params;  // {3, 2, 5, 0.7, 0.3}
  WeightModel model(&graph_, pr, venue, params);
  // w(0) = 5 / (0.7 * 1 + 0.3 * 1) = 5.
  EXPECT_NEAR(model.NodeWeight(0), 5.0, 1e-9);
  // w(1) = 5 / 0.35.
  EXPECT_NEAR(model.NodeWeight(1), 5.0 / 0.35, 1e-9);
  // Node 4 has zero signals -> floored denominator, finite weight.
  EXPECT_NEAR(model.NodeWeight(4), model.MaxNodeWeight(), 1e-9);
  EXPECT_LT(model.NodeWeight(4), 1e9);
}

TEST_F(WeightModelFixture, MoreImportantNodesAreCheaper) {
  std::vector<double> pr = {1.0, 0.1, 0.5, 0.5, 0.0};
  std::vector<double> venue(5, 0.0);
  WeightModel model(&graph_, pr, venue);
  EXPECT_LT(model.NodeWeight(0), model.NodeWeight(1));
}

TEST_F(WeightModelFixture, ConCountsSharedNeighborsSymmetrically) {
  std::vector<double> zero(5, 0.0);
  WeightModel model(&graph_, zero, zero);
  // 0 and 1 share two references (2, 3): con = 1 + 2 = 3.
  EXPECT_EQ(model.Con(0, 1), 3);
  EXPECT_EQ(model.Con(1, 0), 3);
  // 2 and 3 share two citers (0, 1): con = 3 as well.
  EXPECT_EQ(model.Con(2, 3), 3);
  // 4 shares nothing with 2.
  EXPECT_EQ(model.Con(4, 2), 1);
}

TEST_F(WeightModelFixture, EdgeCostFollowsEquation2) {
  std::vector<double> zero(5, 0.0);
  NewstParams params;
  WeightModel model(&graph_, zero, zero, params);
  // c = alpha / con^beta = 3 / 3^2.
  EXPECT_NEAR(model.EdgeCost(0, 1), 3.0 / 9.0, 1e-9);
  EXPECT_NEAR(model.EdgeCost(4, 2), 3.0, 1e-9);
  // Stronger relation -> cheaper edge.
  EXPECT_LT(model.EdgeCost(0, 1), model.EdgeCost(4, 2));
}

TEST_F(WeightModelFixture, CustomParamsPropagate) {
  std::vector<double> zero(5, 0.0);
  NewstParams params;
  params.alpha = 10.0;
  params.beta = 1.0;
  params.gamma = 2.0;
  WeightModel model(&graph_, zero, zero, params);
  EXPECT_NEAR(model.EdgeCost(4, 2), 10.0, 1e-9);
  EXPECT_NEAR(model.NodeWeight(4), 2.0 / 0.02, 1e-9);
  EXPECT_EQ(model.params().alpha, 10.0);
}

TEST_F(WeightModelFixture, ConAndEdgeCostAreSymmetricOnRandomGraph) {
  // Regression for the two-phase capped count (ISSUE 9): both phases are
  // symmetric intersections and each phase's clamp is a semantic min, so
  // Con(i, j) == Con(j, i) and EdgeCost(i, j) == EdgeCost(j, i) must
  // hold for every pair — including pairs that saturate the cap, where a
  // scan-cutoff bug would break order independence. Also pins the
  // scratch/bitmap path to the scratch-free path on every pair.
  const uint32_t n = 100;
  graph::GraphBuilder b(n);
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state >> 33);
  };
  for (int e = 0; e < 900; ++e) {
    uint32_t u = next() % n, v = next() % n;
    if (u != v) b.AddCitation(u, v);
  }
  // Hub citing everything: combined degree far above the bitmap
  // stamping threshold, so the scratch path below runs dense too.
  for (uint32_t v = 1; v < n; ++v) b.AddCitation(0, v);
  auto g = b.Build().value();
  std::vector<double> zero(n, 0.0);
  WeightModel model(&g, zero, zero);
  ConScratch scratch;
  for (graph::PaperId i = 0; i < n; ++i) {
    for (graph::PaperId j = i + 1; j < n; ++j) {
      const int forward = model.Con(i, j);
      EXPECT_EQ(forward, model.Con(j, i)) << i << "," << j;
      EXPECT_DOUBLE_EQ(model.EdgeCost(i, j), model.EdgeCost(j, i));
      EXPECT_GE(forward, 1);
      EXPECT_LE(forward, 7);  // 1 + min(common, kConCap - 1)
      EXPECT_EQ(forward, model.Con(i, j, &scratch));
      EXPECT_EQ(forward, model.Con(j, i, &scratch));
      EXPECT_DOUBLE_EQ(model.EdgeCost(i, j),
                       model.EdgeCost(i, j, &scratch));
    }
  }
}

TEST_F(WeightModelFixture, AllWeightsPositive) {
  std::vector<double> pr = {1.0, 0.5, 0.2, 0.2, 0.0};
  std::vector<double> venue = {1.0, 0.0, 0.5, 0.0, 0.0};
  WeightModel model(&graph_, pr, venue);
  for (graph::PaperId p = 0; p < 5; ++p) {
    EXPECT_GT(model.NodeWeight(p), 0.0);
    for (graph::PaperId q = 0; q < 5; ++q) {
      if (p != q) EXPECT_GT(model.EdgeCost(p, q), 0.0);
    }
  }
}

}  // namespace
}  // namespace rpg::rank
