// BatchEngine correctness: batched parallel execution (with and without
// per-worker scratch reuse) must be bit-identical to serial
// RePaGer::Generate, per query, over a small but fully wired workbench.

#include "core/batch_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "eval/workbench.h"

namespace rpg::core {
namespace {

class BatchEngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 60;
    options.corpus.papers_per_area = 20;
    options.corpus.papers_per_domain = 15;
    options.corpus.num_surveys = 100;
    options.corpus.seed = 33;
    wb_ = eval::Workbench::Create(options).value().release();
  }
  static void TearDownTestSuite() {
    delete wb_;
    wb_ = nullptr;
  }

  /// A batch over the first `n` bank entries, each with the standard
  /// leave-the-survey-out options.
  static std::vector<BatchQuery> MakeBatch(size_t n) {
    std::vector<BatchQuery> batch;
    for (size_t i = 0; i < n && i < wb_->bank().size(); ++i) {
      const auto& entry = wb_->bank().Get(i);
      BatchQuery q;
      q.query = entry.query;
      q.options.year_cutoff = entry.year;
      q.options.exclude = {entry.paper};
      batch.push_back(std::move(q));
    }
    return batch;
  }

  static void ExpectSameResult(const RePagerResult& a, const RePagerResult& b) {
    EXPECT_EQ(a.ranked, b.ranked);
    EXPECT_EQ(a.initial_seeds, b.initial_seeds);
    EXPECT_EQ(a.terminals, b.terminals);
    EXPECT_EQ(a.path.nodes(), b.path.nodes());
    EXPECT_EQ(a.path.edges(), b.path.edges());
    EXPECT_EQ(a.subgraph_nodes, b.subgraph_nodes);
    EXPECT_EQ(a.subgraph_edges, b.subgraph_edges);
  }

  static const eval::Workbench* wb_;
};

const eval::Workbench* BatchEngineFixture::wb_ = nullptr;

TEST_F(BatchEngineFixture, BatchedMatchesSerialGenerate) {
  auto batch = MakeBatch(8);
  ASSERT_FALSE(batch.empty());

  BatchEngineOptions options;
  options.num_threads = 4;
  options.reuse_scratch = true;
  BatchEngine engine(&wb_->repager(), options);
  EXPECT_EQ(engine.num_threads(), 4u);
  BatchResult result = engine.Run(batch);

  ASSERT_EQ(result.results.size(), batch.size());
  EXPECT_EQ(result.num_ok, batch.size());
  EXPECT_GT(result.wall_seconds, 0.0);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(result.results[i].ok()) << "query " << i;
    auto serial =
        wb_->repager().Generate(batch[i].query, batch[i].options).value();
    ExpectSameResult(result.results[i].value(), serial);
  }
}

TEST_F(BatchEngineFixture, BatchedWithoutScratchReuseAlsoMatches) {
  auto batch = MakeBatch(4);
  BatchEngineOptions options;
  options.num_threads = 2;
  options.reuse_scratch = false;
  BatchEngine engine(&wb_->repager(), options);
  BatchResult result = engine.Run(batch);
  ASSERT_EQ(result.num_ok, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto serial =
        wb_->repager().Generate(batch[i].query, batch[i].options).value();
    ExpectSameResult(result.results[i].value(), serial);
  }
}

TEST_F(BatchEngineFixture, ScratchReuseAcrossConsecutiveQueriesIsIdentical) {
  auto batch = MakeBatch(6);
  // One scratch threaded through consecutive queries of very different
  // sub-graph sizes must not leak state between them.
  QueryScratch scratch;
  for (const BatchQuery& q : batch) {
    auto reused = wb_->repager().Generate(q.query, q.options, &scratch);
    auto fresh = wb_->repager().Generate(q.query, q.options);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(fresh.ok());
    ExpectSameResult(reused.value(), fresh.value());
  }
  // And again with varying options on the same scratch.
  for (const BatchQuery& q : batch) {
    RePagerOptions options = q.options;
    options.num_initial_seeds = 10;
    options.run_steiner = false;
    auto reused = wb_->repager().Generate(q.query, options, &scratch);
    auto fresh = wb_->repager().Generate(q.query, options);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(fresh.ok());
    ExpectSameResult(reused.value(), fresh.value());
  }
}

TEST_F(BatchEngineFixture, PerQueryFailuresStayInTheirSlot) {
  auto batch = MakeBatch(2);
  ASSERT_EQ(batch.size(), 2u);
  BatchQuery empty;  // InvalidArgument
  BatchQuery garbage;
  garbage.query = "zzzz qqqq xxxx vvvv";  // NotFound
  batch.insert(batch.begin() + 1, empty);
  batch.push_back(garbage);

  BatchEngineOptions options;
  options.num_threads = 3;
  BatchEngine engine(&wb_->repager(), options);
  BatchResult result = engine.Run(batch);

  ASSERT_EQ(result.results.size(), 4u);
  EXPECT_EQ(result.num_ok, 2u);
  EXPECT_TRUE(result.results[0].ok());
  EXPECT_TRUE(result.results[1].status().IsInvalidArgument());
  EXPECT_TRUE(result.results[2].ok());
  EXPECT_TRUE(result.results[3].status().IsNotFound());
}

TEST_F(BatchEngineFixture, AggregateStatsSumOverSuccessfulQueries) {
  auto batch = MakeBatch(5);
  BatchEngine engine(&wb_->repager(), {.num_threads = 2});
  BatchResult result = engine.Run(batch);
  uint64_t settled = 0;
  double query_seconds = 0.0;
  for (const auto& r : result.results) {
    ASSERT_TRUE(r.ok());
    settled += r->steiner_stats.nodes_settled;
    query_seconds += r->total_seconds;
  }
  EXPECT_EQ(result.steiner_stats.nodes_settled, settled);
  EXPECT_GT(result.steiner_stats.nodes_settled, 0u);
  EXPECT_NEAR(result.sum_query_seconds, query_seconds, 1e-12);
}

TEST_F(BatchEngineFixture, SingleThreadAndRepeatedRunsWork) {
  auto batch = MakeBatch(3);
  BatchEngine engine(&wb_->repager(), {.num_threads = 1});
  BatchResult first = engine.Run(batch);
  BatchResult second = engine.Run(batch);  // pool persists across batches
  ASSERT_EQ(first.num_ok, batch.size());
  ASSERT_EQ(second.num_ok, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameResult(first.results[i].value(), second.results[i].value());
  }
}

}  // namespace
}  // namespace rpg::core
