#include <gtest/gtest.h>

#include <unordered_set>

#include "core/reading_path.h"
#include "core/seed_reallocator.h"
#include "graph/graph_builder.h"

namespace rpg::core {
namespace {

using graph::PaperId;

// ------------------------------------------------------ SeedReallocator

graph::CitationGraph CoOccurrenceGraph() {
  // Seeds 0, 1, 2. Paper 5 cited by all three; 6 by two; 7 by one.
  graph::GraphBuilder b(8);
  b.AddCitation(0, 5);
  b.AddCitation(1, 5);
  b.AddCitation(2, 5);
  b.AddCitation(0, 6);
  b.AddCitation(1, 6);
  b.AddCitation(2, 7);
  // Seed 1 is cited by seeds 0 and 2 (for the intersection mode).
  b.AddCitation(0, 1);
  b.AddCitation(2, 1);
  return b.Build().value();
}

TEST(CoOccurrenceTest, ThresholdTwoFindsSharedReferences) {
  auto g = CoOccurrenceGraph();
  auto papers = CoOccurrencePapers(g, {0, 1, 2}, 2);
  // 5 (count 3) before 6 (count 2); 7 (count 1) excluded; seed 1 excluded.
  EXPECT_EQ(papers, (std::vector<PaperId>{5, 6}));
}

TEST(CoOccurrenceTest, ThresholdThreeIsStricter) {
  auto g = CoOccurrenceGraph();
  EXPECT_EQ(CoOccurrencePapers(g, {0, 1, 2}, 3),
            (std::vector<PaperId>{5}));
}

TEST(CoOccurrenceTest, SeedsThemselvesExcluded) {
  auto g = CoOccurrenceGraph();
  for (PaperId p : CoOccurrencePapers(g, {0, 1, 2}, 1)) {
    EXPECT_TRUE(p != 0 && p != 1 && p != 2);
  }
}

TEST(CoOccurrenceTest, DuplicateSeedsCountOnce) {
  auto g = CoOccurrenceGraph();
  auto papers = CoOccurrencePapers(g, {0, 0, 0}, 2);
  EXPECT_TRUE(papers.empty());  // one distinct seed -> max count 1
}

TEST(CoOccurrenceTest, InvalidSeedsIgnored) {
  auto g = CoOccurrenceGraph();
  EXPECT_EQ(CoOccurrencePapers(g, {0, 1, 2, 999}, 2),
            (std::vector<PaperId>{5, 6}));
}

TEST(ReallocateTest, ModesProduceExpectedSets) {
  auto g = CoOccurrenceGraph();
  std::vector<PaperId> initial = {0, 1, 2};
  EXPECT_EQ(ReallocateSeeds(g, initial, SeedMode::kInitial, 2), initial);
  EXPECT_EQ(ReallocateSeeds(g, initial, SeedMode::kReallocated, 2),
            (std::vector<PaperId>{5, 6}));
  EXPECT_EQ(ReallocateSeeds(g, initial, SeedMode::kUnion, 2),
            (std::vector<PaperId>{0, 1, 2, 5, 6}));
  // Intersection: seeds co-cited by >= 2 fellow seeds -> seed 1.
  EXPECT_EQ(ReallocateSeeds(g, initial, SeedMode::kIntersection, 2),
            (std::vector<PaperId>{1}));
}

TEST(ReallocateTest, EmptyModesFallBackToInitial) {
  graph::GraphBuilder b(3);  // no citations at all
  auto g = b.Build().value();
  std::vector<PaperId> initial = {0, 1};
  EXPECT_EQ(ReallocateSeeds(g, initial, SeedMode::kReallocated, 2), initial);
  EXPECT_EQ(ReallocateSeeds(g, initial, SeedMode::kIntersection, 2), initial);
}

// ---------------------------------------------------------- ReadingPath

steiner::SteinerResult ChainTree() {
  steiner::SteinerResult tree;
  tree.nodes = {0, 1, 2};
  tree.edges = {{0, 1}, {1, 2}};
  return tree;
}

TEST(ReadingPathTest, EdgesPointOldToNew) {
  // Years: paper 0 newest, paper 2 oldest.
  std::vector<uint16_t> years = {2020, 2010, 2000};
  ReadingPath path(ChainTree(), years);
  // 2 (2000) -> 1 (2010) -> 0 (2020).
  EXPECT_EQ(path.edges(),
            (std::vector<std::pair<PaperId, PaperId>>{{1, 0}, {2, 1}}));
  EXPECT_EQ(path.Roots(), (std::vector<PaperId>{2}));
}

TEST(ReadingPathTest, YearTiesBreakById) {
  std::vector<uint16_t> years = {2010, 2010, 2010};
  ReadingPath path(ChainTree(), years);
  EXPECT_EQ(path.edges(),
            (std::vector<std::pair<PaperId, PaperId>>{{0, 1}, {1, 2}}));
}

TEST(ReadingPathTest, FlattenedOrderIsTopological) {
  std::vector<uint16_t> years = {2020, 2010, 2000};
  ReadingPath path(ChainTree(), years);
  auto order = path.FlattenedOrder(years);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<PaperId>{2, 1, 0}));
}

TEST(ReadingPathTest, FlattenedOrderPrefersOlderAmongReady) {
  // Star: 3 is the old root; children 0 (2015), 1 (2005), 2 (2010).
  steiner::SteinerResult tree;
  tree.nodes = {0, 1, 2, 3};
  tree.edges = {{0, 3}, {1, 3}, {2, 3}};
  std::vector<uint16_t> years = {2015, 2005, 2010, 1990};
  ReadingPath path(tree, years);
  auto order = path.FlattenedOrder(years);
  EXPECT_EQ(order, (std::vector<PaperId>{3, 1, 2, 0}));
}

TEST(ReadingPathTest, EmptyTree) {
  steiner::SteinerResult tree;
  std::vector<uint16_t> years;
  ReadingPath path(tree, years);
  EXPECT_TRUE(path.empty());
  EXPECT_TRUE(path.Roots().empty());
  EXPECT_TRUE(path.FlattenedOrder(years).empty());
}

TEST(ReadingPathTest, SingletonNodeIsItsOwnRoot) {
  steiner::SteinerResult tree;
  tree.nodes = {7};
  std::vector<uint16_t> years(8, 2000);
  ReadingPath path(tree, years);
  EXPECT_EQ(path.Roots(), (std::vector<PaperId>{7}));
  EXPECT_EQ(path.FlattenedOrder(years), (std::vector<PaperId>{7}));
}

TEST(ReadingPathTest, AsciiRendersAllNodesAndHighlights) {
  std::vector<uint16_t> years = {2020, 2010, 2000};
  std::vector<std::string> titles = {"newest", "middle", "oldest"};
  ReadingPath path(ChainTree(), years);
  PaperInfo info{&titles, &years};
  std::string ascii = path.ToAscii(info, {1});
  EXPECT_NE(ascii.find("oldest (2000)"), std::string::npos);
  EXPECT_NE(ascii.find("* middle (2010)"), std::string::npos);
  EXPECT_NE(ascii.find("- newest (2020)"), std::string::npos);
}

TEST(ReadingPathTest, DotContainsDirectedEdges) {
  std::vector<uint16_t> years = {2020, 2010, 2000};
  ReadingPath path(ChainTree(), years);
  PaperInfo info{nullptr, &years};
  std::string dot = path.ToDot(info, {2});
  EXPECT_NE(dot.find("n2 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n0"), std::string::npos);
  EXPECT_NE(dot.find("palegreen"), std::string::npos);
}

TEST(ReadingPathTest, JsonIsWellFormedish) {
  std::vector<uint16_t> years = {2020, 2010, 2000};
  std::vector<std::string> titles = {"a", "b", "c"};
  ReadingPath path(ChainTree(), years);
  PaperInfo info{&titles, &years};
  std::string json = path.ToJson(info);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"read_first\":"), std::string::npos);
  EXPECT_NE(json.find("\"title\":\"c\""), std::string::npos);
}

TEST(ReadingPathTest, MultiPathNodeRenderedOnceWithBackReference) {
  // Diamond: 3 old root, 1 and 2 middle, 0 newest reached twice.
  steiner::SteinerResult tree;
  tree.nodes = {0, 1, 2, 3};
  tree.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  std::vector<uint16_t> years = {2020, 2010, 2012, 2000};
  ReadingPath path(tree, years);
  PaperInfo info{nullptr, &years};
  std::string ascii = path.ToAscii(info);
  // Node 0 appears twice, once marked as a back-reference '^'.
  EXPECT_NE(ascii.find("^"), std::string::npos);
}

}  // namespace
}  // namespace rpg::core
