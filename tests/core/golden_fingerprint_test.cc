// Golden-fingerprint pinning of the full per-query pipeline (ISSUE 9
// satellite): the serial-vs-batched identity suites prove both paths
// agree with EACH OTHER, but a hot-path rewrite could change both in
// lockstep and hide behind that equality. This suite hashes the actual
// RePagerResult contents (rank order, reading-path nodes/edges,
// terminals, seeds, subgraph shape, quantized tree cost) and the raw
// Eq. (2) Con() counts over every citation edge into FNV-1a-64
// fingerprints and compares them against constants captured BEFORE the
// galloping/bitmap common-neighbor kernels, the d-ary Dijkstra heap and
// the flat-hash sweep landed. A kernel bug that perturbs any count,
// cost, tree or rank order anywhere in the sample trips this even if
// every differential suite still self-agrees.
//
// If a deliberate semantic change (new ranking rule, different weight
// formula, corpus generator change) moves these values, re-capture by
// running with RPG_PRINT_FINGERPRINTS=1 and update the constants —
// alongside prose in the PR explaining why the outputs legitimately
// changed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "core/batch_engine.h"
#include "core/repager.h"
#include "eval/workbench.h"

namespace rpg::core {
namespace {

/// FNV-1a over a stream of 64-bit words (same idiom as the snapshot
/// checksums: offset basis 1469598103934665603, prime 1099511628211).
class Fnv64 {
 public:
  void Add(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ULL;
    }
  }
  void AddCost(double cost) {
    // Quantized, not raw bits: identical arithmetic is the goal, but a
    // 1-in-the-last-ulp difference from a legitimate reassociation
    // should not masquerade as a kernel bug.
    Add(static_cast<uint64_t>(std::llround(cost * 1e6)));
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ULL;
};

class GoldenFingerprintFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Deliberately the same corpus shape + seed as the batch-engine
    // suite so a future reader can line the two up.
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 60;
    options.corpus.papers_per_area = 20;
    options.corpus.papers_per_domain = 15;
    options.corpus.num_surveys = 100;
    options.corpus.seed = 33;
    wb_ = eval::Workbench::Create(options).value().release();
  }
  static void TearDownTestSuite() {
    delete wb_;
    wb_ = nullptr;
  }

  static void MaybePrint(const char* name, uint64_t value) {
    if (std::getenv("RPG_PRINT_FINGERPRINTS") != nullptr) {
      std::printf("FINGERPRINT %s = 0x%016llxULL\n", name,
                  static_cast<unsigned long long>(value));
    }
  }

  static const eval::Workbench* wb_;
};

const eval::Workbench* GoldenFingerprintFixture::wb_ = nullptr;

/// Captured at PR 8 (commit c04a55c), before the intersect-kernel /
/// d-ary-heap / flat-hash rewrite of the per-query hot path.
constexpr uint64_t kGoldenPipeline = 0x78bce4bad3f6d61aULL;
constexpr uint64_t kGoldenConCounts = 0xfb3dc3157e7d4247ULL;

TEST_F(GoldenFingerprintFixture, PipelineResultsMatchGolden) {
  Fnv64 fp;
  const size_t n = std::min<size_t>(wb_->bank().size(), 12);
  ASSERT_GT(n, 0u);
  QueryScratch scratch;
  for (size_t i = 0; i < n; ++i) {
    const auto& entry = wb_->bank().Get(i);
    RePagerOptions options;
    options.year_cutoff = entry.year;
    options.exclude = {entry.paper};
    auto result = wb_->repager().Generate(entry.query, options, &scratch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const RePagerResult& r = result.value();
    fp.Add(r.ranked.size());
    for (graph::PaperId p : r.ranked) fp.Add(p);
    for (graph::PaperId p : r.initial_seeds) fp.Add(p);
    for (graph::PaperId p : r.terminals) fp.Add(p);
    fp.Add(r.path.nodes().size());
    for (graph::PaperId p : r.path.nodes()) fp.Add(p);
    for (const auto& [a, b] : r.path.edges()) {
      fp.Add(a);
      fp.Add(b);
    }
    fp.Add(r.subgraph_nodes);
    fp.Add(r.subgraph_edges);
  }
  MaybePrint("kGoldenPipeline", fp.value());
  EXPECT_EQ(fp.value(), kGoldenPipeline)
      << "pipeline output changed — if intentional, re-capture with "
         "RPG_PRINT_FINGERPRINTS=1 (see file header)";
}

TEST_F(GoldenFingerprintFixture, ConCountsOverEveryEdgeMatchGolden) {
  // The Eq. (2) relatedness count for every citation edge, both
  // orientations: this is the exact integer surface the intersection
  // kernels compute, so a galloping/bitmap bug cannot hide behind
  // downstream cost smoothing.
  const auto& g = wb_->corpus().citations;
  const auto& weights = wb_->weights();
  Fnv64 fp;
  rank::ConScratch con_scratch;
  for (graph::PaperId u = 0; u < g.num_nodes(); ++u) {
    for (graph::PaperId v : g.OutNeighbors(u)) {
      int c = weights.Con(u, v);
      fp.Add(static_cast<uint64_t>(c));
      // The scratch/bitmap path must agree count-for-count with the
      // scratch-free kernels, and the capped two-phase count must be
      // order-independent.
      EXPECT_EQ(c, weights.Con(u, v, &con_scratch));
      fp.AddCost(weights.EdgeCost(u, v));
    }
  }
  MaybePrint("kGoldenConCounts", fp.value());
  EXPECT_EQ(fp.value(), kGoldenConCounts)
      << "Con()/EdgeCost() changed — if intentional, re-capture with "
         "RPG_PRINT_FINGERPRINTS=1 (see file header)";
}

TEST_F(GoldenFingerprintFixture, BatchedPipelineMatchesSameGolden) {
  // The same fingerprint computed through BatchEngine (4 workers,
  // scratch reuse) must land on the same constant: serial == golden and
  // batched == golden pins serial == batched through an independent
  // witness rather than mutual comparison.
  Fnv64 fp;
  const size_t n = std::min<size_t>(wb_->bank().size(), 12);
  std::vector<BatchQuery> batch;
  for (size_t i = 0; i < n; ++i) {
    const auto& entry = wb_->bank().Get(i);
    BatchQuery q;
    q.query = entry.query;
    q.options.year_cutoff = entry.year;
    q.options.exclude = {entry.paper};
    batch.push_back(std::move(q));
  }
  BatchEngine engine(&wb_->repager(), {.num_threads = 4});
  BatchResult result = engine.Run(batch);
  ASSERT_EQ(result.num_ok, batch.size());
  for (const auto& r_or : result.results) {
    ASSERT_TRUE(r_or.ok());
    const RePagerResult& r = r_or.value();
    fp.Add(r.ranked.size());
    for (graph::PaperId p : r.ranked) fp.Add(p);
    for (graph::PaperId p : r.initial_seeds) fp.Add(p);
    for (graph::PaperId p : r.terminals) fp.Add(p);
    fp.Add(r.path.nodes().size());
    for (graph::PaperId p : r.path.nodes()) fp.Add(p);
    for (const auto& [a, b] : r.path.edges()) {
      fp.Add(a);
      fp.Add(b);
    }
    fp.Add(r.subgraph_nodes);
    fp.Add(r.subgraph_edges);
  }
  EXPECT_EQ(fp.value(), kGoldenPipeline);
}

}  // namespace
}  // namespace rpg::core
