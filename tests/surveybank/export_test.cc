#include "surveybank/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "surveybank/builder.h"
#include "synth/corpus_generator.h"

namespace rpg::surveybank {
namespace {

class ExportFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusOptions options;
    options.hierarchy.areas_per_domain = 1;
    options.hierarchy.topics_per_area = 2;
    options.papers_per_topic = 30;
    options.papers_per_area = 10;
    options.papers_per_domain = 8;
    options.num_surveys = 25;
    options.seed = 21;
    corpus_ = synth::GenerateCorpus(options).value().release();
    bank_ = new SurveyBank(BuildSurveyBank(*corpus_).value());
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete corpus_;
  }
  static std::string TempPath(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
  static const synth::Corpus* corpus_;
  static const SurveyBank* bank_;
};

const synth::Corpus* ExportFixture::corpus_ = nullptr;
const SurveyBank* ExportFixture::bank_ = nullptr;

TEST_F(ExportFixture, BankJsonlHasOneRecordPerEntry) {
  std::string path = TempPath("rpg_bank.jsonl");
  ASSERT_TRUE(ExportSurveyBankJsonl(*bank_, path).ok());
  auto count = CountJsonlRecords(path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), bank_->size());
  std::remove(path.c_str());
}

TEST_F(ExportFixture, BankJsonlLinesAreObjectsWithLabels) {
  std::string path = TempPath("rpg_bank2.jsonl");
  ASSERT_TRUE(ExportSurveyBankJsonl(*bank_, path).ok());
  std::ifstream is(path);
  std::string line;
  size_t checked = 0;
  while (std::getline(is, line) && checked < 5) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"query\":"), std::string::npos);
    EXPECT_NE(line.find("\"l1\":["), std::string::npos);
    EXPECT_NE(line.find("\"l3\":["), std::string::npos);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  std::remove(path.c_str());
}

TEST_F(ExportFixture, PapersJsonlCoversCorpus) {
  std::string path = TempPath("rpg_papers.jsonl");
  ASSERT_TRUE(ExportPapersJsonl(*corpus_, path).ok());
  auto count = CountJsonlRecords(path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), corpus_->num_papers());
  std::remove(path.c_str());
}

TEST_F(ExportFixture, MissingVenueSerializesAsNull) {
  std::string path = TempPath("rpg_papers2.jsonl");
  ASSERT_TRUE(ExportPapersJsonl(*corpus_, path).ok());
  std::ifstream is(path);
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"venue\":null"), std::string::npos);
  EXPECT_NE(all.find("\"venue\":\"VENUE-"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ExportFixture, UnwritablePathFails) {
  EXPECT_TRUE(ExportSurveyBankJsonl(*bank_, "/nonexistent/dir/x.jsonl")
                  .IsIoError());
  EXPECT_TRUE(ExportPapersJsonl(*corpus_, "/nonexistent/dir/x.jsonl")
                  .IsIoError());
  EXPECT_TRUE(CountJsonlRecords("/nonexistent/x.jsonl").status().IsIoError());
}

}  // namespace
}  // namespace rpg::surveybank
