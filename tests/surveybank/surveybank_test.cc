#include <gtest/gtest.h>

#include <algorithm>

#include "surveybank/builder.h"
#include "surveybank/stats.h"
#include "surveybank/survey_bank.h"
#include "synth/corpus_generator.h"

namespace rpg::surveybank {
namespace {

class BankFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusOptions options;
    options.hierarchy.areas_per_domain = 2;
    options.hierarchy.topics_per_area = 2;
    options.papers_per_topic = 40;
    options.papers_per_area = 15;
    options.papers_per_domain = 10;
    options.num_surveys = 80;
    options.seed = 11;
    corpus_ = synth::GenerateCorpus(options).value().release();
    bank_ = new SurveyBank(BuildSurveyBank(*corpus_).value());
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete corpus_;
  }
  static const synth::Corpus* corpus_;
  static const SurveyBank* bank_;
};

const synth::Corpus* BankFixture::corpus_ = nullptr;
const SurveyBank* BankFixture::bank_ = nullptr;

TEST_F(BankFixture, FunnelCountersAreConsistent) {
  const BuildStats& s = bank_->build_stats();
  EXPECT_GE(s.initial_collection, s.after_deduplication);
  EXPECT_EQ(s.after_deduplication, corpus_->surveys.size());
  EXPECT_LE(s.final_dataset, s.after_deduplication);
  EXPECT_EQ(s.final_dataset, bank_->size());
  EXPECT_GE(s.after_deduplication,
            s.final_dataset + s.dropped_unparseable + s.dropped_page_range);
}

TEST_F(BankFixture, FilteringDropsSomeButNotAll) {
  EXPECT_GT(bank_->size(), 0u);
  EXPECT_LT(bank_->size(), corpus_->surveys.size());
}

TEST_F(BankFixture, LabelsAreNested) {
  for (const auto& e : bank_->entries()) {
    // L3 ⊆ L2 ⊆ L1 (each Li sorted).
    EXPECT_TRUE(std::includes(e.label_l1.begin(), e.label_l1.end(),
                              e.label_l2.begin(), e.label_l2.end()));
    EXPECT_TRUE(std::includes(e.label_l2.begin(), e.label_l2.end(),
                              e.label_l3.begin(), e.label_l3.end()));
    EXPECT_GE(e.label_l1.size(), 20u);  // every survey cites >= 20 papers
  }
}

TEST_F(BankFixture, LabelsMatchOccurrenceCounts) {
  for (const auto& e : bank_->entries()) {
    int index = corpus_->SurveyIndexOf(e.paper);
    ASSERT_GE(index, 0);
    const auto& record = corpus_->surveys[static_cast<size_t>(index)];
    size_t expect_l2 = 0, expect_l3 = 0;
    for (uint32_t occ : record.occurrence) {
      if (occ >= 2) ++expect_l2;
      if (occ >= 3) ++expect_l3;
    }
    EXPECT_EQ(e.label_l1.size(), record.references.size());
    EXPECT_EQ(e.label_l2.size(), expect_l2);
    EXPECT_EQ(e.label_l3.size(), expect_l3);
  }
}

TEST_F(BankFixture, QueriesComeFromTitles) {
  for (const auto& e : bank_->entries()) {
    ASSERT_FALSE(e.key_phrases.empty());
    EXPECT_FALSE(e.query.empty());
    // The survey's topic phrase is recovered as a key phrase.
    const auto& phrase = corpus_->topics.Get(e.topic).phrase;
    bool found = false;
    for (const auto& kp : e.key_phrases) found |= kp == phrase;
    EXPECT_TRUE(found) << e.title << " -> " << e.query;
  }
}

TEST_F(BankFixture, ScoreFormulaMatchesPaper) {
  for (const auto& e : bank_->entries()) {
    double citations =
        static_cast<double>(corpus_->citations.CitationCount(e.paper));
    double expected = citations / (2020 - e.year + 1);
    if (e.year <= 2020) {
      EXPECT_NEAR(e.score, expected, 1e-9);
    }
  }
}

TEST_F(BankFixture, HighScoreSubsetIsSortedAndBounded) {
  auto subset = bank_->HighScoreSubset(10);
  ASSERT_LE(subset.size(), 10u);
  for (size_t i = 1; i < subset.size(); ++i) {
    EXPECT_GE(bank_->Get(subset[i - 1]).score, bank_->Get(subset[i]).score);
  }
  auto all = bank_->HighScoreSubset(bank_->size() + 100);
  EXPECT_EQ(all.size(), bank_->size());
}

TEST_F(BankFixture, ByDomainPartitionsEntries) {
  size_t total = 0;
  for (uint32_t d = 0; d < 10; ++d) {
    for (size_t i : bank_->ByDomain(d)) {
      EXPECT_EQ(bank_->Get(i).domain_index, d);
      ++total;
    }
  }
  total += bank_->ByDomain(kUncertainDomain).size();
  EXPECT_EQ(total, bank_->size());
}

TEST_F(BankFixture, UncertainBucketIsLarge) {
  // The default missing-venue rate is 64.2% (Table I).
  double uncertain = static_cast<double>(
      bank_->ByDomain(kUncertainDomain).size());
  EXPECT_GT(uncertain / static_cast<double>(bank_->size()), 0.45);
}

TEST_F(BankFixture, StatsTotalsMatchBank) {
  SurveyBankStats stats = ComputeStats(*bank_, *corpus_);
  size_t domain_total = 0;
  for (size_t c : stats.domain_counts) domain_total += c;
  EXPECT_EQ(domain_total, bank_->size());
  EXPECT_EQ(stats.publication_years.total(), bank_->size());
  EXPECT_GT(stats.avg_references, 20.0);
  EXPECT_GE(stats.fraction_recent_20y, 0.5);
  std::string table = FormatTableOne(stats);
  EXPECT_NE(table.find("Uncertain Topics"), std::string::npos);
  EXPECT_NE(table.find("Artificial Intelligence"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
}

TEST(BuilderOptionsTest, RejectsInvertedPageRange) {
  synth::CorpusOptions corpus_options;
  corpus_options.hierarchy.areas_per_domain = 1;
  corpus_options.hierarchy.topics_per_area = 1;
  corpus_options.papers_per_topic = 10;
  corpus_options.papers_per_area = 5;
  corpus_options.papers_per_domain = 5;
  corpus_options.num_surveys = 5;
  auto corpus = synth::GenerateCorpus(corpus_options).value();
  BuilderOptions options;
  options.min_pages = 200;
  options.max_pages = 100;
  EXPECT_TRUE(
      BuildSurveyBank(*corpus, options).status().IsInvalidArgument());
}

TEST(BuilderOptionsTest, ZeroDefectRatesKeepEverything) {
  synth::CorpusOptions corpus_options;
  corpus_options.hierarchy.areas_per_domain = 1;
  corpus_options.hierarchy.topics_per_area = 1;
  corpus_options.papers_per_topic = 20;
  corpus_options.papers_per_area = 8;
  corpus_options.papers_per_domain = 5;
  corpus_options.num_surveys = 12;
  auto corpus = synth::GenerateCorpus(corpus_options).value();
  BuilderOptions options;
  options.duplicate_rate = 0.0;
  options.parse_failure_rate = 0.0;
  options.pages_stddev = 0.0;  // everyone right at the mean, in range
  auto bank = BuildSurveyBank(*corpus, options).value();
  EXPECT_EQ(bank.size(), corpus->surveys.size());
}

}  // namespace
}  // namespace rpg::surveybank
