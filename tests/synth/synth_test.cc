#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_set>

#include "snapshot/checksum.h"
#include "synth/corpus_generator.h"
#include "synth/topic_hierarchy.h"
#include "synth/venue_table.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace rpg::synth {
namespace {

// A small corpus shared by the property tests (built once).
class CorpusFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.hierarchy.areas_per_domain = 2;
    options.hierarchy.topics_per_area = 2;
    options.papers_per_topic = 40;
    options.papers_per_area = 15;
    options.papers_per_domain = 10;
    options.num_surveys = 60;
    options.seed = 7;
    corpus_ = GenerateCorpus(options).value().release();
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static const Corpus* corpus_;
};

const Corpus* CorpusFixture::corpus_ = nullptr;

// ------------------------------------------------------- TopicHierarchy

TEST(TopicHierarchyTest, ShapeMatchesOptions) {
  TopicHierarchyOptions options;
  options.areas_per_domain = 3;
  options.topics_per_area = 4;
  TopicHierarchy h(options);
  EXPECT_EQ(h.Domains().size(), 10u);
  EXPECT_EQ(h.AtLevel(TopicLevel::kArea).size(), 30u);
  EXPECT_EQ(h.AtLevel(TopicLevel::kTopic).size(), 120u);
  EXPECT_EQ(h.size(), 1u + 10u + 30u + 120u);
}

TEST(TopicHierarchyTest, PhrasesAreUniquePerDomain) {
  TopicHierarchy h;
  std::set<std::string> phrases;
  for (TopicId a : h.AtLevel(TopicLevel::kArea)) {
    EXPECT_TRUE(phrases.insert(h.Get(a).phrase).second) << h.Get(a).phrase;
  }
  for (TopicId t : h.AtLevel(TopicLevel::kTopic)) {
    EXPECT_TRUE(phrases.insert(h.Get(t).phrase).second) << h.Get(t).phrase;
  }
}

TEST(TopicHierarchyTest, PhrasesAvoidStopwords) {
  TopicHierarchy h;
  for (TopicId t : h.AtLevel(TopicLevel::kTopic)) {
    for (const auto& tok : text::Tokenize(h.Get(t).phrase)) {
      EXPECT_FALSE(text::IsStopword(tok)) << tok;
    }
  }
}

TEST(TopicHierarchyTest, AncestryNavigation) {
  TopicHierarchy h;
  TopicId leaf = h.AtLevel(TopicLevel::kTopic).front();
  TopicId area = h.AreaOf(leaf);
  TopicId domain = h.DomainOf(leaf);
  ASSERT_NE(area, kInvalidTopic);
  ASSERT_NE(domain, kInvalidTopic);
  EXPECT_EQ(h.Get(leaf).parent, area);
  EXPECT_EQ(h.Get(area).parent, domain);
  EXPECT_TRUE(h.IsAncestorOf(area, leaf));
  EXPECT_TRUE(h.IsAncestorOf(domain, leaf));
  EXPECT_TRUE(h.IsAncestorOf(h.root(), leaf));
  EXPECT_FALSE(h.IsAncestorOf(leaf, area));
  EXPECT_EQ(h.AreaOf(domain), kInvalidTopic);
  EXPECT_EQ(h.DomainOf(h.root()), kInvalidTopic);
}

TEST(TopicHierarchyTest, DeterministicForSeed) {
  TopicHierarchy a, b;
  ASSERT_EQ(a.size(), b.size());
  for (TopicId t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.Get(t).phrase, b.Get(t).phrase);
  }
}

// ------------------------------------------------------------ VenueTable

TEST(VenueTableTest, SizeAndScores) {
  VenueTable venues;
  EXPECT_EQ(venues.size(), 690u);  // "around 700 top venues"
  for (VenueId v = 0; v < venues.size(); ++v) {
    double s = venues.Score(v);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_DOUBLE_EQ(venues.Score(kNoVenue), 0.0);
}

TEST(VenueTableTest, TierScoresOrdered) {
  EXPECT_GT(VenueTable::TierScore(1), VenueTable::TierScore(2));
  EXPECT_GT(VenueTable::TierScore(2), VenueTable::TierScore(3));
}

TEST(VenueTableTest, TierAStatisticallyOutscoresTierC) {
  VenueTable venues;
  double tier_a = 0.0, tier_c = 0.0;
  size_t na = 0, nc = 0;
  for (VenueId v = 0; v < venues.size(); ++v) {
    if (venues.Get(v).ccf_tier == 1) {
      tier_a += venues.Score(v);
      ++na;
    } else if (venues.Get(v).ccf_tier == 3) {
      tier_c += venues.Score(v);
      ++nc;
    }
  }
  EXPECT_GT(tier_a / na, tier_c / nc);
}

TEST(VenueTableTest, ByDomainTierPartitions) {
  VenueTable venues;
  size_t total = 0;
  for (uint32_t d = 0; d < 10; ++d) {
    for (int tier = 1; tier <= 3; ++tier) {
      for (VenueId v : venues.ByDomainTier(d, tier)) {
        EXPECT_EQ(venues.Get(v).domain_index, d);
        EXPECT_EQ(venues.Get(v).ccf_tier, tier);
        ++total;
      }
    }
  }
  EXPECT_EQ(total, venues.size());
}

// --------------------------------------------------------------- Corpus

TEST_F(CorpusFixture, PaperAndSurveyCounts) {
  // 10 domains * (10 classics + 2 areas * (15 + 2 topics * 40)) + surveys.
  size_t expected_regular = 10 * (10 + 2 * (15 + 2 * 40));
  EXPECT_EQ(corpus_->num_papers(), expected_regular + 60);
  EXPECT_EQ(corpus_->surveys.size(), 60u);
  EXPECT_EQ(corpus_->citations.num_nodes(), corpus_->num_papers());
}

TEST_F(CorpusFixture, CitationsPointToOlderPapers) {
  const auto& g = corpus_->citations;
  for (graph::PaperId u = 0; u < g.num_nodes(); ++u) {
    for (graph::PaperId v : g.OutNeighbors(u)) {
      EXPECT_LE(corpus_->papers[v].year, corpus_->papers[u].year)
          << u << " cites younger " << v;
    }
  }
}

TEST_F(CorpusFixture, IdsAreChronological) {
  for (size_t i = 1; i < corpus_->num_papers(); ++i) {
    EXPECT_LE(corpus_->papers[i - 1].year, corpus_->papers[i].year);
  }
}

TEST_F(CorpusFixture, SurveyRecordsConsistent) {
  for (const auto& record : corpus_->surveys) {
    EXPECT_TRUE(corpus_->papers[record.paper].is_survey);
    EXPECT_EQ(record.references.size(), record.occurrence.size());
    EXPECT_GE(record.references.size(), 20u);
    std::unordered_set<graph::PaperId> unique(record.references.begin(),
                                              record.references.end());
    EXPECT_EQ(unique.size(), record.references.size()) << "duplicate refs";
    for (uint32_t occ : record.occurrence) EXPECT_GE(occ, 1u);
    // Every reference is also a citation edge of the survey node.
    for (graph::PaperId r : record.references) {
      EXPECT_TRUE(corpus_->citations.HasEdge(record.paper, r));
    }
  }
}

TEST_F(CorpusFixture, SurveyTitlesEmbedTopicPhrase) {
  for (const auto& record : corpus_->surveys) {
    const auto& title = corpus_->papers[record.paper].title;
    const auto& phrase = corpus_->topics.Get(record.topic).phrase;
    EXPECT_NE(title.find(phrase), std::string::npos)
        << title << " / " << phrase;
  }
}

TEST_F(CorpusFixture, TitlesAreNonEmptyAndYearsInRange) {
  CorpusOptions defaults;
  for (const auto& paper : corpus_->papers) {
    EXPECT_FALSE(paper.title.empty());
    EXPECT_FALSE(paper.abstract_text.empty());
    EXPECT_GE(paper.year, defaults.min_year);
    EXPECT_LE(paper.year, defaults.max_year);
    EXPECT_NE(paper.topic, kInvalidTopic);
  }
}

TEST_F(CorpusFixture, VenueDomainsMatchTopicDomains) {
  for (const auto& paper : corpus_->papers) {
    if (paper.venue == kNoVenue) continue;
    EXPECT_EQ(corpus_->venues.Get(paper.venue).domain_index,
              corpus_->topics.Get(paper.topic).domain_index);
  }
}

TEST_F(CorpusFixture, SomeVenuesMissing) {
  size_t missing = 0;
  for (const auto& paper : corpus_->papers) {
    if (paper.venue == kNoVenue) ++missing;
  }
  double fraction =
      static_cast<double>(missing) / static_cast<double>(corpus_->num_papers());
  EXPECT_GT(fraction, 0.5);  // default is 64.2%
  EXPECT_LT(fraction, 0.8);
}

TEST_F(CorpusFixture, SurveyIndexLookup) {
  const auto& record = corpus_->surveys.front();
  EXPECT_EQ(corpus_->SurveyIndexOf(record.paper), 0);
  EXPECT_EQ(corpus_->SurveyIndexOf(graph::kInvalidPaper), -1);
}

TEST(CorpusGeneratorTest, DeterministicForSeed) {
  CorpusOptions options;
  options.hierarchy.areas_per_domain = 1;
  options.hierarchy.topics_per_area = 1;
  options.papers_per_topic = 20;
  options.papers_per_area = 5;
  options.papers_per_domain = 5;
  options.num_surveys = 10;
  options.seed = 99;
  auto a = GenerateCorpus(options).value();
  auto b = GenerateCorpus(options).value();
  ASSERT_EQ(a->num_papers(), b->num_papers());
  EXPECT_EQ(a->citations.num_edges(), b->citations.num_edges());
  for (size_t i = 0; i < a->num_papers(); ++i) {
    EXPECT_EQ(a->papers[i].title, b->papers[i].title);
    EXPECT_EQ(a->papers[i].year, b->papers[i].year);
  }
}

TEST(CorpusGeneratorTest, SeedChangesOutput) {
  CorpusOptions options;
  options.hierarchy.areas_per_domain = 1;
  options.hierarchy.topics_per_area = 1;
  options.papers_per_topic = 20;
  options.papers_per_area = 5;
  options.papers_per_domain = 5;
  options.num_surveys = 10;
  options.seed = 1;
  auto a = GenerateCorpus(options).value();
  options.seed = 2;
  auto b = GenerateCorpus(options).value();
  size_t different_titles = 0;
  for (size_t i = 0; i < a->num_papers() && i < b->num_papers(); ++i) {
    if (a->papers[i].title != b->papers[i].title) ++different_titles;
  }
  EXPECT_GT(different_titles, 0u);
}

TEST(CorpusGeneratorTest, RejectsBadOptions) {
  CorpusOptions options;
  options.papers_per_topic = 0;
  EXPECT_TRUE(GenerateCorpus(options).status().IsInvalidArgument());
  options = CorpusOptions();
  options.min_year = 2030;
  EXPECT_TRUE(GenerateCorpus(options).status().IsInvalidArgument());
}

TEST(CorpusGeneratorTest, TableOneWeightsMatchPaper) {
  const auto& w = TableOneDomainWeights();
  ASSERT_EQ(w.size(), 10u);
  EXPECT_DOUBLE_EQ(w[0], 12.3);  // Artificial Intelligence
  EXPECT_DOUBLE_EQ(w[9], 0.9);   // HCI
}

// ------------------------------------------------------ the scale axis

/// Order-sensitive digest of everything the generator emits: papers
/// (text, year, venue, topic, survey flag), every citation edge, and
/// every survey reference list. Two corpora with equal fingerprints are
/// byte-identical for all downstream purposes.
uint64_t CorpusFingerprint(const Corpus& c) {
  uint64_t h = snapshot::Fnv1a64(nullptr, 0);
  auto mix = [&h](const void* data, size_t size) {
    h = snapshot::Fnv1a64(data, size, h);
  };
  auto mix_str = [&](const std::string& s) { mix(s.data(), s.size()); };
  for (const Paper& p : c.papers) {
    mix_str(p.title);
    mix_str(p.abstract_text);
    mix(&p.year, sizeof(p.year));
    mix(&p.venue, sizeof(p.venue));
    mix(&p.topic, sizeof(p.topic));
    mix(&p.is_survey, sizeof(p.is_survey));
  }
  for (graph::PaperId u = 0; u < c.citations.num_nodes(); ++u) {
    auto out = c.citations.OutNeighbors(u);
    mix(out.data(), out.size() * sizeof(graph::PaperId));
  }
  for (const SurveyRecord& s : c.surveys) {
    mix(&s.paper, sizeof(s.paper));
    mix(s.references.data(),
        s.references.size() * sizeof(graph::PaperId));
    mix(s.occurrence.data(), s.occurrence.size() * sizeof(uint32_t));
  }
  return h;
}

TEST(ScaledCorpusTest, SameSeedSameBytesAtSmallAndLargeScale) {
  for (uint64_t target : {1000ull, 100000ull}) {
    CorpusOptions options = ScaledCorpusOptions(target, 99);
    auto a = GenerateCorpus(options).value();
    auto b = GenerateCorpus(options).value();
    ASSERT_EQ(a->num_papers(), b->num_papers()) << target;
    EXPECT_EQ(CorpusFingerprint(*a), CorpusFingerprint(*b)) << target;
    // And the options derivation itself is deterministic.
    CorpusOptions again = ScaledCorpusOptions(target, 99);
    EXPECT_EQ(options.papers_per_topic, again.papers_per_topic);
    EXPECT_EQ(options.hierarchy.areas_per_domain,
              again.hierarchy.areas_per_domain);
    EXPECT_EQ(options.num_surveys, again.num_surveys);
  }
}

TEST(ScaledCorpusTest, LandsNearTargetAcrossTheSweep) {
  for (uint64_t target : {1000ull, 20000ull, 100000ull}) {
    auto corpus = GenerateCorpus(ScaledCorpusOptions(target, 3)).value();
    const double papers = static_cast<double>(corpus->num_papers());
    EXPECT_GT(papers, 0.85 * static_cast<double>(target)) << target;
    EXPECT_LT(papers, 1.15 * static_cast<double>(target)) << target;
  }
}

TEST(ScaledCorpusTest, LargeScaleDistributionsSane) {
  CorpusOptions options = ScaledCorpusOptions(100000, 12345);
  auto corpus = GenerateCorpus(options).value();
  const size_t n = corpus->num_papers();
  ASSERT_GT(n, 85000u);

  // Year range respected and both halves populated.
  size_t old_half = 0;
  for (const Paper& p : corpus->papers) {
    ASSERT_GE(p.year, options.min_year);
    ASSERT_LE(p.year, options.max_year);
    if (p.year < (options.min_year + options.max_year) / 2) ++old_half;
  }
  EXPECT_GT(old_half, n / 20);
  EXPECT_LT(old_half, n - n / 20);

  // Citation in-degree is heavily skewed (preferential attachment):
  // the most-cited paper sits far above the mean.
  size_t max_indeg = 0;
  for (graph::PaperId p = 0; p < corpus->citations.num_nodes(); ++p) {
    max_indeg = std::max(max_indeg, corpus->citations.InDegree(p));
  }
  const double mean_indeg =
      static_cast<double>(corpus->citations.num_edges()) /
      static_cast<double>(n);
  EXPECT_GT(static_cast<double>(max_indeg), 20.0 * mean_indeg);

  // Venue sparsity tracks the Table I "Uncertain Topics" fraction.
  size_t missing = 0;
  for (const Paper& p : corpus->papers) {
    if (p.venue == kNoVenue) ++missing;
  }
  const double missing_fraction =
      static_cast<double>(missing) / static_cast<double>(n);
  EXPECT_NEAR(missing_fraction, options.missing_venue_fraction, 0.05);

  // Survey allocation adds up.
  EXPECT_EQ(corpus->surveys.size(),
            static_cast<size_t>(options.num_surveys));
}

}  // namespace
}  // namespace rpg::synth
