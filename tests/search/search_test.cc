#include <gtest/gtest.h>

#include "search/bm25.h"
#include "search/inverted_index.h"
#include "search/search_engine.h"

namespace rpg::search {
namespace {

// ------------------------------------------------------------------ BM25

TEST(Bm25Test, IdfDecreasesWithDocumentFrequency) {
  EXPECT_GT(Bm25Idf(1, 1000), Bm25Idf(10, 1000));
  EXPECT_GT(Bm25Idf(10, 1000), Bm25Idf(500, 1000));
  EXPECT_GE(Bm25Idf(1000, 1000), 0.0);  // never negative
}

TEST(Bm25Test, TermScoreSaturatesWithTf) {
  Bm25Params params;
  double idf = 2.0;
  double s1 = Bm25TermScore(1, 10, 10, idf, params);
  double s5 = Bm25TermScore(5, 10, 10, idf, params);
  double s50 = Bm25TermScore(50, 10, 10, idf, params);
  EXPECT_GT(s5, s1);
  EXPECT_GT(s50, s5);
  // Diminishing returns: the jump 5 -> 50 is smaller than 10x.
  EXPECT_LT(s50, 2.0 * s5);
  // Bounded by idf * (k1 + 1).
  EXPECT_LT(s50, idf * (params.k1 + 1.0));
}

TEST(Bm25Test, LongDocumentsPenalized) {
  Bm25Params params;
  double short_doc = Bm25TermScore(2, 5, 10, 1.5, params);
  double long_doc = Bm25TermScore(2, 50, 10, 1.5, params);
  EXPECT_GT(short_doc, long_doc);
}

TEST(Bm25Test, ZeroTfScoresZero) {
  EXPECT_DOUBLE_EQ(Bm25TermScore(0, 10, 10, 2.0, {}), 0.0);
}

// --------------------------------------------------------- InvertedIndex

TEST(InvertedIndexTest, TitleWeightBoostsTermFrequency) {
  InvertedIndex index;
  index.AddDocument("neural parsing", "parsing abstracts discuss parsing");
  index.Finalize();
  const auto& postings = index.PostingsFor("pars");  // stemmed
  ASSERT_EQ(postings.size(), 1u);
  // 1 title occurrence (weight 3) + 2 abstract occurrences = 5.
  EXPECT_FLOAT_EQ(postings[0].weighted_tf, 5.0f);
}

TEST(InvertedIndexTest, QueriesAreStemmed) {
  InvertedIndex index;
  index.AddDocument("citation networks", "");
  index.Finalize();
  auto terms = InvertedIndex::AnalyzeQuery("Citations Network");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_FALSE(index.PostingsFor(terms[0]).empty());
  EXPECT_FALSE(index.PostingsFor(terms[1]).empty());
}

TEST(InvertedIndexTest, UnknownTermHasEmptyPostings) {
  InvertedIndex index;
  index.AddDocument("a", "b");
  index.Finalize();
  EXPECT_TRUE(index.PostingsFor("zzz").empty());
  EXPECT_EQ(index.DocumentFrequency("zzz"), 0u);
}

TEST(InvertedIndexTest, DocumentFrequencyCounts) {
  InvertedIndex index;
  index.AddDocument("graph algorithms", "");
  index.AddDocument("graph theory", "");
  index.AddDocument("speech recognition", "");
  index.Finalize();
  EXPECT_EQ(index.DocumentFrequency("graph"), 2u);
  EXPECT_EQ(index.num_documents(), 3u);
  EXPECT_GT(index.average_doc_length(), 0.0);
}

// ------------------------------------------------------------ SearchEngine

std::vector<EngineDocument> TestDocs() {
  return {
      {"steiner tree algorithms", "steiner tree optimization", 2000, 500},
      {"steiner tree in networks", "network steiner applications", 2010, 50},
      {"reading path generation", "survey reading paths", 2020, 5},
      {"unrelated biology paper", "genome sequencing", 2015, 1000},
  };
}

TEST(SearchEngineTest, RanksLexicalMatchesFirst) {
  auto engine = SearchEngine::Build(TestDocs(), GoogleScholarProfile()).value();
  auto hits = engine->Search("steiner tree", 10, INT32_MAX);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_TRUE(hits[0].doc == 0 || hits[0].doc == 1);
  // The biology paper does not match at all.
  for (const auto& h : hits) EXPECT_NE(h.doc, 3u);
}

TEST(SearchEngineTest, YearCutoffFilters) {
  auto engine = SearchEngine::Build(TestDocs(), GoogleScholarProfile()).value();
  auto hits = engine->Search("steiner tree", 10, 2005);
  for (const auto& h : hits) {
    EXPECT_LE(TestDocs()[h.doc].year, 2005);
  }
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 0u);
}

TEST(SearchEngineTest, ExclusionRemovesDocuments) {
  auto engine = SearchEngine::Build(TestDocs(), GoogleScholarProfile()).value();
  auto hits = engine->Search("steiner tree", 10, INT32_MAX, {0});
  for (const auto& h : hits) EXPECT_NE(h.doc, 0u);
}

TEST(SearchEngineTest, TopKTruncates) {
  auto engine = SearchEngine::Build(TestDocs(), GoogleScholarProfile()).value();
  auto hits = engine->Search("steiner tree reading", 1, INT32_MAX);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(SearchEngineTest, NoMatchesYieldsEmpty) {
  auto engine = SearchEngine::Build(TestDocs(), GoogleScholarProfile()).value();
  EXPECT_TRUE(engine->Search("quantum chromodynamics", 10, INT32_MAX).empty());
  EXPECT_TRUE(engine->Search("", 10, INT32_MAX).empty());
}

TEST(SearchEngineTest, ScoresAreSortedDescending) {
  auto engine = SearchEngine::Build(TestDocs(), GoogleScholarProfile()).value();
  auto hits = engine->Search("steiner tree network reading", 10, INT32_MAX);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(SearchEngineTest, EmptyCorpusRejected) {
  EXPECT_TRUE(SearchEngine::Build({}, GoogleScholarProfile())
                  .status()
                  .IsInvalidArgument());
}

TEST(SearchEngineTest, CitationBoostBreaksLexicalTies) {
  // Two identical documents except citations; Scholar prefers the cited.
  std::vector<EngineDocument> docs = {
      {"steiner tree", "same abstract", 2000, 0},
      {"steiner tree", "same abstract", 2000, 10000},
  };
  auto engine = SearchEngine::Build(docs, GoogleScholarProfile()).value();
  auto hits = engine->Search("steiner tree", 2, INT32_MAX);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);
}

TEST(SearchEngineTest, RecencyBoostPrefersNewer) {
  std::vector<EngineDocument> docs = {
      {"steiner tree", "same abstract", 1990, 10},
      {"steiner tree", "same abstract", 2020, 10},
  };
  auto engine = SearchEngine::Build(docs, AMinerProfile()).value();
  auto hits = engine->Search("steiner tree", 2, INT32_MAX);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);
}

TEST(SearchEngineTest, ProfilesHaveDistinctNames) {
  EXPECT_EQ(GoogleScholarProfile().name, "Google");
  EXPECT_EQ(MicrosoftAcademicProfile().name, "Microsoft");
  EXPECT_EQ(AMinerProfile().name, "Aminer");
}

}  // namespace
}  // namespace rpg::search
