#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace rpg::eval {
namespace {

using graph::PaperId;

TEST(OverlapTest, CountsIntersection) {
  EXPECT_EQ(CountOverlap({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(CountOverlap({}, {1}), 0u);
  EXPECT_EQ(CountOverlap({1}, {}), 0u);
}

TEST(OverlapTest, DuplicatesInItemsCountOnce) {
  EXPECT_EQ(CountOverlap({2, 2, 2}, {2}), 1u);
}

TEST(PrfTest, PerfectPrefix) {
  std::vector<PaperId> truth = {1, 2, 3, 4};
  PrfAtK m = ComputePrfAtK({1, 2, 3, 4}, truth, 4);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(PrfTest, HalfRight) {
  std::vector<PaperId> truth = {1, 2};
  PrfAtK m = ComputePrfAtK({1, 9, 2, 8}, truth, 4);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.f1, 2.0 * 0.5 / 1.5, 1e-12);
}

TEST(PrfTest, KTruncatesRanking) {
  std::vector<PaperId> truth = {3};
  // Hit is at rank 3; K = 2 misses it.
  PrfAtK at2 = ComputePrfAtK({1, 2, 3}, truth, 2);
  EXPECT_DOUBLE_EQ(at2.precision, 0.0);
  PrfAtK at3 = ComputePrfAtK({1, 2, 3}, truth, 3);
  EXPECT_NEAR(at3.precision, 1.0 / 3.0, 1e-12);
}

TEST(PrfTest, ShortRankingUsesActualLength) {
  std::vector<PaperId> truth = {1, 2, 3, 4};
  // Only 2 results though K = 50: precision over 2, not 50.
  PrfAtK m = ComputePrfAtK({1, 2}, truth, 50);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(PrfTest, DegenerateInputs) {
  PrfAtK m = ComputePrfAtK({}, {1}, 10);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  m = ComputePrfAtK({1}, {}, 10);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  m = ComputePrfAtK({1}, {1}, 0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(PrfTest, DuplicateRankedEntriesNotDoubleCounted) {
  std::vector<PaperId> truth = {1};
  PrfAtK m = ComputePrfAtK({1, 1, 1, 1}, truth, 4);
  EXPECT_DOUBLE_EQ(m.precision, 0.25);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(MeanAccumulatorTest, Averages) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(6.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_EQ(acc.count(), 3u);
}

}  // namespace
}  // namespace rpg::eval
