#include <gtest/gtest.h>

#include <cmath>

#include "match/hashed_embedder.h"
#include "match/semantic_matcher.h"

namespace rpg::match {
namespace {

TEST(HashedEmbedderTest, EmbeddingsAreUnitNorm) {
  HashedEmbedder embedder;
  Embedding e = embedder.EmbedDocument("neural parsing", "parsing abstracts");
  double norm = 0.0;
  for (float v : e) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-5);
  EXPECT_EQ(static_cast<int>(e.size()), embedder.dim());
}

TEST(HashedEmbedderTest, EmptyTextIsZeroVector) {
  HashedEmbedder embedder;
  Embedding e = embedder.EmbedQuery("");
  for (float v : e) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(HashedEmbedderTest, DeterministicAcrossInstances) {
  HashedEmbedder a, b;
  EXPECT_EQ(a.EmbedQuery("steiner trees"), b.EmbedQuery("steiner trees"));
}

TEST(HashedEmbedderTest, SimilarTextsCloserThanDissimilar) {
  HashedEmbedder embedder;
  Embedding q = embedder.EmbedQuery("hate speech detection");
  Embedding close = embedder.EmbedDocument(
      "hate speech detection on social media", "detecting hateful speech");
  Embedding far = embedder.EmbedDocument("cache coherence protocols",
                                         "multiprocessor memory systems");
  EXPECT_GT(CosineSimilarity(q, close), CosineSimilarity(q, far));
}

TEST(HashedEmbedderTest, StemmingUnifiesInflections) {
  HashedEmbedder embedder;
  Embedding singular = embedder.EmbedQuery("citation network");
  Embedding plural = embedder.EmbedQuery("citations networks");
  EXPECT_GT(CosineSimilarity(singular, plural), 0.9);
}

TEST(HashedEmbedderTest, DimensionOption) {
  HashedEmbedderOptions options;
  options.dim = 64;
  HashedEmbedder embedder(options);
  EXPECT_EQ(embedder.EmbedQuery("x y z").size(), 64u);
}

TEST(HashedEmbedderTest, BigramsAddSignal) {
  HashedEmbedderOptions with;
  HashedEmbedderOptions without;
  without.use_bigrams = false;
  HashedEmbedder a(with), b(without);
  // Same unigrams, different order: bigram version distinguishes them.
  double with_sim = CosineSimilarity(a.EmbedQuery("machine learning theory"),
                                     a.EmbedQuery("theory learning machine"));
  double without_sim =
      CosineSimilarity(b.EmbedQuery("machine learning theory"),
                       b.EmbedQuery("theory learning machine"));
  EXPECT_LT(with_sim, without_sim + 1e-9);
  EXPECT_NEAR(without_sim, 1.0, 1e-5);
}

TEST(CosineSimilarityTest, MismatchedDimensionsScoreZero) {
  Embedding a(8, 0.5f), b(16, 0.5f);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 0.0);
}

// --------------------------------------------------------- SemanticMatcher

class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture()
      : matcher_({"steiner tree algorithms", "hate speech detection",
                  "reading path generation", "cache coherence"},
                 {"steiner trees in graphs", "detecting hate speech online",
                  "generating reading paths for surveys",
                  "multiprocessor caches"}) {}
  SemanticMatcher matcher_;
};

TEST_F(MatcherFixture, RerankPutsBestMatchFirst) {
  auto matches = matcher_.Rerank("hate speech", {0, 1, 2, 3}, 4);
  ASSERT_EQ(matches.size(), 4u);
  EXPECT_EQ(matches[0].doc, 1u);
}

TEST_F(MatcherFixture, RerankTruncatesToTopK) {
  auto matches = matcher_.Rerank("steiner", {0, 1, 2, 3}, 2);
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].doc, 0u);
}

TEST_F(MatcherFixture, RerankRespectsCandidateSet) {
  auto matches = matcher_.Rerank("hate speech", {0, 2}, 10);
  for (const auto& m : matches) {
    EXPECT_TRUE(m.doc == 0 || m.doc == 2);
  }
}

TEST_F(MatcherFixture, RerankSkipsOutOfRangeCandidates) {
  auto matches = matcher_.Rerank("steiner", {0, 99}, 10);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].doc, 0u);
}

TEST_F(MatcherFixture, ScoresSortedDescending) {
  auto matches = matcher_.Rerank("reading paths", {0, 1, 2, 3}, 4);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].score, matches[i].score);
  }
}

TEST_F(MatcherFixture, EmptyCandidatesYieldEmpty) {
  EXPECT_TRUE(matcher_.Rerank("anything", {}, 5).empty());
}

}  // namespace
}  // namespace rpg::match
