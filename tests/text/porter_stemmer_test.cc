#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace rpg::text {
namespace {

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem)
      << "word: " << GetParam().word;
}

// Reference outputs from Porter's original paper / implementation.
INSTANTIATE_TEST_SUITE_P(
    Classic, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"communism", "commun"},
        StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
        StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

// Domain vocabulary the retrieval stack depends on.
INSTANTIATE_TEST_SUITE_P(
    DomainWords, PorterStemTest,
    ::testing::Values(StemCase{"networks", "network"},
                      StemCase{"embeddings", "embed"},
                      StemCase{"citations", "citat"},
                      StemCase{"learning", "learn"},
                      StemCase{"queries", "queri"},
                      StemCase{"detection", "detect"},
                      StemCase{"retrieval", "retriev"}));

TEST(PorterStemEdgeTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemEdgeTest, NonLowercaseInputUnchanged) {
  EXPECT_EQ(PorterStem("BERT"), "BERT");
  EXPECT_EQ(PorterStem("2018"), "2018");
  EXPECT_EQ(PorterStem("mixedCase"), "mixedCase");
}

TEST(PorterStemEdgeTest, IdempotentOnCommonStems) {
  for (const char* w : {"network", "learn", "detect", "graph", "model"}) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

}  // namespace
}  // namespace rpg::text
