#include "text/topicrank.h"

#include <gtest/gtest.h>

namespace rpg::text {
namespace {

using internal::Candidate;
using internal::ClusterCandidates;
using internal::ExtractCandidates;
using internal::StemOverlap;

TEST(CandidateExtractionTest, SplitsOnStopwords) {
  auto candidates =
      ExtractCandidates("a survey on hate speech detection using natural "
                        "language processing");
  // "hate speech detection" and "natural language processing".
  ASSERT_EQ(candidates.size(), 2u);
}

TEST(CandidateExtractionTest, MergesRepeatedPhrases) {
  auto candidates = ExtractCandidates("neural parsing and neural parsing");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].first_word_positions.size(), 2u);
}

TEST(CandidateExtractionTest, EmptyAndAllStopwordInput) {
  EXPECT_TRUE(ExtractCandidates("").empty());
  EXPECT_TRUE(ExtractCandidates("the of a with").empty());
}

TEST(StemOverlapTest, SharedStemCounts) {
  auto c = ExtractCandidates("neural networks and neural parsing");
  ASSERT_EQ(c.size(), 2u);
  // Both share the stem "neural" and the smaller set has 2 stems.
  EXPECT_NEAR(StemOverlap(c[0], c[1]), 0.5, 1e-9);
}

TEST(StemOverlapTest, InflectionsOverlapViaStemming) {
  auto c = ExtractCandidates("citation graph for citations analysis");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_GT(StemOverlap(c[0], c[1]), 0.0);
}

TEST(ClusterTest, HighOverlapMerges) {
  auto c = ExtractCandidates("neural parsing and neural parsers");
  ASSERT_EQ(c.size(), 2u);
  auto clusters = ClusterCandidates(c, 0.25);
  EXPECT_EQ(clusters[0], clusters[1]);
}

TEST(ClusterTest, DisjointStaySeparate) {
  auto c = ExtractCandidates("steiner trees and speech recognition");
  ASSERT_EQ(c.size(), 2u);
  auto clusters = ClusterCandidates(c, 0.25);
  EXPECT_NE(clusters[0], clusters[1]);
}

TEST(ClusterTest, ThresholdOneKeepsAllSeparateUnlessIdentical) {
  auto c = ExtractCandidates("neural parsing and neural networks");
  ASSERT_EQ(c.size(), 2u);
  auto clusters = ClusterCandidates(c, 1.01);
  EXPECT_NE(clusters[0], clusters[1]);
}

TEST(TopicRankTest, ExtractsSurveyTitlePhrases) {
  TopicRankOptions options;
  options.top_n = 2;
  auto phrases = ExtractKeyphrases(
      "a survey on hate speech detection using natural language processing",
      options);
  ASSERT_EQ(phrases.size(), 2u);
  std::vector<std::string> texts = {phrases[0].phrase, phrases[1].phrase};
  EXPECT_TRUE((texts[0] == "hate speech detection" &&
               texts[1] == "natural language processing") ||
              (texts[1] == "hate speech detection" &&
               texts[0] == "natural language processing"));
}

TEST(TopicRankTest, TemplateTitlesReduceToThePhrase) {
  const char* templates[] = {
      "a survey on steiner trees", "steiner trees: a survey",
      "a comprehensive survey on steiner trees", "a review of steiner trees",
      "recent trends in steiner trees: a survey"};
  for (const char* title : templates) {
    auto phrases = ExtractKeyphrases(title);
    ASSERT_FALSE(phrases.empty()) << title;
    EXPECT_EQ(phrases[0].phrase, "steiner trees") << title;
  }
}

TEST(TopicRankTest, TopNLimitsOutput) {
  TopicRankOptions options;
  options.top_n = 1;
  auto phrases = ExtractKeyphrases(
      "hate speech detection using natural language processing", options);
  EXPECT_EQ(phrases.size(), 1u);
  options.top_n = 0;  // no limit
  phrases = ExtractKeyphrases(
      "hate speech detection using natural language processing", options);
  EXPECT_GE(phrases.size(), 2u);
}

TEST(TopicRankTest, ScoresAreSortedDescending) {
  auto phrases = ExtractKeyphrases(
      "query optimization for streaming joins over relational engines",
      TopicRankOptions{.top_n = 0});
  for (size_t i = 1; i < phrases.size(); ++i) {
    EXPECT_GE(phrases[i - 1].score, phrases[i].score);
  }
}

TEST(TopicRankTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(ExtractKeyphrases("").empty());
  EXPECT_TRUE(ExtractKeyphrases("the of a").empty());
}

TEST(TopicRankTest, SingleCandidateIsReturned) {
  auto phrases = ExtractKeyphrases("steiner trees");
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(phrases[0].phrase, "steiner trees");
}

}  // namespace
}  // namespace rpg::text
