#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rpg::text {
namespace {

TEST(VocabularyTest, InternsInFirstSeenOrder) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.GetOrAdd("beta"), 1u);
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.TermOf(1), "beta");
}

TEST(VocabularyTest, LookupMissReturnsInvalid) {
  Vocabulary v;
  v.GetOrAdd("x");
  EXPECT_EQ(v.Lookup("y"), kInvalidTerm);
  EXPECT_EQ(v.Lookup("x"), 0u);
}

TEST(VocabularyTest, EncodeInternsAndEncodeExistingSkips) {
  Vocabulary v;
  auto ids = v.Encode({"a", "b", "a"});
  EXPECT_EQ(ids, (std::vector<TermId>{0, 1, 0}));
  auto existing = v.EncodeExisting({"a", "zzz", "b"});
  EXPECT_EQ(existing, (std::vector<TermId>{0, 1}));
  EXPECT_EQ(v.size(), 2u);  // zzz was not interned
}

class TfIdfFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // 3 documents over terms 0..3. Term 0 in all docs, term 3 in one.
    model_.AddDocument({0, 1});
    model_.AddDocument({0, 1, 2});
    model_.AddDocument({0, 2, 3, 3});
    model_.Finalize();
  }
  TfIdfModel model_;
};

TEST_F(TfIdfFixture, DocumentFrequencies) {
  EXPECT_EQ(model_.num_documents(), 3u);
  EXPECT_EQ(model_.DocumentFrequency(0), 3u);
  EXPECT_EQ(model_.DocumentFrequency(1), 2u);
  EXPECT_EQ(model_.DocumentFrequency(3), 1u);  // duplicates count once
  EXPECT_EQ(model_.DocumentFrequency(99), 0u);
}

TEST_F(TfIdfFixture, IdfOrdering) {
  // Rarer terms get larger IDF.
  EXPECT_LT(model_.Idf(0), model_.Idf(1));
  EXPECT_LT(model_.Idf(1), model_.Idf(3));
  // Unseen terms get the maximal IDF.
  EXPECT_GE(model_.Idf(99), model_.Idf(3));
}

TEST_F(TfIdfFixture, VectorizeIsL2Normalized) {
  SparseVector v = model_.Vectorize({0, 1, 1, 3});
  EXPECT_NEAR(v.Norm(), 1.0, 1e-6);
  EXPECT_EQ(v.size(), 3u);
  // Terms sorted ascending.
  EXPECT_TRUE(std::is_sorted(v.terms.begin(), v.terms.end()));
}

TEST_F(TfIdfFixture, VectorizeEmptyDocument) {
  SparseVector v = model_.Vectorize({});
  EXPECT_EQ(v.size(), 0u);
  EXPECT_DOUBLE_EQ(v.Norm(), 0.0);
}

TEST(CosineTest, IdenticalVectorsScoreOne) {
  SparseVector a{{1, 2, 3}, {0.5f, 0.5f, 0.7071f}};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-3);
}

TEST(CosineTest, DisjointVectorsScoreZero) {
  SparseVector a{{1, 2}, {1.0f, 1.0f}};
  SparseVector b{{3, 4}, {1.0f, 1.0f}};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(CosineTest, EmptyVectorScoresZero) {
  SparseVector a{{1}, {1.0f}};
  SparseVector empty;
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, empty), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, empty), 0.0);
}

TEST(CosineTest, PartialOverlapBetweenZeroAndOne) {
  SparseVector a{{1, 2}, {1.0f, 1.0f}};
  SparseVector b{{2, 3}, {1.0f, 1.0f}};
  double sim = CosineSimilarity(a, b);
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
  EXPECT_NEAR(sim, 0.5, 1e-9);
}

TEST(CosineTest, IsSymmetric) {
  SparseVector a{{1, 5, 9}, {0.2f, 0.4f, 0.6f}};
  SparseVector b{{1, 9}, {0.9f, 0.1f}};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), CosineSimilarity(b, a));
}

}  // namespace
}  // namespace rpg::text
