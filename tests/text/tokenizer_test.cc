#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace rpg::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  EXPECT_EQ(Tokenize("Hate-Speech Detection!"),
            (std::vector<std::string>{"hate", "speech", "detection"}));
}

TEST(TokenizerTest, ApostrophesVanish) {
  EXPECT_EQ(Tokenize("don't can't"),
            (std::vector<std::string>{"dont", "cant"}));
}

TEST(TokenizerTest, KeepsNumbersByDefault) {
  EXPECT_EQ(Tokenize("bert 2018"),
            (std::vector<std::string>{"bert", "2018"}));
}

TEST(TokenizerTest, DropNumbersOption) {
  TokenizerOptions options;
  options.keep_numbers = false;
  EXPECT_EQ(Tokenize("bert 2018 v2", options),
            (std::vector<std::string>{"bert", "v2"}));
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions options;
  options.min_token_length = 3;
  EXPECT_EQ(Tokenize("a an the cat", options),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions options;
  options.lowercase = false;
  EXPECT_EQ(Tokenize("BERT", options), (std::vector<std::string>{"BERT"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("--- ... !!!").empty());
}

TEST(TokenizerTest, UnicodeBytesActAsSeparators) {
  // Non-ASCII bytes are treated as separators, not crashes.
  EXPECT_EQ(Tokenize("caf\xc3\xa9 time"),
            (std::vector<std::string>{"caf", "time"}));
}

TEST(NGramsTest, BigramsJoinWithUnderscore) {
  EXPECT_EQ(NGrams({"a", "b", "c"}, 2),
            (std::vector<std::string>{"a_b", "b_c"}));
}

TEST(NGramsTest, UnigramsIdentity) {
  EXPECT_EQ(NGrams({"a", "b"}, 1), (std::vector<std::string>{"a", "b"}));
}

TEST(NGramsTest, DegenerateCases) {
  EXPECT_TRUE(NGrams({"a"}, 2).empty());
  EXPECT_TRUE(NGrams({}, 1).empty());
  EXPECT_TRUE(NGrams({"a", "b"}, 0).empty());
}

TEST(StopwordsTest, CommonFunctionWords) {
  for (const char* w : {"a", "the", "of", "with", "survey", "review", "via"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsPass) {
  for (const char* w : {"neural", "steiner", "citation", "graph", "speech"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ListIsSortedForBinarySearch) {
  // IsStopword relies on binary search; verify a few ordering-sensitive
  // probes resolve correctly (this would fail if the table were unsorted).
  EXPECT_TRUE(IsStopword("about"));
  EXPECT_TRUE(IsStopword("yourself"));
  EXPECT_TRUE(IsStopword("methods"));
  EXPECT_GT(StopwordCount(), 100u);
}

}  // namespace
}  // namespace rpg::text
