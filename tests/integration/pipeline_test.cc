// End-to-end tests over a small but fully wired workbench: corpus,
// SurveyBank, engines, weights, RePaGer, baselines, evaluation.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "eval/baselines.h"
#include "eval/evaluator.h"
#include "eval/overlap.h"
#include "eval/preference_judge.h"
#include "eval/workbench.h"

namespace rpg::eval {
namespace {

using graph::PaperId;

class WorkbenchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 60;
    options.corpus.papers_per_area = 20;
    options.corpus.papers_per_domain = 15;
    options.corpus.num_surveys = 100;
    options.corpus.seed = 33;
    wb_ = Workbench::Create(options).value().release();
  }
  static void TearDownTestSuite() {
    delete wb_;
    wb_ = nullptr;
  }

  /// First bank entry with a non-empty L3 label.
  static const surveybank::SurveyEntry& AnyEntry() {
    for (size_t i = 0; i < wb_->bank().size(); ++i) {
      if (!wb_->bank().Get(i).label_l3.empty()) return wb_->bank().Get(i);
    }
    return wb_->bank().Get(0);
  }

  static const Workbench* wb_;
};

const Workbench* WorkbenchFixture::wb_ = nullptr;

TEST_F(WorkbenchFixture, SubstratesAreWired) {
  EXPECT_GT(wb_->corpus().num_papers(), 1000u);
  EXPECT_GT(wb_->bank().size(), 20u);
  EXPECT_EQ(wb_->pagerank().size(), wb_->corpus().num_papers());
  EXPECT_EQ(wb_->venue_scores().size(), wb_->corpus().num_papers());
  EXPECT_EQ(wb_->titles().size(), wb_->years().size());
}

TEST_F(WorkbenchFixture, RePagerProducesPathAndRanking) {
  const auto& entry = AnyEntry();
  core::RePagerOptions options;
  options.year_cutoff = entry.year;
  options.exclude = {entry.paper};
  auto result = wb_->repager().Generate(entry.query, options).value();

  EXPECT_FALSE(result.ranked.empty());
  EXPECT_EQ(result.initial_seeds.size(), 30u);
  EXPECT_FALSE(result.path.empty());
  EXPECT_GT(result.subgraph_nodes, result.path.size());

  // Ranking has no duplicates and respects exclusion + cutoff.
  std::unordered_set<PaperId> seen;
  for (PaperId p : result.ranked) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate " << p;
    EXPECT_NE(p, entry.paper);
    EXPECT_LE(wb_->years()[p], entry.year);
  }
  // All terminals are in the path and the ranking.
  std::unordered_set<PaperId> path_nodes(result.path.nodes().begin(),
                                         result.path.nodes().end());
  for (PaperId t : result.terminals) {
    EXPECT_TRUE(path_nodes.contains(t));
    EXPECT_TRUE(seen.contains(t));
  }
}

TEST_F(WorkbenchFixture, RePagerIsDeterministic) {
  const auto& entry = AnyEntry();
  core::RePagerOptions options;
  options.year_cutoff = entry.year;
  options.exclude = {entry.paper};
  auto a = wb_->repager().Generate(entry.query, options).value();
  auto b = wb_->repager().Generate(entry.query, options).value();
  EXPECT_EQ(a.ranked, b.ranked);
  EXPECT_EQ(a.path.nodes(), b.path.nodes());
  EXPECT_EQ(a.path.edges(), b.path.edges());
}

TEST_F(WorkbenchFixture, RePagerRejectsBadInput) {
  EXPECT_TRUE(wb_->repager().Generate("").status().IsInvalidArgument());
  core::RePagerOptions options;
  options.num_initial_seeds = 0;
  EXPECT_TRUE(
      wb_->repager().Generate("x", options).status().IsInvalidArgument());
  EXPECT_TRUE(wb_->repager()
                  .Generate("zzzz qqqq xxxx vvvv")
                  .status()
                  .IsNotFound());
}

TEST_F(WorkbenchFixture, ReadingPathEdgesFollowYears) {
  const auto& entry = AnyEntry();
  core::RePagerOptions options;
  options.year_cutoff = entry.year;
  options.exclude = {entry.paper};
  auto result = wb_->repager().Generate(entry.query, options).value();
  for (const auto& [first, next] : result.path.edges()) {
    EXPECT_LE(wb_->years()[first], wb_->years()[next]);
  }
  // Flattened order never reads a paper before its prerequisite.
  auto order = result.path.FlattenedOrder(wb_->years());
  std::unordered_map<PaperId, size_t> position;
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& [first, next] : result.path.edges()) {
    EXPECT_LT(position[first], position[next]);
  }
}

TEST_F(WorkbenchFixture, AllMethodsProduceValidRankings) {
  const auto& entry = AnyEntry();
  QuerySpec spec{entry.query, entry.year, entry.paper};
  for (Method method : AllMethods()) {
    auto ranked_or = RankedListFor(*wb_, method, spec, 30);
    ASSERT_TRUE(ranked_or.ok()) << MethodName(method);
    const auto& ranked = ranked_or.value();
    EXPECT_FALSE(ranked.empty()) << MethodName(method);
    EXPECT_LE(ranked.size(), 30u) << MethodName(method);
    std::unordered_set<PaperId> seen;
    for (PaperId p : ranked) {
      EXPECT_TRUE(seen.insert(p).second) << MethodName(method);
      EXPECT_NE(p, entry.paper) << MethodName(method);
      EXPECT_LE(wb_->years()[p], entry.year) << MethodName(method);
    }
  }
}

TEST_F(WorkbenchFixture, EvaluatorProducesSaneMetrics) {
  auto sample = Evaluator::SampleEntries(wb_->bank(), 8, 1);
  ASSERT_FALSE(sample.empty());
  Evaluator evaluator(wb_, sample);
  auto cell = evaluator.Run(Method::kNewst, 30, LabelLevel::kAtLeast1).value();
  EXPECT_GT(cell.f1, 0.0);
  EXPECT_LE(cell.precision, 1.0);
  EXPECT_LE(cell.recall, 1.0);
  EXPECT_EQ(cell.queries, sample.size());
}

TEST_F(WorkbenchFixture, SweepMatchesSingleRuns) {
  auto sample = Evaluator::SampleEntries(wb_->bank(), 6, 2);
  Evaluator evaluator(wb_, sample);
  auto grid = evaluator
                  .RunSweep(Method::kGoogle, {20, 30},
                            {LabelLevel::kAtLeast1, LabelLevel::kAtLeast2})
                  .value();
  ASSERT_EQ(grid.size(), 2u);
  ASSERT_EQ(grid[0].size(), 2u);
  auto single = evaluator.Run(Method::kGoogle, 30, LabelLevel::kAtLeast2)
                    .value();
  EXPECT_NEAR(grid[1][1].f1, single.f1, 1e-12);
  EXPECT_NEAR(grid[1][1].precision, single.precision, 1e-12);
}

TEST_F(WorkbenchFixture, MoreRelaxedLabelsNeverHurtRecallAtFixedK) {
  // L3 ⊆ L1, so recall against L3 >= recall against L1 is NOT implied,
  // but precision against L1 >= precision against L3 is (more targets).
  auto sample = Evaluator::SampleEntries(wb_->bank(), 6, 3);
  Evaluator evaluator(wb_, sample);
  auto l1 = evaluator.Run(Method::kNewst, 30, LabelLevel::kAtLeast1).value();
  auto l3 = evaluator.Run(Method::kNewst, 30, LabelLevel::kAtLeast3).value();
  EXPECT_GE(l1.precision, l3.precision);
}

TEST_F(WorkbenchFixture, OverlapRatiosIncreaseWithOrder) {
  OverlapOptions options;
  options.top_k = 30;
  options.subset_size = 15;
  auto result = RunOverlapExperiment(*wb_, options).value();
  EXPECT_GT(result.surveys, 0u);
  for (int label = 0; label < 3; ++label) {
    EXPECT_LE(result.ratio[0][label], result.ratio[1][label] + 1e-9);
    EXPECT_LE(result.ratio[1][label], result.ratio[2][label] + 1e-9);
    for (int order = 0; order < 3; ++order) {
      EXPECT_GE(result.ratio[order][label], 0.0);
      EXPECT_LE(result.ratio[order][label], 1.0);
    }
  }
}

TEST_F(WorkbenchFixture, PreferenceStudyVotesSumToOne) {
  PreferenceOptions options;
  options.queries_per_domain = 5;
  options.participants = 3;
  auto result = RunPreferenceStudy(*wb_, 0, options).value();
  EXPECT_GT(result.queries, 0u);
  for (const CriterionOutcome* o :
       {&result.prerequisite, &result.relevance, &result.completeness}) {
    EXPECT_NEAR(o->prefer_a + o->same + o->prefer_b, 1.0, 1e-9);
  }
  // NEWST must dominate the prerequisite axis (it is the only system
  // with reading order).
  EXPECT_GT(result.prerequisite.prefer_b, 0.5);
}

TEST_F(WorkbenchFixture, AblationVariantsAllRun) {
  const auto& entry = AnyEntry();
  for (core::SeedMode mode :
       {core::SeedMode::kReallocated, core::SeedMode::kInitial,
        core::SeedMode::kUnion, core::SeedMode::kIntersection}) {
    core::RePagerOptions options;
    options.seed_mode = mode;
    options.year_cutoff = entry.year;
    options.exclude = {entry.paper};
    auto result = wb_->repager().Generate(entry.query, options);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->ranked.empty());
  }
  for (bool node_weights : {true, false}) {
    for (bool edge_weights : {true, false}) {
      core::RePagerOptions options;
      options.newst.use_node_weights = node_weights;
      options.newst.use_edge_weights = edge_weights;
      options.year_cutoff = entry.year;
      options.exclude = {entry.paper};
      ASSERT_TRUE(wb_->repager().Generate(entry.query, options).ok());
    }
  }
  core::RePagerOptions no_steiner;
  no_steiner.run_steiner = false;
  no_steiner.year_cutoff = entry.year;
  no_steiner.exclude = {entry.paper};
  auto result = wb_->repager().Generate(entry.query, no_steiner).value();
  EXPECT_TRUE(result.path.empty());
  EXPECT_FALSE(result.ranked.empty());
}

TEST_F(WorkbenchFixture, SeedCountChangesSubgraphScale) {
  const auto& entry = AnyEntry();
  core::RePagerOptions small, large;
  small.num_initial_seeds = 10;
  large.num_initial_seeds = 50;
  small.year_cutoff = large.year_cutoff = entry.year;
  small.exclude = large.exclude = {entry.paper};
  auto a = wb_->repager().Generate(entry.query, small).value();
  auto b = wb_->repager().Generate(entry.query, large).value();
  EXPECT_LE(a.subgraph_nodes, b.subgraph_nodes);
}

}  // namespace
}  // namespace rpg::eval
