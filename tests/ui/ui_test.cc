#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "serve/serve_engine.h"
#include "ui/http_client.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace rpg::ui {
namespace {

// ----------------------------------------------------------- UrlDecode

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("hate%20speech+detection"), "hate speech detection");
  EXPECT_EQ(UrlDecode("a%2Bb"), "a+b");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode(""), "");
}

TEST(UrlDecodeTest, MalformedPercentPassesThrough) {
  EXPECT_EQ(UrlDecode("50%"), "50%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
}

// ----------------------------------------------------- ParseRequestLine

TEST(ParseRequestTest, PlainPath) {
  auto r = ParseRequestLine("GET /api/path HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method, "GET");
  EXPECT_EQ(r->path, "/api/path");
  EXPECT_EQ(r->version, "HTTP/1.1");
  EXPECT_TRUE(r->query.empty());
}

TEST(ParseRequestTest, QueryParameters) {
  auto r = ParseRequestLine(
      "GET /api/path?q=pretrained%20language+model&seeds=30 HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.at("q"), "pretrained language model");
  EXPECT_EQ(r->query.at("seeds"), "30");
}

TEST(ParseRequestTest, ValuelessParameter) {
  auto r = ParseRequestLine("GET /x?flag HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.at("flag"), "");
}

TEST(ParseRequestTest, Http10VersionCaptured) {
  auto r = ParseRequestLine("GET / HTTP/1.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, "HTTP/1.0");
}

TEST(ParseRequestTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x NOTHTTP").ok());
  EXPECT_FALSE(ParseRequestLine("GET relative HTTP/1.1").ok());
}

// ------------------------------------------------------ ParseHeaderLines

TEST(ParseHeadersTest, LowercasesNamesTrimsValues) {
  std::map<std::string, std::string> headers;
  ParseHeaderLines(
      "Host: localhost\r\nConnection:  Keep-Alive \r\nContent-Length: 12\r\n",
      &headers);
  EXPECT_EQ(headers.at("host"), "localhost");
  EXPECT_EQ(headers.at("connection"), "Keep-Alive");
  EXPECT_EQ(headers.at("content-length"), "12");
}

TEST(ParseHeadersTest, SkipsMalformedLines) {
  std::map<std::string, std::string> headers;
  ParseHeaderLines("no colon here\r\nGood: yes\r\n", &headers);
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.at("good"), "yes");
}

// ------------------------------------------------------------ HttpServer

/// One-shot fetch (Connection: close): reads until EOF.
std::string FetchOnce(int port, const std::string& request_line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request =
      request_line + "\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpServerTest, ServesHandlerResponses) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "echo:" + request.path;
    return response;
  });
  int port = server.Start(0).value();
  ASSERT_GT(port, 0);
  std::string response = FetchOnce(port, "GET /hello HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("echo:/hello"), std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, ConnectionCloseHonored) {
  HttpServer server([](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "x"};
  });
  int port = server.Start(0).value();
  // FetchOnce sends Connection: close and relies on the server actually
  // closing; a hang here means keep-alive ignored the header.
  std::string response = FetchOnce(port, "GET / HTTP/1.1");
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, KeepAliveServesManyRequestsPerConnection) {
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest& request) {
    ++handled;
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  for (int i = 0; i < 5; ++i) {
    auto r = client.Fetch("GET", "/req" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "echo:/req" + std::to_string(i));
    EXPECT_TRUE(client.connected());  // server kept the connection open
  }
  EXPECT_EQ(handled.load(), 5);
  client.Close();
  server.Stop();
}

TEST(HttpServerTest, PostBodyDelivered) {
  std::string seen_body;
  std::string seen_method;
  HttpServer server([&](const HttpRequest& request) {
    seen_method = request.method;
    seen_body = request.body;
    return HttpResponse{200, "text/plain", "ok"};
  });
  int port = server.Start(0).value();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request =
      "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
      "Connection: close\r\n\r\nhello";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(seen_method, "POST");
  EXPECT_EQ(seen_body, "hello");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, ConcurrentKeepAliveConnections) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  constexpr int kThreads = 4, kRequests = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect(port).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        std::string path = "/t" + std::to_string(t) + "r" + std::to_string(i);
        auto r = client.Fetch("GET", path);
        if (!r.ok() || r->status != 200 || r->body != "echo:" + path) {
          ++failures;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestGets400) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  int port = server.Start(0).value();
  std::string response = FetchOnce(port, "BOGUS");
  EXPECT_NE(response.find("400"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  server.Start(0).value();
  server.Stop();
  server.Stop();
}

TEST(HttpServerTest, DoubleStartRejected) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  server.Start(0).value();
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

// --------------------------------------------------------- RePagerService

class ServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 50;
    options.corpus.papers_per_area = 15;
    options.corpus.papers_per_domain = 10;
    options.corpus.num_surveys = 40;
    options.corpus.seed = 55;
    wb_ = eval::Workbench::Create(options).value().release();
    serve::ServeEngineOptions serve_options;
    serve_options.num_threads = 2;
    engine_ = new serve::ServeEngine(&wb_->repager(), serve_options);
    service_ = new RePagerService(engine_, &wb_->repager(), &wb_->titles(),
                                  &wb_->years());
  }
  static void TearDownTestSuite() {
    delete service_;
    delete engine_;
    delete wb_;
  }
  static const eval::Workbench* wb_;
  static serve::ServeEngine* engine_;
  static const RePagerService* service_;
};

const eval::Workbench* ServiceFixture::wb_ = nullptr;
serve::ServeEngine* ServiceFixture::engine_ = nullptr;
const RePagerService* ServiceFixture::service_ = nullptr;

TEST_F(ServiceFixture, IndexPageServed) {
  HttpRequest request{"GET", "/", {}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("RePaGer"), std::string::npos);
  EXPECT_NE(response.content_type.find("text/html"), std::string::npos);
}

TEST_F(ServiceFixture, PathApiReturnsJson) {
  const auto& entry = wb_->bank().Get(0);
  HttpRequest request{"GET", "/api/path", {{"q", entry.query}}};
  HttpResponse response = service_->Handle(request);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"read_first\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"reading_order\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"from_engine\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"cache_hit\":"), std::string::npos);
}

TEST_F(ServiceFixture, RepeatedQueryIsCacheHit) {
  const auto& entry = wb_->bank().Get(1);
  HttpRequest request{"GET", "/api/path", {{"q", entry.query}}};
  HttpResponse first = service_->Handle(request);
  ASSERT_EQ(first.status, 200) << first.body;
  HttpResponse second = service_->Handle(request);
  ASSERT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"cache_hit\":true"), std::string::npos);
  // Identical payload apart from the serving metadata: same nodes/edges.
  auto strip = [](std::string s) {
    size_t a = s.find("\"nodes\":");
    return s.substr(a);
  };
  EXPECT_EQ(strip(first.body), strip(second.body));
}

TEST_F(ServiceFixture, StatsEndpointReportsLiveCounters) {
  HttpRequest request{"GET", "/api/stats", {}};
  HttpResponse response = service_->Handle(request);
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cache\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"batcher\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"requests_total\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"e2e_ms\":"), std::string::npos);
}

TEST_F(ServiceFixture, CacheClearEndpoint) {
  const auto& entry = wb_->bank().Get(0);
  service_->Handle({"GET", "/api/path", {{"q", entry.query}}});
  HttpRequest clear{"POST", "/api/cache/clear", {}};
  HttpResponse response = service_->Handle(clear);
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cleared\":true"), std::string::npos);
  EXPECT_EQ(engine_->cache().Stats().entries, 0u);
}

TEST_F(ServiceFixture, MissingQueryParameterIs400) {
  HttpRequest request{"GET", "/api/path", {}};
  EXPECT_EQ(service_->Handle(request).status, 400);
}

TEST_F(ServiceFixture, UnknownRouteIs404) {
  HttpRequest request{"GET", "/nope", {}};
  EXPECT_EQ(service_->Handle(request).status, 404);
}

TEST_F(ServiceFixture, WrongMethodRejected) {
  HttpRequest post_path{"POST", "/api/path", {{"q", "x"}}};
  EXPECT_EQ(service_->Handle(post_path).status, 405);
  HttpRequest put{"PUT", "/api/path", {{"q", "x"}}};
  EXPECT_EQ(service_->Handle(put).status, 405);
  HttpRequest post_unknown{"POST", "/nope", {}};
  EXPECT_EQ(service_->Handle(post_unknown).status, 404);
}

TEST_F(ServiceFixture, HopelessQueryIsClientVisibleError) {
  HttpRequest request{"GET", "/api/path", {{"q", "zzzz qqqq wwww"}}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("error"), std::string::npos);
}

TEST_F(ServiceFixture, EndToEndOverSocket) {
  HttpServer server(
      [&](const HttpRequest& request) { return service_->Handle(request); });
  int port = server.Start(0).value();
  const auto& entry = wb_->bank().Get(0);
  std::string q;
  for (char c : entry.query) q += (c == ' ') ? '+' : c;
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  auto path = client.Fetch("GET", "/api/path?q=" + q);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->status, 200);
  EXPECT_NE(path->body.find("reading_order"), std::string::npos);
  // Same connection: stats, then cache clear via POST.
  auto stats = client.Fetch("GET", "/api/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  auto clear = client.Fetch("POST", "/api/cache/clear");
  ASSERT_TRUE(clear.ok());
  EXPECT_EQ(clear->status, 200);
  EXPECT_NE(clear->body.find("\"cleared\":true"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace rpg::ui
